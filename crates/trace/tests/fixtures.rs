//! Fixture-driven tests for hostile trails: a daemon killed mid-write
//! (truncated final line, unclosed request) and a heavily interleaved
//! multi-thread trail with out-of-order retroactive spans and unknown
//! event kinds. The analyzer must extract everything extractable and
//! disclose everything it skipped.

use fairbridge_trace::{analyze, build, build_report, collapsed_stacks, read_events};

const TRUNCATED: &str = include_str!("fixtures/truncated.jsonl");
const INTERLEAVED: &str = include_str!("fixtures/interleaved.jsonl");

#[test]
fn truncated_trail_yields_the_complete_request_and_discloses_the_damage() {
    let (events, stats) = read_events(TRUNCATED);
    // The cut-off line is skipped, not fatal.
    assert_eq!(stats.skipped, 1);
    assert_eq!(stats.lines, stats.events + stats.skipped);

    let forest = build(&events);
    // The second request's span started but the trail died before it
    // closed.
    assert_eq!(forest.unclosed, 1);

    let analysis = analyze(&events, &forest);
    assert_eq!(
        analysis.requests.len(),
        1,
        "only the finished request completes"
    );
    let r = &analysis.requests[0];
    assert_eq!(r.tenant, "bank-a");
    assert_eq!(r.wall_ns, 1000);
    assert_eq!(r.breakdown.queue_ns, 200);
    assert_eq!(r.breakdown.parse_ns, 100);
    assert_eq!(r.breakdown.scan_ns, 470);
    assert_eq!(r.breakdown.serialize_ns, 50);
    assert_eq!(r.breakdown.other_ns, 180);
    assert_eq!(r.breakdown.total_ns(), r.wall_ns);

    // The report carries the disclosure and still passes --check: the
    // completed request is fully accounted for.
    let report = build_report(stats, &forest, &analysis);
    assert_eq!(report.unclosed, 1);
    assert!(report.check(&forest, &analysis).is_ok());
    let text = report.render_text();
    assert!(text.contains("skipped=1"), "{text}");
    assert!(text.contains("unclosed=1"), "{text}");
}

#[test]
fn interleaved_threads_reconstruct_into_separate_request_trees() {
    let (events, stats) = read_events(INTERLEAVED);
    // Unknown kinds (wormhole_detected) still carry the envelope and
    // parse fine; nothing is skipped here.
    assert_eq!(stats.skipped, 0);

    let forest = build(&events);
    assert_eq!(forest.unclosed, 0);
    assert_eq!(forest.unmatched_ends, 0);
    // Two roots: one per request, despite four threads interleaving.
    assert_eq!(forest.roots.len(), 2);

    let analysis = analyze(&events, &forest);
    assert_eq!(analysis.unmatched_completions, 0);
    assert_eq!(analysis.requests.len(), 2);

    let leader = analysis
        .requests
        .iter()
        .find(|r| !r.coalesced)
        .expect("leader");
    // The retroactive queue_wait (whose start line appears after the
    // execute line, with an earlier timestamp) lands under the leader.
    assert_eq!(leader.breakdown.queue_ns, 10);
    assert_eq!(leader.breakdown.scan_ns, 700);
    assert_eq!(leader.breakdown.coalesce_ns, 0);

    let follower = analysis
        .requests
        .iter()
        .find(|r| r.coalesced)
        .expect("follower");
    assert_eq!(follower.tenant, "bank-b");
    assert_eq!(follower.breakdown.coalesce_ns, 710);
    assert_eq!(
        follower.breakdown.scan_ns, 0,
        "the scan belongs to the leader"
    );

    let report = build_report(stats, &forest, &analysis);
    assert!(report.check(&forest, &analysis).is_ok());
    assert_eq!(report.overall.coalesced, 1);

    // Child start-order is restored from timestamps, not line order:
    // queue_wait (t=30) precedes execute (t=40) under the leader root.
    let leader_root = leader.span_id.expect("leader tree");
    let children = &forest.spans[&leader_root].children;
    assert_eq!(children, &vec![11, 12]);

    // Flame stacks keep the two requests' frames merged by path.
    let stacks = collapsed_stacks(&forest);
    assert!(stacks
        .iter()
        .any(|(s, _)| s == "serve.request;serve.execute;engine.audit"));
    assert!(stacks
        .iter()
        .any(|(s, _)| s == "serve.request;serve.coalesce_wait"));
}
