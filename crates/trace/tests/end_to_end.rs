//! The full loop: run the real daemon in-process with a JSONL trail,
//! soak it with the real load client, drain, then feed the trail
//! through the trace pipeline. The reconstructed request count must
//! match the daemon's own drain accounting exactly, and every request's
//! stage decomposition must sum back to its measured wall time.

use fairbridge_engine::EngineConfig;
use fairbridge_obs::{JsonlSink, Telemetry};
use fairbridge_serve::load::{self, LoadConfig};
use fairbridge_serve::server::{self, ServerConfig};
use fairbridge_trace::{analyze, build, build_report, collapsed_stacks, read_events};
use std::sync::Arc;

#[test]
fn soak_trail_reproduces_the_drain_accounting() {
    let path = std::env::temp_dir().join(format!(
        "fb-trace-e2e-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let sink = JsonlSink::create(&path).expect("create trail");
    let telemetry = Telemetry::new(Arc::new(sink));

    let config = ServerConfig {
        workers: 2,
        queue_capacity: 64,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    };
    let handle = server::start(config, telemetry.clone()).expect("server starts");

    let load_config = LoadConfig {
        addr: handle.addr().to_string(),
        connections: 8,
        requests_per_conn: 4,
        distinct_bodies: 3,
        tenants: 3,
    };
    let client_report = load::run(&load_config).expect("soak runs");
    assert_eq!(client_report.ok, 32, "every request must succeed");

    let summary = handle.drain();
    telemetry.flush();
    let text = std::fs::read_to_string(&path).expect("read trail");
    let _ = std::fs::remove_file(&path);

    let (events, stats) = read_events(&text);
    assert_eq!(stats.skipped, 0, "a clean shutdown leaves no damage");

    let forest = build(&events);
    assert_eq!(forest.unmatched_ends, 0);

    let analysis = analyze(&events, &forest);
    // The headline acceptance: the trail reproduces the daemon's own
    // served-request count exactly.
    assert_eq!(analysis.requests.len() as u64, summary.completed);
    assert_eq!(analysis.unmatched_completions, 0);

    for r in &analysis.requests {
        assert_eq!(
            r.breakdown.total_ns(),
            r.wall_ns,
            "decomposition must sum to the wall time (tenant {})",
            r.tenant
        );
        assert!(r.wall_ns > 0);
        assert_eq!(r.status, 200);
        if r.coalesced {
            assert_eq!(r.breakdown.scan_ns, 0, "followers never scan");
        } else {
            assert!(r.breakdown.scan_ns > 0, "leaders spend time in the engine");
        }
    }

    let report = build_report(stats, &forest, &analysis);
    report
        .check(&forest, &analysis)
        .expect("soak trail passes --check");
    assert_eq!(report.overall.n, summary.completed);
    assert_eq!(report.overall.coalesced, summary.coalesced_hits);
    let text_report = report.render_text();
    assert!(
        text_report.starts_with(&format!("fb-trace report: requests={} ", summary.completed)),
        "{text_report}"
    );

    // The flamegraph view of the same trail has the request stack.
    let stacks = collapsed_stacks(&forest);
    assert!(stacks.iter().any(|(s, _)| s.starts_with("serve.request")));
}
