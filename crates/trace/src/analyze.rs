//! Request extraction and latency decomposition.
//!
//! A served request leaves two footprints in the trail: a
//! `serve.request` span tree (possibly spanning three threads) and a
//! `request_completed` event emitted on the connection thread while
//! that span was current. The analyzer joins the two — the event
//! carries identity (tenant, endpoint, status, coalesced) and the
//! authoritative wall time; the span tree carries where that time
//! went.
//!
//! The decomposition buckets are the daemon's own stage spans:
//!
//! * `queue_ns` — `serve.queue_wait`, the job's residency in the
//!   bounded queue (recorded retroactively by the worker that popped it);
//! * `coalesce_ns` — `serve.coalesce_wait`, a follower parked on the
//!   leader's in-flight computation;
//! * `parse_ns` — `serve.parse`, request-body parsing on the worker;
//! * `scan_ns` — the `engine.audit` subtree: partition, scan, merge,
//!   finalize;
//! * `serialize_ns` — `serve.serialize`, rendering the response body;
//! * `other_ns` — the residual: admission bookkeeping, fingerprinting,
//!   response publication, scheduler gaps. Computed as wall minus the
//!   rest, so the six buckets always sum to the wall time exactly.
//!
//! Stage spans are disjoint by construction (sequential stages of one
//! request), so summing them never double-counts; the walk also stops
//! at a matched stage so nested engine spans are not counted twice.

use crate::reader::RawEvent;
use crate::tree::Forest;
use fairbridge_obs::json::Value;

/// Where one request's wall time went, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Residency in the bounded queue (`serve.queue_wait`).
    pub queue_ns: u64,
    /// Parked on an identical in-flight computation
    /// (`serve.coalesce_wait`).
    pub coalesce_ns: u64,
    /// Request-body parsing (`serve.parse`).
    pub parse_ns: u64,
    /// Engine execution (`engine.audit` subtree).
    pub scan_ns: u64,
    /// Response rendering (`serve.serialize`).
    pub serialize_ns: u64,
    /// Everything else: wall minus the named stages.
    pub other_ns: u64,
}

impl Breakdown {
    /// Time attributed to a named stage (everything but `other_ns`).
    pub fn accounted_ns(&self) -> u64 {
        self.queue_ns + self.coalesce_ns + self.parse_ns + self.scan_ns + self.serialize_ns
    }

    /// All six buckets; sums to the request's wall time.
    pub fn total_ns(&self) -> u64 {
        self.accounted_ns() + self.other_ns
    }
}

/// One served request, joined from its completion event and span tree.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The `serve.request` root span id, when the tree was found.
    pub span_id: Option<u64>,
    /// Tenant the daemon attributed the request to.
    pub tenant: String,
    /// Request path (`/audit`, `/mitigate`).
    pub endpoint: String,
    /// HTTP status of the response.
    pub status: u16,
    /// Whether the request rode an in-flight identical computation.
    pub coalesced: bool,
    /// Admission-to-publication wall time from the completion event.
    pub wall_ns: u64,
    /// Stage decomposition; all-`other` when the span tree is missing.
    pub breakdown: Breakdown,
}

/// Every request in a trail, plus the join failures.
#[derive(Debug, Default)]
pub struct Analysis {
    /// One entry per `request_completed` event, in trail order.
    pub requests: Vec<RequestTrace>,
    /// Completions whose span id did not resolve to a `serve.request`
    /// tree — a damaged or filtered trail.
    pub unmatched_completions: usize,
}

/// Joins `request_completed` events against the span forest.
pub fn analyze(events: &[RawEvent], forest: &Forest) -> Analysis {
    let mut analysis = Analysis::default();
    for e in events {
        if e.kind != "request_completed" {
            continue;
        }
        let tenant = field_str(&e.value, "tenant");
        let endpoint = field_str(&e.value, "endpoint");
        let status = e.value.get("status").and_then(Value::as_u64).unwrap_or(0) as u16;
        let coalesced = e
            .value
            .get("coalesced")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let wall_ns = e.elapsed_ns.unwrap_or(0);

        // The event was emitted under the request span on the conn
        // thread; resolve to the root in case a refactor ever emits it
        // deeper in the tree.
        let root = e.span.and_then(|id| forest.root_of(id)).filter(|id| {
            forest
                .spans
                .get(id)
                .is_some_and(|n| n.name == "serve.request")
        });
        let mut breakdown = Breakdown::default();
        match root {
            Some(root_id) => {
                forest.walk(root_id, |node| match node.name.as_str() {
                    "serve.queue_wait" => {
                        breakdown.queue_ns += node.elapsed_ns;
                        false
                    }
                    "serve.coalesce_wait" => {
                        breakdown.coalesce_ns += node.elapsed_ns;
                        false
                    }
                    "serve.parse" => {
                        breakdown.parse_ns += node.elapsed_ns;
                        false
                    }
                    "engine.audit" => {
                        breakdown.scan_ns += node.elapsed_ns;
                        false
                    }
                    "serve.serialize" => {
                        breakdown.serialize_ns += node.elapsed_ns;
                        false
                    }
                    _ => true,
                });
            }
            None => analysis.unmatched_completions += 1,
        }
        breakdown.other_ns = wall_ns.saturating_sub(breakdown.accounted_ns());
        analysis.requests.push(RequestTrace {
            span_id: root,
            tenant,
            endpoint,
            status,
            coalesced,
            wall_ns,
            breakdown,
        });
    }
    analysis
}

fn field_str(value: &Value, key: &str) -> String {
    value
        .get(key)
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_owned()
}

/// Nearest-rank quantile of `sorted` (ascending): the element at rank
/// `round(q · (n−1))`. Matches the `fairbridge-obs` histogram
/// convention so client-side and trail-side percentiles agree.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_events;
    use crate::tree::build;

    /// A leader request trail: conn thread 1 opens the request, worker
    /// thread 2 records queue wait retroactively then executes
    /// parse → engine.audit (with a nested scan) → serialize.
    fn leader_trail() -> String {
        [
            r#"{"t_ns":0,"thread":1,"span":1,"parent":null,"kind":"span_start","name":"serve.request"}"#,
            r#"{"t_ns":100,"thread":2,"span":2,"parent":1,"kind":"span_start","name":"serve.queue_wait"}"#,
            r#"{"t_ns":300,"thread":2,"span":2,"parent":1,"kind":"span_end","name":"serve.queue_wait","elapsed_ns":200}"#,
            r#"{"t_ns":300,"thread":2,"span":3,"parent":1,"kind":"span_start","name":"serve.execute"}"#,
            r#"{"t_ns":310,"thread":2,"span":4,"parent":3,"kind":"span_start","name":"serve.parse"}"#,
            r#"{"t_ns":410,"thread":2,"span":4,"parent":3,"kind":"span_end","name":"serve.parse","elapsed_ns":100}"#,
            r#"{"t_ns":420,"thread":2,"span":5,"parent":3,"kind":"span_start","name":"engine.audit"}"#,
            r#"{"t_ns":430,"thread":2,"span":6,"parent":5,"kind":"span_start","name":"engine.scan"}"#,
            r#"{"t_ns":800,"thread":2,"span":6,"parent":5,"kind":"span_end","name":"engine.scan","elapsed_ns":370}"#,
            r#"{"t_ns":900,"thread":2,"span":5,"parent":3,"kind":"span_end","name":"engine.audit","elapsed_ns":480}"#,
            r#"{"t_ns":910,"thread":2,"span":7,"parent":3,"kind":"span_start","name":"serve.serialize"}"#,
            r#"{"t_ns":960,"thread":2,"span":7,"parent":3,"kind":"span_end","name":"serve.serialize","elapsed_ns":50}"#,
            r#"{"t_ns":970,"thread":2,"span":3,"parent":1,"kind":"span_end","name":"serve.execute","elapsed_ns":670}"#,
            r#"{"t_ns":995,"thread":1,"span":1,"parent":null,"kind":"request_completed","tenant":"bank-a","endpoint":"/audit","status":200,"coalesced":false,"elapsed_ns":1000}"#,
            r#"{"t_ns":1000,"thread":1,"span":1,"parent":null,"kind":"span_end","name":"serve.request","elapsed_ns":1000}"#,
        ]
        .join("\n")
    }

    #[test]
    fn leader_breakdown_buckets_every_stage_once() {
        let (events, _) = read_events(&leader_trail());
        let forest = build(&events);
        let analysis = analyze(&events, &forest);
        assert_eq!(analysis.unmatched_completions, 0);
        assert_eq!(analysis.requests.len(), 1);
        let r = &analysis.requests[0];
        assert_eq!(r.tenant, "bank-a");
        assert_eq!(r.endpoint, "/audit");
        assert_eq!(r.status, 200);
        assert!(!r.coalesced);
        assert_eq!(r.wall_ns, 1000);
        // engine.audit counts once (480), not audit + nested scan.
        assert_eq!(
            r.breakdown,
            Breakdown {
                queue_ns: 200,
                coalesce_ns: 0,
                parse_ns: 100,
                scan_ns: 480,
                serialize_ns: 50,
                other_ns: 170,
            }
        );
        assert_eq!(r.breakdown.total_ns(), r.wall_ns);
    }

    #[test]
    fn follower_breakdown_is_coalesce_wait_plus_other() {
        let text = [
            r#"{"t_ns":0,"thread":3,"span":10,"parent":null,"kind":"span_start","name":"serve.request"}"#,
            r#"{"t_ns":20,"thread":3,"span":11,"parent":10,"kind":"span_start","name":"serve.coalesce_wait"}"#,
            r#"{"t_ns":920,"thread":3,"span":11,"parent":10,"kind":"span_end","name":"serve.coalesce_wait","elapsed_ns":900}"#,
            r#"{"t_ns":940,"thread":3,"span":10,"parent":null,"kind":"request_completed","tenant":"bank-b","endpoint":"/audit","status":200,"coalesced":true,"elapsed_ns":950}"#,
            r#"{"t_ns":950,"thread":3,"span":10,"parent":null,"kind":"span_end","name":"serve.request","elapsed_ns":950}"#,
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        let analysis = analyze(&events, &forest);
        let r = &analysis.requests[0];
        assert!(r.coalesced);
        assert_eq!(r.breakdown.coalesce_ns, 900);
        assert_eq!(r.breakdown.other_ns, 50);
        assert_eq!(r.breakdown.scan_ns, 0);
    }

    #[test]
    fn completion_without_a_tree_is_counted_and_kept() {
        let text = r#"{"t_ns":940,"thread":3,"span":77,"parent":null,"kind":"request_completed","tenant":"t","endpoint":"/audit","status":200,"coalesced":false,"elapsed_ns":500}"#;
        let (events, _) = read_events(text);
        let forest = build(&events);
        let analysis = analyze(&events, &forest);
        assert_eq!(analysis.unmatched_completions, 1);
        assert_eq!(analysis.requests.len(), 1);
        let r = &analysis.requests[0];
        assert_eq!(r.span_id, None);
        assert_eq!(r.breakdown.other_ns, 500);
        assert_eq!(r.breakdown.total_ns(), r.wall_ns);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&sorted, 0.0), 1);
        assert_eq!(quantile_sorted(&sorted, 0.5), 51); // round(0.5·99)=50
        assert_eq!(quantile_sorted(&sorted, 0.99), 99); // round(0.99·99)=98
        assert_eq!(quantile_sorted(&sorted, 1.0), 100);
        assert_eq!(quantile_sorted(&[], 0.5), 0);
        assert_eq!(quantile_sorted(&[7], 0.99), 7);
    }
}
