//! Collapsed-stack flamegraph output.
//!
//! One line per distinct span stack, `name;name;name <self_ns>`, the
//! format Brendan Gregg's `flamegraph.pl` and every compatible viewer
//! ingest directly. Weights are **self** time — each span contributes
//! its elapsed minus its children — so a frame's width in the rendered
//! graph is time spent in that frame itself, and totals are never
//! double-counted across the stack.

use crate::tree::Forest;
use std::collections::BTreeMap;

/// Aggregates every span into `(stack, self_ns)` lines, stacks sorted
/// lexicographically so the output is deterministic. Zero-weight
/// stacks (pure wrappers and unclosed spans) are dropped.
pub fn collapsed_stacks(forest: &Forest) -> Vec<(String, u64)> {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for root in &forest.roots {
        collect(forest, *root, String::new(), &mut weights, 0);
    }
    weights.into_iter().filter(|(_, w)| *w > 0).collect()
}

fn collect(
    forest: &Forest,
    id: u64,
    prefix: String,
    weights: &mut BTreeMap<String, u64>,
    depth: usize,
) {
    if depth > forest.spans.len() {
        return; // cycle in a corrupt trail
    }
    let Some(node) = forest.spans.get(&id) else {
        return;
    };
    let stack = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix};{}", node.name)
    };
    *weights.entry(stack.clone()).or_insert(0) += forest.self_time_ns(id);
    for child in &node.children {
        collect(forest, *child, stack.clone(), weights, depth + 1);
    }
}

/// Renders the collapsed stacks as the canonical text format.
pub fn render(stacks: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, weight) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_events;
    use crate::tree::build;

    #[test]
    fn stacks_carry_self_time_and_merge_identical_paths() {
        let text = [
            // Two requests with the same shape; self times must sum.
            r#"{"t_ns":0,"thread":1,"span":1,"parent":null,"kind":"span_start","name":"serve.request"}"#,
            r#"{"t_ns":10,"thread":1,"span":2,"parent":1,"kind":"span_start","name":"serve.execute"}"#,
            r#"{"t_ns":70,"thread":1,"span":2,"parent":1,"kind":"span_end","name":"serve.execute","elapsed_ns":60}"#,
            r#"{"t_ns":100,"thread":1,"span":1,"parent":null,"kind":"span_end","name":"serve.request","elapsed_ns":100}"#,
            r#"{"t_ns":200,"thread":1,"span":3,"parent":null,"kind":"span_start","name":"serve.request"}"#,
            r#"{"t_ns":210,"thread":1,"span":4,"parent":3,"kind":"span_start","name":"serve.execute"}"#,
            r#"{"t_ns":290,"thread":1,"span":4,"parent":3,"kind":"span_end","name":"serve.execute","elapsed_ns":80}"#,
            r#"{"t_ns":300,"thread":1,"span":3,"parent":null,"kind":"span_end","name":"serve.request","elapsed_ns":100}"#,
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        let stacks = collapsed_stacks(&forest);
        assert_eq!(
            stacks,
            vec![
                ("serve.request".to_owned(), 60),                // (100-60)+(100-80)
                ("serve.request;serve.execute".to_owned(), 140), // 60+80
            ]
        );
        let text = render(&stacks);
        assert_eq!(text, "serve.request 60\nserve.request;serve.execute 140\n");
    }
}
