//! Lenient JSONL trail reader.
//!
//! Real trails are imperfect: a daemon killed mid-write leaves a
//! truncated final line, many threads interleave their lines, and
//! future emitters will add event kinds this reader has never seen.
//! The reader therefore never fails on a bad line — it parses what it
//! can and counts what it skipped, so every downstream report can
//! disclose exactly how much of the trail it actually analyzed. A
//! truncated trail must not masquerade as a complete one.

use fairbridge_obs::json::{parse, Value};

/// One parsed trail event: the envelope fields every event carries,
/// lifted out for cheap access, plus the full parsed object for
/// kind-specific payload fields (`tenant`, `status`, …).
#[derive(Debug, Clone)]
pub struct RawEvent {
    /// Emission timestamp, nanoseconds since telemetry start.
    pub t_ns: u64,
    /// Id of the emitting thread.
    pub thread: u64,
    /// The span this event belongs to. For `span_start`/`span_end`
    /// this is the span's own id; for other kinds it is the span that
    /// was current when the event was emitted.
    pub span: Option<u64>,
    /// The enclosing span at emission time (the parent, for
    /// `span_start`).
    pub parent: Option<u64>,
    /// Event kind name (`span_start`, `counter`, `request_completed`, …).
    pub kind: String,
    /// The `name` field, when present (span and metric events).
    pub name: Option<String>,
    /// The `elapsed_ns` field, when present (`span_end`).
    pub elapsed_ns: Option<u64>,
    /// The full parsed line, for kind-specific fields.
    pub value: Value,
}

/// What the reader saw, disclosed alongside every analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Non-blank lines seen.
    pub lines: usize,
    /// Lines that parsed into a usable event.
    pub events: usize,
    /// Lines skipped: truncated, unparseable, or missing the envelope
    /// fields (`t_ns`, `thread`, `kind`).
    pub skipped: usize,
}

/// Parses a JSONL trail, skipping (and counting) malformed lines.
pub fn read_events(text: &str) -> (Vec<RawEvent>, ReadStats) {
    let mut events = Vec::new();
    let mut stats = ReadStats::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        stats.lines += 1;
        match parse_event(line) {
            Some(e) => {
                events.push(e);
                stats.events += 1;
            }
            None => stats.skipped += 1,
        }
    }
    (events, stats)
}

/// Parses one line; `None` when the line is not a well-formed event.
fn parse_event(line: &str) -> Option<RawEvent> {
    let value = parse(line).ok()?;
    let t_ns = value.get("t_ns").and_then(Value::as_u64)?;
    let thread = value.get("thread").and_then(Value::as_u64)?;
    let kind = value.get("kind").and_then(Value::as_str)?.to_owned();
    let span = value.get("span").and_then(Value::as_u64);
    let parent = value.get("parent").and_then(Value::as_u64);
    let name = value.get("name").and_then(Value::as_str).map(str::to_owned);
    let elapsed_ns = value.get("elapsed_ns").and_then(Value::as_u64);
    Some(RawEvent {
        t_ns,
        thread,
        span,
        parent,
        kind,
        name,
        elapsed_ns,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_lines_parse_with_envelope_fields() {
        let text = concat!(
            "{\"t_ns\":10,\"thread\":1,\"span\":7,\"parent\":null,",
            "\"kind\":\"span_start\",\"name\":\"serve.request\"}\n",
            "{\"t_ns\":90,\"thread\":1,\"span\":7,\"parent\":null,",
            "\"kind\":\"span_end\",\"name\":\"serve.request\",\"elapsed_ns\":80}\n",
        );
        let (events, stats) = read_events(text);
        assert_eq!(
            stats,
            ReadStats {
                lines: 2,
                events: 2,
                skipped: 0
            }
        );
        assert_eq!(events[0].kind, "span_start");
        assert_eq!(events[0].span, Some(7));
        assert_eq!(events[0].parent, None);
        assert_eq!(events[0].name.as_deref(), Some("serve.request"));
        assert_eq!(events[1].elapsed_ns, Some(80));
    }

    #[test]
    fn truncated_and_malformed_lines_are_skipped_not_fatal() {
        let text = concat!(
            "{\"t_ns\":1,\"thread\":1,\"span\":null,\"parent\":null,\"kind\":\"counter\",",
            "\"name\":\"serve.requests\",\"value\":1}\n",
            "{\"t_ns\":2,\"thread\":1,\"span\":null,\"parent\":null,\"ki", // cut mid-write
        );
        let (events, stats) = read_events(text);
        assert_eq!(
            stats,
            ReadStats {
                lines: 2,
                events: 1,
                skipped: 1
            }
        );
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "counter");
    }

    #[test]
    fn lines_missing_envelope_fields_are_skipped() {
        let text = concat!(
            "{\"thread\":1,\"kind\":\"counter\"}\n",            // no t_ns
            "{\"t_ns\":1,\"kind\":\"counter\"}\n",              // no thread
            "{\"t_ns\":1,\"thread\":1}\n",                      // no kind
            "[1,2,3]\n",                                        // not an object
            "{\"t_ns\":1,\"thread\":1,\"kind\":\"mystery\"}\n", // fine: unknown kind
        );
        let (events, stats) = read_events(text);
        assert_eq!(
            stats,
            ReadStats {
                lines: 5,
                events: 1,
                skipped: 4
            }
        );
        assert_eq!(events[0].kind, "mystery");
    }

    #[test]
    fn blank_lines_are_ignored_entirely() {
        let (events, stats) = read_events("\n  \n\n");
        assert!(events.is_empty());
        assert_eq!(stats, ReadStats::default());
    }
}
