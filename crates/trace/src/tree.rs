//! Span-forest reconstruction from a flat event stream.
//!
//! Spans cross threads: the connection thread opens `serve.request`, a
//! worker executes under it via an explicit parent id, and queue
//! residency is recorded retroactively once the job is popped.
//! Reconstruction therefore trusts only the ids carried in the events —
//! never thread locality, and never arrival order (a retroactive span's
//! `span_start` can appear in the trail long after its timestamp).
//!
//! The builder tolerates damage: unclosed spans (daemon killed
//! mid-request) stay in the forest with `end_ns: None`, `span_end`
//! lines whose start was lost are counted rather than matched, and
//! self-referential parent ids (corrupt trail) are treated as roots so
//! traversals terminate.

use crate::reader::RawEvent;
use std::collections::BTreeMap;

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Process-unique span id.
    pub id: u64,
    /// Span name (`serve.request`, `engine.audit`, …).
    pub name: String,
    /// Parent span id as emitted; `None` for roots.
    pub parent: Option<u64>,
    /// Thread that emitted the `span_start`.
    pub thread: u64,
    /// Start timestamp, nanoseconds since telemetry start.
    pub start_ns: u64,
    /// Close timestamp; `None` when the trail never closed this span.
    pub end_ns: Option<u64>,
    /// Duration from `span_end`; 0 while unclosed.
    pub elapsed_ns: u64,
    /// Child span ids, ordered by start time.
    pub children: Vec<u64>,
    /// Indices (into the event slice the forest was built from) of
    /// non-span events attributed to this span.
    pub events: Vec<usize>,
}

/// Every span in a trail, wired into trees.
#[derive(Debug, Default)]
pub struct Forest {
    /// All reconstructed spans, keyed by id.
    pub spans: BTreeMap<u64, SpanNode>,
    /// Spans whose parent is absent from the trail (or `None`).
    pub roots: Vec<u64>,
    /// Spans that started but never ended.
    pub unclosed: usize,
    /// `span_end` events whose `span_start` is missing from the trail.
    pub unmatched_ends: usize,
}

/// Builds the span forest for `events`.
pub fn build(events: &[RawEvent]) -> Forest {
    let mut forest = Forest::default();

    // Pass 1: every span_start creates a node. Duplicated ids (possible
    // only in a corrupt trail) keep the first occurrence.
    for e in events {
        if e.kind != "span_start" {
            continue;
        }
        let (Some(id), Some(name)) = (e.span, e.name.as_deref()) else {
            continue;
        };
        forest.spans.entry(id).or_insert_with(|| SpanNode {
            id,
            name: name.to_owned(),
            parent: e.parent,
            thread: e.thread,
            start_ns: e.t_ns,
            end_ns: None,
            elapsed_ns: 0,
            children: Vec::new(),
            events: Vec::new(),
        });
    }

    // Pass 2: ends close their span; all other span-attributed events
    // attach to it.
    for (i, e) in events.iter().enumerate() {
        match e.kind.as_str() {
            "span_start" => {}
            "span_end" => match e.span.and_then(|id| forest.spans.get_mut(&id)) {
                Some(node) => {
                    node.end_ns = Some(e.t_ns);
                    node.elapsed_ns = e.elapsed_ns.unwrap_or(e.t_ns.saturating_sub(node.start_ns));
                }
                None => forest.unmatched_ends += 1,
            },
            _ => {
                if let Some(node) = e.span.and_then(|id| forest.spans.get_mut(&id)) {
                    node.events.push(i);
                }
            }
        }
    }

    // Pass 3: wire children (ordered by start time) and collect roots.
    // A span whose parent is itself or missing becomes a root.
    let starts: BTreeMap<u64, u64> = forest.spans.values().map(|n| (n.id, n.start_ns)).collect();
    let ids: Vec<u64> = forest.spans.keys().copied().collect();
    for id in &ids {
        let parent = forest
            .spans
            .get(id)
            .and_then(|n| n.parent)
            .filter(|p| p != id && forest.spans.contains_key(p));
        match parent {
            Some(p) => {
                if let Some(parent_node) = forest.spans.get_mut(&p) {
                    parent_node.children.push(*id);
                }
            }
            None => forest.roots.push(*id),
        }
    }
    for node in forest.spans.values_mut() {
        node.children
            .sort_by_key(|c| (starts.get(c).copied().unwrap_or(0), *c));
    }
    forest.unclosed = forest.spans.values().filter(|n| n.end_ns.is_none()).count();
    forest
}

impl Forest {
    /// Time spent in the span itself: `elapsed − Σ children`, clamped
    /// at 0 (children measured on other threads can overshoot by clock
    /// read granularity).
    pub fn self_time_ns(&self, id: u64) -> u64 {
        let Some(node) = self.spans.get(&id) else {
            return 0;
        };
        let child_total: u64 = node
            .children
            .iter()
            .filter_map(|c| self.spans.get(c))
            .map(|c| c.elapsed_ns)
            .sum();
        node.elapsed_ns.saturating_sub(child_total)
    }

    /// The critical path from `root`: at each node, descend into the
    /// child with the largest elapsed time (ties broken by id so the
    /// path is deterministic). Returns `(name, elapsed_ns)` pairs from
    /// the root down; empty when `root` is not in the forest.
    pub fn critical_path(&self, root: u64) -> Vec<(String, u64)> {
        let mut path = Vec::new();
        let mut cursor = Some(root);
        while let Some(id) = cursor {
            let Some(node) = self.spans.get(&id) else {
                break;
            };
            path.push((node.name.clone(), node.elapsed_ns));
            if path.len() > self.spans.len() {
                break; // cycle in a corrupt trail; refuse to spin
            }
            cursor = node
                .children
                .iter()
                .filter_map(|c| self.spans.get(c))
                .max_by_key(|c| (c.elapsed_ns, c.id))
                .map(|c| c.id);
        }
        path
    }

    /// Walks the subtree under `root` (root included), calling `visit`
    /// on each node. `visit` returns whether to descend into the node's
    /// children. Iterative with a visit cap, so corrupt trails cannot
    /// recurse or spin the walk.
    pub fn walk(&self, root: u64, mut visit: impl FnMut(&SpanNode) -> bool) {
        let mut stack = vec![root];
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            visited += 1;
            if visited > self.spans.len() {
                break;
            }
            let Some(node) = self.spans.get(&id) else {
                continue;
            };
            if visit(node) {
                // Reverse so children pop in start order.
                stack.extend(node.children.iter().rev().copied());
            }
        }
    }

    /// The root ancestor of `id` (follows parent links; stops at cycles).
    pub fn root_of(&self, id: u64) -> Option<u64> {
        let mut cursor = self.spans.get(&id)?;
        let mut hops = 0usize;
        while let Some(p) = cursor.parent.filter(|p| *p != cursor.id) {
            let Some(parent) = self.spans.get(&p) else {
                break;
            };
            cursor = parent;
            hops += 1;
            if hops > self.spans.len() {
                return None; // parent cycle in a corrupt trail
            }
        }
        Some(cursor.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_events;

    fn line(
        t: u64,
        thread: u64,
        span: u64,
        parent: Option<u64>,
        kind: &str,
        extra: &str,
    ) -> String {
        let parent = parent.map_or("null".to_owned(), |p| p.to_string());
        format!("{{\"t_ns\":{t},\"thread\":{thread},\"span\":{span},\"parent\":{parent},\"kind\":\"{kind}\"{extra}}}")
    }

    fn start(t: u64, thread: u64, span: u64, parent: Option<u64>, name: &str) -> String {
        line(
            t,
            thread,
            span,
            parent,
            "span_start",
            &format!(",\"name\":\"{name}\""),
        )
    }

    fn end(t: u64, thread: u64, span: u64, name: &str, elapsed: u64) -> String {
        line(
            t,
            thread,
            span,
            None,
            "span_end",
            &format!(",\"name\":\"{name}\",\"elapsed_ns\":{elapsed}"),
        )
    }

    #[test]
    fn cross_thread_spans_join_one_tree() {
        // Conn thread 1 opens the request; worker thread 2 executes
        // under it via the explicit parent id; the queue wait arrives
        // retroactively (start line emitted after its own timestamp).
        let text = [
            start(100, 1, 1, None, "serve.request"),
            start(150, 2, 3, Some(1), "serve.execute"),
            end(140, 2, 2, "serve.queue_wait", 40),
            start(100, 2, 2, Some(1), "serve.queue_wait"),
            end(400, 2, 3, "serve.execute", 250),
            end(450, 1, 1, "serve.request", 350),
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        assert_eq!(forest.roots, vec![1]);
        let root = &forest.spans[&1];
        // Children ordered by start time: queue_wait (t=100) before
        // execute (t=150), even though their lines interleave.
        assert_eq!(root.children, vec![2, 3]);
        assert_eq!(forest.spans[&2].elapsed_ns, 40);
        assert_eq!(forest.spans[&3].thread, 2);
        assert_eq!(forest.unclosed, 0);
        // The queue_wait end line precedes its start line in the trail;
        // the two-pass build still pairs them.
        assert_eq!(forest.unmatched_ends, 0);
    }

    #[test]
    fn self_time_subtracts_children() {
        let text = [
            start(0, 1, 1, None, "a"),
            start(10, 1, 2, Some(1), "b"),
            end(40, 1, 2, "b", 30),
            end(100, 1, 1, "a", 100),
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        assert_eq!(forest.self_time_ns(1), 70);
        assert_eq!(forest.self_time_ns(2), 30);
        assert_eq!(forest.self_time_ns(999), 0);
    }

    #[test]
    fn critical_path_follows_the_longest_child() {
        let text = [
            start(0, 1, 1, None, "root"),
            start(10, 1, 2, Some(1), "short"),
            end(20, 1, 2, "short", 10),
            start(30, 1, 3, Some(1), "long"),
            start(35, 1, 4, Some(3), "inner"),
            end(75, 1, 4, "inner", 40),
            end(90, 1, 3, "long", 60),
            end(100, 1, 1, "root", 100),
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        let path = forest.critical_path(1);
        let names: Vec<&str> = path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["root", "long", "inner"]);
        assert_eq!(path[1].1, 60);
    }

    #[test]
    fn unclosed_spans_and_orphan_ends_are_counted_not_fatal() {
        let text = [
            start(0, 1, 1, None, "serve.request"),
            end(50, 1, 9, "ghost", 10), // never started
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        assert_eq!(forest.unclosed, 1);
        assert_eq!(forest.unmatched_ends, 1);
        assert_eq!(forest.spans[&1].end_ns, None);
        // The unclosed root still yields a (zero-elapsed) critical path.
        assert_eq!(forest.critical_path(1).len(), 1);
    }

    #[test]
    fn self_parenting_span_becomes_a_root_and_walks_terminate() {
        let text = [start(0, 1, 5, Some(5), "loop"), end(10, 1, 5, "loop", 10)].join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        assert_eq!(forest.roots, vec![5]);
        assert_eq!(forest.root_of(5), Some(5));
        assert_eq!(forest.critical_path(5).len(), 1);
        let mut n = 0;
        forest.walk(5, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn attached_events_land_on_their_span() {
        let text = [
            start(0, 1, 1, None, "serve.request"),
            line(
                5,
                1,
                1,
                None,
                "request_completed",
                ",\"tenant\":\"t\",\"endpoint\":\"/audit\",\"status\":200,\"coalesced\":false,\"elapsed_ns\":90",
            ),
            end(100, 1, 1, "serve.request", 100),
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        assert_eq!(forest.spans[&1].events, vec![1]);
        assert_eq!(events[1].kind, "request_completed");
    }

    #[test]
    fn root_of_resolves_through_deep_ancestry() {
        let text = [
            start(0, 1, 1, None, "a"),
            start(1, 1, 2, Some(1), "b"),
            start(2, 2, 3, Some(2), "c"),
        ]
        .join("\n");
        let (events, _) = read_events(&text);
        let forest = build(&events);
        assert_eq!(forest.root_of(3), Some(1));
        assert_eq!(forest.root_of(42), None);
    }
}
