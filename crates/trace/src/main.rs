//! The `fb-trace` binary.
//!
//! ```text
//! fb-trace report [--check] [--json] [PATH]
//! fb-trace flame [PATH]
//! ```
//!
//! `PATH` is a JSONL evidential trail (`fairbridge-serve --telemetry`,
//! `fb-experiments --telemetry`); `-` or no path reads stdin, so the
//! daemon's trail can be piped straight through. `report` prints the
//! per-endpoint / per-tenant latency breakdown; `--check` additionally
//! enforces the trail invariants (every completion has a span tree,
//! every tree has a critical path) and exits nonzero on violation —
//! that is the mode CI runs after the soak. `flame` prints collapsed
//! stacks for flamegraph renderers.

use fairbridge_trace::{analyze, build, build_report, collapsed_stacks, flame, read_events};
use std::io::Read as _;
use std::process::ExitCode;

struct Args {
    command: Command,
    path: Option<String>,
    check: bool,
    json: bool,
}

enum Command {
    Report,
    Flame,
}

const USAGE: &str = "usage: fb-trace <report [--check] [--json] | flame> [PATH|-]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    let command = match it.next().map(String::as_str) {
        Some("report") => Command::Report,
        Some("flame") => Command::Flame,
        Some("--help" | "-h") | None => return Err(USAGE.to_owned()),
        Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    let mut path = None;
    let mut check = false;
    let mut json = false;
    for flag in it {
        match flag.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"));
            }
            other => {
                if path.replace(other.to_owned()).is_some() {
                    return Err(format!("more than one PATH given\n{USAGE}"));
                }
            }
        }
    }
    Ok(Args {
        command,
        path,
        check,
        json,
    })
}

/// Writes to stdout, swallowing errors: a downstream `head` closing
/// the pipe is a request to stop, not a failure (`println!` would
/// panic on EPIPE).
fn emit(text: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn read_input(path: Option<&str>) -> Result<String, String> {
    match path {
        Some("-") | None => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("read stdin: {e}"))?;
            Ok(text)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}")),
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    let text = read_input(args.path.as_deref())?;
    let (events, stats) = read_events(&text);
    let forest = build(&events);
    match args.command {
        Command::Report => {
            let analysis = analyze(&events, &forest);
            let report = build_report(stats, &forest, &analysis);
            if args.json {
                emit(&report.render_json());
                emit("\n");
            } else {
                emit(&report.render_text());
            }
            if args.check {
                report
                    .check(&forest, &analysis)
                    .map_err(|e| format!("check failed: {e}"))?;
                emit("fb-trace check: ok\n");
            }
            Ok(())
        }
        Command::Flame => {
            let stacks = collapsed_stacks(&forest);
            emit(&flame::render(&stacks));
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fb-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
