//! The `fb-trace report` aggregation: per-endpoint and per-tenant
//! latency summaries, trail-health counters, and the `--check`
//! invariants CI runs after every soak.
//!
//! All percentiles are nearest-rank over the actual request walls in
//! the trail (not histogram sketches): the analyzer holds every sample
//! in memory, so there is no reason to approximate. The breakdown rows
//! show each stage's share of the group's *total* wall time — a
//! throughput-weighted view, so one slow request cannot dominate the
//! percentages the way it dominates p99.

use crate::analyze::{quantile_sorted, Analysis, Breakdown, RequestTrace};
use crate::reader::ReadStats;
use crate::tree::Forest;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate over one group of requests (an endpoint, a tenant, or the
/// whole trail).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Group key (`/audit`, `bank-a`, …).
    pub key: String,
    /// Requests in the group.
    pub n: u64,
    /// Of those, how many rode a coalesced computation.
    pub coalesced: u64,
    /// Median wall time, milliseconds.
    pub wall_p50_ms: f64,
    /// 99th-percentile wall time, milliseconds.
    pub wall_p99_ms: f64,
    /// Summed stage times across the group, nanoseconds.
    pub totals: Breakdown,
    /// Summed wall time across the group, nanoseconds.
    pub wall_total_ns: u64,
}

impl GroupSummary {
    fn from_requests(key: &str, requests: &[&RequestTrace]) -> GroupSummary {
        let mut walls: Vec<u64> = requests.iter().map(|r| r.wall_ns).collect();
        walls.sort_unstable();
        let mut totals = Breakdown::default();
        let mut wall_total_ns = 0u64;
        let mut coalesced = 0u64;
        for r in requests {
            totals.queue_ns += r.breakdown.queue_ns;
            totals.coalesce_ns += r.breakdown.coalesce_ns;
            totals.parse_ns += r.breakdown.parse_ns;
            totals.scan_ns += r.breakdown.scan_ns;
            totals.serialize_ns += r.breakdown.serialize_ns;
            totals.other_ns += r.breakdown.other_ns;
            wall_total_ns += r.wall_ns;
            coalesced += u64::from(r.coalesced);
        }
        GroupSummary {
            key: key.to_owned(),
            n: requests.len() as u64,
            coalesced,
            wall_p50_ms: quantile_sorted(&walls, 0.5) as f64 / 1e6,
            wall_p99_ms: quantile_sorted(&walls, 0.99) as f64 / 1e6,
            totals,
            wall_total_ns,
        }
    }

    /// A stage's share of the group's total wall time, in percent.
    fn share(&self, stage_ns: u64) -> f64 {
        if self.wall_total_ns == 0 {
            return 0.0;
        }
        stage_ns as f64 / self.wall_total_ns as f64 * 100.0
    }
}

/// The full report for one trail.
#[derive(Debug)]
pub struct Report {
    /// Reader disclosure: lines seen / parsed / skipped.
    pub stats: ReadStats,
    /// Spans reconstructed.
    pub spans: usize,
    /// Spans that never closed.
    pub unclosed: usize,
    /// `span_end` lines with no matching start.
    pub unmatched_ends: usize,
    /// Completions with no matching span tree.
    pub unmatched_completions: usize,
    /// The whole-trail aggregate.
    pub overall: GroupSummary,
    /// Per-endpoint aggregates, key-sorted.
    pub endpoints: Vec<GroupSummary>,
    /// Per-tenant aggregates, key-sorted.
    pub tenants: Vec<GroupSummary>,
    /// Critical path of the slowest request with a span tree.
    pub slowest_path: Vec<(String, u64)>,
}

/// Builds the report from an analyzed trail.
pub fn build_report(stats: ReadStats, forest: &Forest, analysis: &Analysis) -> Report {
    let all: Vec<&RequestTrace> = analysis.requests.iter().collect();
    let mut by_endpoint: BTreeMap<&str, Vec<&RequestTrace>> = BTreeMap::new();
    let mut by_tenant: BTreeMap<&str, Vec<&RequestTrace>> = BTreeMap::new();
    for r in &analysis.requests {
        by_endpoint.entry(r.endpoint.as_str()).or_default().push(r);
        by_tenant.entry(r.tenant.as_str()).or_default().push(r);
    }
    let slowest_path = analysis
        .requests
        .iter()
        .filter(|r| r.span_id.is_some())
        .max_by_key(|r| r.wall_ns)
        .and_then(|r| r.span_id)
        .map(|id| forest.critical_path(id))
        .unwrap_or_default();
    Report {
        stats,
        spans: forest.spans.len(),
        unclosed: forest.unclosed,
        unmatched_ends: forest.unmatched_ends,
        unmatched_completions: analysis.unmatched_completions,
        overall: GroupSummary::from_requests("all", &all),
        endpoints: by_endpoint
            .iter()
            .map(|(k, v)| GroupSummary::from_requests(k, v))
            .collect(),
        tenants: by_tenant
            .iter()
            .map(|(k, v)| GroupSummary::from_requests(k, v))
            .collect(),
        slowest_path,
    }
}

fn push_group_line(out: &mut String, label: &str, g: &GroupSummary) {
    let _ = writeln!(
        out,
        "{label} {key}: n={n} coalesced={c} wall p50={p50:.3}ms p99={p99:.3}ms | \
         queue={q:.1}% coalesce={co:.1}% parse={pa:.1}% scan={sc:.1}% \
         serialize={se:.1}% other={ot:.1}%",
        key = g.key,
        n = g.n,
        c = g.coalesced,
        p50 = g.wall_p50_ms,
        p99 = g.wall_p99_ms,
        q = g.share(g.totals.queue_ns),
        co = g.share(g.totals.coalesce_ns),
        pa = g.share(g.totals.parse_ns),
        sc = g.share(g.totals.scan_ns),
        se = g.share(g.totals.serialize_ns),
        ot = g.share(g.totals.other_ns),
    );
}

impl Report {
    /// Human-readable report. The first line's `requests=<n>` is load-
    /// bearing: CI compares it against the daemon's own drain summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fb-trace report: requests={} coalesced={} spans={} unclosed={}",
            self.overall.n, self.overall.coalesced, self.spans, self.unclosed
        );
        let _ = writeln!(
            out,
            "trail: lines={} events={} skipped={} unmatched_ends={} unmatched_completions={}",
            self.stats.lines,
            self.stats.events,
            self.stats.skipped,
            self.unmatched_ends,
            self.unmatched_completions
        );
        push_group_line(&mut out, "overall", &self.overall);
        for g in &self.endpoints {
            push_group_line(&mut out, "endpoint", g);
        }
        for g in &self.tenants {
            push_group_line(&mut out, "tenant", g);
        }
        if !self.slowest_path.is_empty() {
            out.push_str("slowest request critical path:");
            for (name, elapsed) in &self.slowest_path {
                let _ = write!(out, " {name}={:.3}ms", *elapsed as f64 / 1e6);
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable report, stable field order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"requests\":{},\"coalesced\":{},\"spans\":{},\"unclosed\":{},\
             \"unmatched_ends\":{},\"unmatched_completions\":{},\
             \"lines\":{},\"events\":{},\"skipped\":{}",
            self.overall.n,
            self.overall.coalesced,
            self.spans,
            self.unclosed,
            self.unmatched_ends,
            self.unmatched_completions,
            self.stats.lines,
            self.stats.events,
            self.stats.skipped
        );
        out.push_str(",\"overall\":");
        push_group_json(&mut out, &self.overall);
        out.push_str(",\"endpoints\":[");
        for (i, g) in self.endpoints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_group_json(&mut out, g);
        }
        out.push_str("],\"tenants\":[");
        for (i, g) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_group_json(&mut out, g);
        }
        out.push_str("],\"slowest_path\":[");
        for (i, (name, elapsed)) in self.slowest_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{name}\",\"elapsed_ns\":{elapsed}}}");
        }
        out.push_str("]}");
        out
    }

    /// The CI invariants. `Err` explains the first violated one:
    ///
    /// 1. the trail parsed into at least one event and one request;
    /// 2. every `request_completed` joined a `serve.request` span tree;
    /// 3. every joined request has a non-empty critical path rooted at
    ///    `serve.request`;
    /// 4. every request's stage decomposition sums back to its wall
    ///    time (the residual bucket makes this exact by construction —
    ///    a failure means the analyzer itself is broken).
    pub fn check(&self, forest: &Forest, analysis: &Analysis) -> Result<(), String> {
        if self.stats.events == 0 {
            return Err("trail contains no parseable events".to_owned());
        }
        if analysis.requests.is_empty() {
            return Err("trail contains no completed requests".to_owned());
        }
        if analysis.unmatched_completions > 0 {
            return Err(format!(
                "{} request completion(s) have no matching span tree",
                analysis.unmatched_completions
            ));
        }
        for (i, r) in analysis.requests.iter().enumerate() {
            let Some(root) = r.span_id else {
                return Err(format!("request #{i} lost its span tree"));
            };
            let path = forest.critical_path(root);
            match path.first() {
                Some((name, _)) if name == "serve.request" => {}
                _ => {
                    return Err(format!(
                        "request #{i} (tenant {}): critical path empty or not rooted at serve.request",
                        r.tenant
                    ));
                }
            }
            if r.breakdown.total_ns() != r.wall_ns {
                return Err(format!(
                    "request #{i} (tenant {}): breakdown sums to {} ns but wall is {} ns",
                    r.tenant,
                    r.breakdown.total_ns(),
                    r.wall_ns
                ));
            }
        }
        Ok(())
    }
}

fn push_group_json(out: &mut String, g: &GroupSummary) {
    let _ = write!(
        out,
        "{{\"key\":\"{}\",\"n\":{},\"coalesced\":{},\"wall_p50_ms\":{:.6},\
         \"wall_p99_ms\":{:.6},\"wall_total_ns\":{},\"queue_ns\":{},\
         \"coalesce_ns\":{},\"parse_ns\":{},\"scan_ns\":{},\"serialize_ns\":{},\
         \"other_ns\":{}}}",
        g.key,
        g.n,
        g.coalesced,
        g.wall_p50_ms,
        g.wall_p99_ms,
        g.wall_total_ns,
        g.totals.queue_ns,
        g.totals.coalesce_ns,
        g.totals.parse_ns,
        g.totals.scan_ns,
        g.totals.serialize_ns,
        g.totals.other_ns,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::reader::read_events;
    use crate::tree::build;

    fn request_trail(span: u64, tenant: &str, endpoint: &str, wall: u64, t0: u64) -> String {
        [
            format!(
                "{{\"t_ns\":{t0},\"thread\":1,\"span\":{span},\"parent\":null,\
                 \"kind\":\"span_start\",\"name\":\"serve.request\"}}"
            ),
            format!(
                "{{\"t_ns\":{},\"thread\":1,\"span\":{span},\"parent\":null,\
                 \"kind\":\"request_completed\",\"tenant\":\"{tenant}\",\
                 \"endpoint\":\"{endpoint}\",\"status\":200,\"coalesced\":false,\
                 \"elapsed_ns\":{wall}}}",
                t0 + wall
            ),
            format!(
                "{{\"t_ns\":{},\"thread\":1,\"span\":{span},\"parent\":null,\
                 \"kind\":\"span_end\",\"name\":\"serve.request\",\"elapsed_ns\":{wall}}}",
                t0 + wall
            ),
        ]
        .join("\n")
    }

    fn report_for(text: &str) -> (Report, Forest, Analysis) {
        let (events, stats) = read_events(text);
        let forest = build(&events);
        let analysis = analyze(&events, &forest);
        let report = build_report(stats, &forest, &analysis);
        (report, forest, analysis)
    }

    #[test]
    fn report_groups_by_endpoint_and_tenant() {
        let text = [
            request_trail(1, "bank-a", "/audit", 1_000_000, 0),
            request_trail(2, "bank-a", "/mitigate", 2_000_000, 10),
            request_trail(3, "bank-b", "/audit", 3_000_000, 20),
        ]
        .join("\n");
        let (report, forest, analysis) = report_for(&text);
        assert_eq!(report.overall.n, 3);
        assert_eq!(report.endpoints.len(), 2);
        assert_eq!(report.tenants.len(), 2);
        let audit = &report.endpoints[0];
        assert_eq!(audit.key, "/audit");
        assert_eq!(audit.n, 2);
        let bank_a = &report.tenants[0];
        assert_eq!(bank_a.key, "bank-a");
        assert_eq!(bank_a.n, 2);
        assert!(report.check(&forest, &analysis).is_ok());
        // The slowest request drives the critical-path line.
        assert_eq!(report.slowest_path[0].1, 3_000_000);
    }

    #[test]
    fn text_report_leads_with_the_request_count() {
        let (report, _, _) = report_for(&request_trail(1, "t", "/audit", 500, 0));
        let text = report.render_text();
        assert!(
            text.starts_with("fb-trace report: requests=1 "),
            "CI scrapes requests= from the first line:\n{text}"
        );
        assert!(text.contains("tenant t: n=1"));
    }

    #[test]
    fn json_report_parses_with_the_obs_parser() {
        let (report, _, _) = report_for(&request_trail(1, "t", "/audit", 500, 0));
        let v = fairbridge_obs::json::parse(&report.render_json()).expect("valid json");
        assert_eq!(
            v.get("requests")
                .and_then(fairbridge_obs::json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("overall")
                .and_then(|o| o.get("wall_total_ns"))
                .and_then(fairbridge_obs::json::Value::as_u64),
            Some(500)
        );
    }

    #[test]
    fn check_rejects_a_trail_with_orphan_completions() {
        let text = "{\"t_ns\":9,\"thread\":1,\"span\":42,\"parent\":null,\
                    \"kind\":\"request_completed\",\"tenant\":\"t\",\
                    \"endpoint\":\"/audit\",\"status\":200,\"coalesced\":false,\
                    \"elapsed_ns\":100}";
        let (report, forest, analysis) = report_for(text);
        let err = report.check(&forest, &analysis).expect_err("must fail");
        assert!(err.contains("no matching span tree"), "{err}");
    }

    #[test]
    fn check_rejects_an_empty_trail() {
        let (report, forest, analysis) = report_for("");
        assert!(report.check(&forest, &analysis).is_err());
    }
}
