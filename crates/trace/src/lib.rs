//! Offline analysis of the evidential trail (`fb-trace`).
//!
//! The daemon emits a flat JSONL stream (`fairbridge-obs`): spans that
//! cross threads, counters, histograms, and typed fairness events.
//! This crate turns that stream back into structure, entirely offline
//! and with zero dependencies beyond the `obs` JSON parser:
//!
//! * [`reader`] — lenient line-by-line ingestion that skips (and
//!   counts) truncated or malformed lines instead of failing;
//! * [`tree`] — span-forest reconstruction from explicit parent ids,
//!   tolerant of unclosed spans, orphan ends, and retroactive spans
//!   whose lines appear out of timestamp order;
//! * [`mod@analyze`] — joins `request_completed` events to their span
//!   trees and decomposes each request's wall time into queue wait,
//!   coalescing wait, parse, engine scan, serialization, and residual;
//! * [`flame`] — collapsed-stack output (self-time weighted) for any
//!   flamegraph renderer;
//! * [`report`] — per-endpoint / per-tenant aggregation and the
//!   `--check` invariants CI runs after every soak.
//!
//! The analysis never trusts the trail: every tolerated defect is
//! surfaced as a count in the report, so a damaged trail is visible
//! rather than silently under-reported.

pub mod analyze;
pub mod flame;
pub mod reader;
pub mod report;
pub mod tree;

pub use analyze::{analyze, Analysis, Breakdown, RequestTrace};
pub use flame::collapsed_stacks;
pub use reader::{read_events, RawEvent, ReadStats};
pub use report::{build_report, GroupSummary, Report};
pub use tree::{build, Forest, SpanNode};
