//! Test-scope resolution: which tokens live in test-only code.
//!
//! All rules except the fixture assertions skip test code: `#[cfg(test)]`
//! items (typically `mod tests { … }`), `#[test]` functions, and bare
//! `mod tests { … }` blocks. The resolver runs one pass over the token
//! stream, tracking brace depth and the pending effect of test
//! attributes, and returns a parallel `Vec<bool>` marking every token
//! (comments included) inside a test region.
//!
//! `#[cfg(not(test))]` and `#[cfg_attr(test, …)]` items are *not* test
//! regions — the code under them is compiled into the library — and the
//! resolver deliberately leaves them unmarked so the rules still apply.

use crate::lexer::{TokKind, Token};

/// Marks each token as test-scoped (`true`) or library code (`false`).
pub fn test_flags(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    // Depth at which each active test region started; tokens are test
    // code while the stack is non-empty.
    let mut regions: Vec<i64> = Vec::new();
    let mut depth: i64 = 0;
    // A test attribute (or `mod tests` header) was seen and will claim
    // the next `{ … }` block, unless a `;` ends the item first.
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        let in_test = !regions.is_empty();
        if let Some(f) = flags.get_mut(i) {
            *f = in_test;
        }
        let tok = match tokens.get(i) {
            Some(t) => t,
            None => break,
        };
        if tok.is_comment() {
            i += 1;
            continue;
        }
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "#") => {
                // Attribute: `#[...]` or `#![...]`. Scan to the matching
                // bracket, collecting identifiers.
                let mut j = i + 1;
                if matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct && t.text == "!") {
                    j += 1;
                }
                if matches!(tokens.get(j), Some(t) if t.kind == TokKind::Punct && t.text == "[") {
                    let mut brackets = 0i64;
                    let mut idents: Vec<&str> = Vec::new();
                    while let Some(t) = tokens.get(j) {
                        if let Some(f) = flags.get_mut(j) {
                            *f = in_test;
                        }
                        match (t.kind, t.text.as_str()) {
                            (TokKind::Punct, "[") => brackets += 1,
                            (TokKind::Punct, "]") => {
                                brackets -= 1;
                                if brackets == 0 {
                                    break;
                                }
                            }
                            (TokKind::Ident, name) => idents.push(name),
                            _ => {}
                        }
                        j += 1;
                    }
                    if is_test_attr(&idents) {
                        pending = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            (TokKind::Punct, "{") => {
                depth += 1;
                if pending {
                    regions.push(depth);
                    pending = false;
                    if let Some(f) = flags.get_mut(i) {
                        *f = true;
                    }
                }
            }
            (TokKind::Punct, "}") => {
                if regions.last() == Some(&depth) {
                    regions.pop();
                }
                depth -= 1;
            }
            // `#[cfg(test)] use …;` / `mod tests;` — item ends without a
            // body, so the pending attribute fizzles.
            (TokKind::Punct, ";") => pending = false,
            (TokKind::Ident, "mod") => {
                if matches!(tokens.get(i + 1), Some(t) if t.kind == TokKind::Ident && t.text == "tests")
                {
                    pending = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    flags
}

/// Whether an attribute's identifier list denotes test-only compilation:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not
/// `#[cfg(not(test))]` or `#[cfg_attr(test, …)]`.
fn is_test_attr(idents: &[&str]) -> bool {
    if idents == ["test"] {
        return true;
    }
    idents.contains(&"cfg")
        && idents.contains(&"test")
        && !idents.contains(&"not")
        && !idents.contains(&"cfg_attr")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn flagged_idents(src: &str) -> Vec<(String, bool)> {
        let toks = tokenize(src);
        let flags = test_flags(&toks);
        toks.iter()
            .zip(flags)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, f)| (t.text.clone(), f))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_scoped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { inner(); } }\nfn lib2() {}";
        let idents = flagged_idents(src);
        assert!(idents.contains(&("lib".into(), false)));
        assert!(idents.contains(&("inner".into(), true)));
        assert!(idents.contains(&("lib2".into(), false)));
    }

    #[test]
    fn bare_mod_tests_is_scoped() {
        let idents = flagged_idents("mod tests { fn t() { x(); } }\nfn lib() { y(); }");
        assert!(idents.contains(&("x".into(), true)));
        assert!(idents.contains(&("y".into(), false)));
    }

    #[test]
    fn test_fn_attribute_is_scoped() {
        let idents = flagged_idents("#[test]\nfn check() { probe(); }\nfn lib() { keep(); }");
        assert!(idents.contains(&("probe".into(), true)));
        assert!(idents.contains(&("keep".into(), false)));
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let idents = flagged_idents("#[cfg(not(test))]\nfn shipped() { real(); }");
        assert!(idents.contains(&("real".into(), false)));
    }

    #[test]
    fn cfg_test_use_without_body_does_not_leak() {
        let idents =
            flagged_idents("#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { z(); }");
        assert!(idents.contains(&("z".into(), false)));
    }

    #[test]
    fn nested_braces_inside_test_region_stay_scoped() {
        let src = "#[cfg(test)]\nmod tests { fn t() { if a { b(); } } }\nfn c() {}";
        let idents = flagged_idents(src);
        assert!(idents.contains(&("b".into(), true)));
        assert!(idents.contains(&("c".into(), false)));
    }
}
