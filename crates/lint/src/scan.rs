//! Workspace traversal: find every `crates/*/src/**/*.rs`, lint it,
//! run the workspace-wide lock analysis, aggregate, and telemeter the
//! pass itself.
//!
//! Traversal order is sorted at every directory level, so reports,
//! counters, the lock graph and JSON output are byte-stable across runs
//! and machines — the linter holds itself to the determinism bar it
//! enforces.
//!
//! Two layers run over each file: the lexical rules
//! ([`crate::rules::check_source`], per-file) and the structural parse
//! ([`crate::parse`]), whose models are pooled across the whole
//! workspace and fed to [`crate::locks::analyze`] — lock-order edges
//! cross file and crate boundaries, so C1/C2 can only be computed once
//! every file has been read. C1/C2 findings honour the same
//! `fb-lint: allow(...)` markers as the lexical rules.

use crate::locks::{self, LockGraph};
use crate::parse::{self, FileModel};
use crate::rules::{check_source, Finding};
use fairbridge_obs::{FairnessEvent, Telemetry};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Aggregated result of linting the whole workspace.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Number of `.rs` files linted.
    pub files_scanned: usize,
    /// All standing violations, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// All allow-marker suppressions, same order.
    pub suppressed: Vec<Finding>,
    /// The workspace lock-order graph (rule C1's artifact).
    pub graph: LockGraph,
}

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace
/// directory containing `crates/`).
pub fn scan_tree(root: &Path, telemetry: &Telemetry) -> Result<ScanReport, String> {
    let span = telemetry.span("lint.scan");
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "no `crates/` directory under {} — run from the workspace root or pass --root",
            root.display()
        ));
    }
    let mut report = ScanReport::default();
    let mut models: BTreeMap<String, FileModel> = BTreeMap::new();
    for crate_dir in sorted_entries(&crates_dir)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for path in files {
            let rel = rel_path(root, &path);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let file_report = check_source(&rel, &text);
            report.files_scanned += 1;
            report.findings.extend(file_report.findings);
            report.suppressed.extend(file_report.suppressed);
            models.insert(rel.clone(), parse::parse_file(&rel, &text));
        }
    }

    // Workspace-wide structural pass: the call graph and lock-order
    // analysis see every crate's functions at once.
    let all_fns: Vec<_> = models
        .values()
        .flat_map(|m| m.fns.iter().cloned())
        .collect();
    let locks_report = locks::analyze(&all_fns);
    report.graph = locks_report.graph;
    for finding in locks_report.findings {
        let comments = models
            .get(&finding.file)
            .map(|m| m.comments.as_slice())
            .unwrap_or(&[]);
        if crate::rules::allowed(comments, finding.rule, finding.line) {
            report.suppressed.push(finding);
        } else {
            report.findings.push(finding);
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    telemetry
        .counter("lint.files_scanned")
        .add(report.files_scanned as u64);
    telemetry
        .counter("lint.violations")
        .add(report.findings.len() as u64);
    telemetry
        .counter("lint.suppressed")
        .add(report.suppressed.len() as u64);
    for rule in crate::rules::ALL_RULES {
        let n = report.findings.iter().filter(|f| f.rule == *rule).count();
        telemetry
            .counter(&format!("lint.violations.{}", rule.id()))
            .add(n as u64);
    }
    telemetry
        .counter("lint.lock_graph.nodes")
        .add(report.graph.nodes.len() as u64);
    telemetry
        .counter("lint.lock_graph.edges")
        .add(report.graph.edges.len() as u64);
    telemetry.emit(FairnessEvent::LintCompleted {
        files_scanned: report.files_scanned,
        violations: report.findings.len(),
        suppressed: report.suppressed.len(),
    });
    drop(span);
    Ok(report)
}

/// Sorted directory entries (directories and files alike).
fn sorted_entries(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Repo-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanning_this_workspace_finds_rust_files() {
        // The lint crate lives at crates/lint, so the workspace root is
        // two levels up from CARGO_MANIFEST_DIR.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let telemetry = Telemetry::off();
        let report = scan_tree(&root, &telemetry).expect("scan");
        assert!(report.files_scanned > 50, "saw {}", report.files_scanned);
        // Determinism: a second scan reports the same thing.
        let again = scan_tree(&root, &telemetry).expect("rescan");
        assert_eq!(report.findings, again.findings);
        assert_eq!(report.graph.render_dot(), again.graph.render_dot());
    }

    #[test]
    fn missing_crates_dir_is_an_error() {
        let telemetry = Telemetry::off();
        assert!(scan_tree(Path::new("/nonexistent-fb-lint"), &telemetry).is_err());
    }
}
