//! A small hand-rolled Rust lexer.
//!
//! fb-lint's rules are *lexical*: they match token sequences, never types.
//! That keeps the pass zero-dependency and fast, but it means the lexer
//! must be scrupulous about the places where naive text matching lies —
//! string literals (including raw and byte strings), nested block
//! comments, char literals vs. lifetimes, and numeric suffixes. Comments
//! are kept as tokens: the `// SAFETY:` rule (U1) and the
//! `fb-lint: allow(...)` suppression markers read them.
//!
//! The lexer is intentionally forgiving: an unterminated string or
//! comment consumes to end of input rather than erroring, because lint
//! input is assumed to be code `rustc` already accepts (fixtures aside).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, ...).
    Ident,
    /// Integer literal (`0`, `42u32`, `0xff`).
    Int,
    /// Float literal (`0.0`, `1e-3`, `2.5f32`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct,
    /// `// ...` comment (text includes the slashes).
    LineComment,
    /// `/* ... */` comment, possibly nested and multi-line.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// 1-based line of the token's last character (differs from
    /// [`Token::line`] only for multi-line tokens such as block comments
    /// and raw strings).
    pub fn end_line(&self) -> u32 {
        let newlines = self.text.matches('\n').count() as u32;
        self.line.saturating_add(newlines)
    }

    /// Whether this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input degrades
/// to best-effort tokens (see module docs).
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text: String = self
            .chars
            .get(start..self.pos)
            .unwrap_or_default()
            .iter()
            .collect();
        self.out.push(Token { kind, text, line });
    }

    /// Advances one char, maintaining the line counter.
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if self.at_string_start() {
                self.string();
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '_' || c.is_alphabetic() {
                self.ident();
            } else {
                let (start, line) = (self.pos, self.line);
                self.bump();
                self.push(TokKind::Punct, start, line);
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        self.push(TokKind::BlockComment, start, line);
    }

    /// Is the cursor at the start of any string literal? Handles `"…"`,
    /// `r"…"`, `r#"…"#` (any hash count), `b"…"`, `br#"…"#`.
    fn at_string_start(&self) -> bool {
        match self.peek(0) {
            Some('"') => true,
            Some('r') => self.raw_hash_count(1).is_some(),
            Some('b') => match self.peek(1) {
                Some('"') => true,
                Some('r') => self.raw_hash_count(2).is_some(),
                _ => false,
            },
            _ => false,
        }
    }

    /// If `r`/`br` at `offset` begins a raw string, the number of `#`s.
    fn raw_hash_count(&self, offset: usize) -> Option<usize> {
        let mut hashes = 0usize;
        loop {
            match self.peek(offset + hashes) {
                Some('#') => hashes += 1,
                Some('"') => return Some(hashes),
                _ => return None,
            }
        }
    }

    fn string(&mut self) {
        let (start, line) = (self.pos, self.line);
        // Skip the prefix (`r`, `b`, `br`) and count raw hashes.
        let mut raw_hashes: Option<usize> = None;
        if self.peek(0) == Some('r') {
            raw_hashes = self.raw_hash_count(1);
        } else if self.peek(0) == Some('b') {
            if self.peek(1) == Some('r') {
                raw_hashes = self.raw_hash_count(2);
                self.bump();
            }
            self.bump();
        }
        if let Some(h) = raw_hashes {
            self.bump(); // `r`
            for _ in 0..h {
                self.bump();
            }
        }
        self.bump(); // opening quote
        match raw_hashes {
            Some(h) => {
                // Scan for `"` followed by `h` hashes.
                while let Some(c) = self.peek(0) {
                    if c == '"' && (1..=h).all(|k| self.peek(k) == Some('#')) {
                        self.bump();
                        for _ in 0..h {
                            self.bump();
                        }
                        break;
                    }
                    self.bump();
                }
            }
            None => {
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        self.bump();
                        self.bump();
                    } else if c == '"' {
                        self.bump();
                        break;
                    } else {
                        self.bump();
                    }
                }
            }
        }
        self.push(TokKind::Str, start, line);
    }

    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.pos, self.line);
        let is_char = match self.peek(1) {
            Some('\\') => true,
            // 'x' is a char only if a closing quote follows the payload;
            // otherwise it's a lifetime ('a in `&'a str`, 'static, ...).
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if is_char {
            self.bump(); // opening quote
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    self.bump();
                    self.bump();
                } else if c == '\'' {
                    self.bump();
                    break;
                } else {
                    self.bump();
                }
            }
            self.push(TokKind::Char, start, line);
        } else {
            self.bump(); // quote
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, start, line);
        }
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_ascii_alphanumeric()) {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_ascii_digit()) {
                self.bump();
            }
            // Fractional part: a dot followed by a digit (so `1..n` ranges
            // and `1.max(2)` method calls stay integers).
            if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
                float = true;
                self.bump();
                while matches!(self.peek(0), Some(c) if c == '_' || c.is_ascii_digit()) {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = usize::from(matches!(self.peek(1), Some('+') | Some('-')));
                if matches!(self.peek(1 + sign), Some(c) if c.is_ascii_digit()) {
                    float = true;
                    self.bump();
                    if sign == 1 {
                        self.bump();
                    }
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit()) {
                        self.bump();
                    }
                }
            }
            // Suffix (`u32`, `f64`, ...).
            let suffix_start = self.pos;
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_ascii_alphanumeric()) {
                self.bump();
            }
            let suffix: String = self
                .chars
                .get(suffix_start..self.pos)
                .unwrap_or_default()
                .iter()
                .collect();
            if suffix.contains("f32") || suffix.contains("f64") {
                float = true;
            }
        }
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            start,
            line,
        );
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            self.bump();
        }
        self.push(TokKind::Ident, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = a.b[0] + 1.5e3;");
        assert!(toks.contains(&(TokKind::Ident, "let".into())));
        assert!(toks.contains(&(TokKind::Int, "0".into())));
        assert!(toks.contains(&(TokKind::Float, "1.5e3".into())));
    }

    #[test]
    fn ranges_and_method_calls_on_ints_stay_ints() {
        let toks = kinds("for i in 1..10 { 2.max(3); }");
        assert!(toks.contains(&(TokKind::Int, "1".into())));
        assert!(toks.contains(&(TokKind::Int, "10".into())));
        assert!(toks.contains(&(TokKind::Int, "2".into())));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn float_suffixes_are_floats() {
        let toks = kinds("fold(0f64, 1_0.5, 3f32)");
        assert!(toks.contains(&(TokKind::Float, "0f64".into())));
        assert!(toks.contains(&(TokKind::Float, "1_0.5".into())));
        assert!(toks.contains(&(TokKind::Float, "3f32".into())));
    }

    #[test]
    fn strings_swallow_code_lookalikes() {
        let toks = kinds(r#"let s = "x.unwrap() /* not a comment */";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!toks.contains(&(TokKind::Ident, "unwrap".into())));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks =
            kinds(r###"let s = r#"panic!("inside")"#; let b = b"bytes"; let br = br#"raw"#;"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
        assert!(!toks.contains(&(TokKind::Ident, "panic".into())));
    }

    #[test]
    fn nested_block_comments_and_line_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b // tail .unwrap()\nc");
        assert!(toks.contains(&(TokKind::Ident, "a".into())));
        assert!(toks.contains(&(TokKind::Ident, "b".into())));
        assert!(toks.contains(&(TokKind::Ident, "c".into())));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
        assert!(!toks.contains(&(TokKind::Ident, "unwrap".into())));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds(r"fn f<'a>(x: &'a str) -> char { '\n' } let q = 'q';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = tokenize("a\n/* two\nlines */\nb\n\"multi\nline\"\nc");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.text == name)
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
        let block = toks
            .iter()
            .find(|t| t.kind == TokKind::BlockComment)
            .expect("block comment token");
        assert_eq!((block.line, block.end_line()), (2, 3));
    }
}
