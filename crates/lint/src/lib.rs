//! # fairbridge-lint
//!
//! In-tree static analysis (`fb-lint`) for the fairbridge workspace: a
//! zero-dependency pass, built on a small hand-rolled Rust lexer, that
//! proves repo-specific determinism and panic-safety invariants hold in
//! *every* source file — not only on the paths the equivalence tests
//! sample.
//!
//! Why a bespoke linter: the properties that make fairbridge audits
//! *reproducible evidence* (paper §IV.E manipulation-robustness, §IV.F
//! sampling soundness) are workspace conventions clippy cannot express —
//! "all fan-out goes through `ordered_parallel_map`", "no wall-clock
//! reads outside the telemetry layer", "float reductions share the
//! kernel's fixed order". fb-lint checks exactly those (rules
//! [`Rule::D1`]–[`Rule::D4`]), plus the panic-site ratchet ([`Rule::P1`])
//! and `// SAFETY:` discipline ([`Rule::U1`]).
//!
//! Since v2 the pass is also *structural*: a lightweight item/brace-tree
//! parser ([`parse`]) recovers `fn` items, a conservative name-based
//! call graph, and lock-guard scopes; on top of it [`locks`] computes
//! the workspace lock-order graph and the concurrency rules —
//! [`Rule::C1`] (lock-order cycles, re-acquisition, condvar waits with
//! a second guard), [`Rule::C2`] (guards held across blocking calls)
//! and the lexical [`Rule::C3`] (poison-absorbing lock access,
//! `// ORDER:` justifications on weak atomic orderings). `fb-lint
//! --locks [--dot]` dumps the graph as a reviewable artifact.
//!
//! Existing D/P/U debt is grandfathered in `lint_baseline.json` and can
//! only shrink: new violations fail CI, `--update-baseline` refuses to
//! grow the committed total unless `--allow-growth` is explicit. The C
//! family admits **no** grandfathered debt at all — the baseline schema
//! rejects C entries and `--update-baseline` refuses to run while any C
//! finding exists. See [`baseline`] for the ratchet and [`rules`] for
//! each rule's rationale (`fb-lint --explain <RULE>` prints it).
//!
//! ```
//! use fairbridge_lint::rules::{check_source, Rule};
//!
//! let report = check_source(
//!     "crates/engine/src/demo.rs",
//!     "use std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//! );
//! assert_eq!(report.findings.len(), 2);
//! assert_eq!(report.findings[0].rule, Rule::D1);
//! assert_eq!(report.findings[1].rule, Rule::P1);
//! ```
//!
//! [`Rule::D1`]: rules::Rule::D1
//! [`Rule::D4`]: rules::Rule::D4
//! [`Rule::P1`]: rules::Rule::P1
//! [`Rule::U1`]: rules::Rule::U1
//! [`Rule::C1`]: rules::Rule::C1
//! [`Rule::C2`]: rules::Rule::C2
//! [`Rule::C3`]: rules::Rule::C3

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod scope;

pub use baseline::{diff, Baseline, Diff};
pub use locks::{analyze, LockGraph, LocksReport};
pub use parse::{parse_file, FileModel, FnModel};
pub use rules::{check_source, FileReport, Finding, Rule, ALL_RULES};
pub use scan::{scan_tree, ScanReport};
