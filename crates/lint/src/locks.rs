//! C-rule analysis: the interprocedural lock-order graph (C1) and
//! blocking-while-locked detection (C2) over [`crate::parse`] models.
//!
//! The analysis replays each non-test function's [`Op`] stream against a
//! guard stack, recording which locks are held at every acquisition and
//! call site, then propagates *may-acquire* and *may-block* summaries
//! along the conservative name-based call graph to a fixpoint:
//!
//! * **Lock-order edges.** `A → B` whenever some function acquires `B`
//!   (directly, or transitively through a call) while holding `A`. A
//!   cycle in this graph is a potential deadlock: two threads taking the
//!   participating locks in different orders can each hold one and wait
//!   forever for the other. C1 flags every cycle, every re-acquisition
//!   of a lock already held (a self-deadlock with `std::sync::Mutex`),
//!   and every `Condvar::wait` made while a *second* guard is held (the
//!   wait releases only the guard it is given — the second lock stays
//!   held across the park, starving every other thread that needs it).
//! * **Blocking while locked.** C2 flags a named guard held across a
//!   potentially-indefinite blocking call (socket/file I/O,
//!   `JoinHandle::join`, condvar-backed queue operations,
//!   `thread::sleep`) — directly or through a callee that may block.
//!   Exemptions: same-statement temporary guards (the
//!   `x.lock().…` accessor chains the workspace favours) and blocking
//!   *through the guard itself* (writing via a `MutexGuard<BufWriter>`
//!   is the point of that mutex).
//!
//! Name-based call resolution is deliberately humble: callee names that
//! collide with common std container/iterator/atomic methods
//! ([`NO_RESOLVE`]) are never resolved, because binding `conns.len()` to
//! some workspace type's `len` would fabricate edges. Guard-returning
//! accessors (`fn lock(&self) -> MutexGuard<…>`) are resolved by name
//! and treated as acquisitions at the call site. DESIGN §16 catalogues
//! the over- and under-approximations.

use crate::parse::{FnModel, Op};
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Callee names never resolved against the workspace: they shadow
/// ubiquitous std methods (`len`, `push`, io's `flush`, …) or are
/// defined by several unrelated workspace types (`snapshot`), so a name
/// match carries no evidence the call lands in the fn the resolver would
/// pick. (Kept sorted for readability; membership is a linear scan over
/// ~90 entries.)
pub const NO_RESOLVE: &[&str] = &[
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "drop",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "fetch_add",
    "fetch_or",
    "fetch_sub",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "len",
    "load",
    "map",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "position",
    "push",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "skip",
    "snapshot",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splice",
    "split",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "try_from",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "with_capacity",
    "write",
    "zip",
];

/// Where a lock-order edge was observed (first sighting wins; the scan
/// order is deterministic, so so is the provenance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeOrigin {
    /// File of the acquisition/call that added the edge.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// `Some(callee)` when the edge came through a call rather than a
    /// direct acquisition.
    pub via: Option<String>,
}

/// The workspace lock-order graph: every lock identity seen, and every
/// held-at-acquisition edge with its provenance.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock identity acquired anywhere (non-test code).
    pub nodes: BTreeSet<String>,
    /// `(held, acquired)` → first origin.
    pub edges: BTreeMap<(String, String), EdgeOrigin>,
}

impl LockGraph {
    /// Strongly connected components with more than one node, plus
    /// single nodes with a self-edge — i.e. every cycle witness. Empty
    /// iff the graph is acyclic.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = sccs(&self.adjacency())
            .into_iter()
            .filter(|c| c.len() > 1)
            .collect();
        for node in &self.nodes {
            if self.edges.contains_key(&(node.clone(), node.clone())) {
                out.push(vec![node.clone()]);
            }
        }
        out.sort();
        out
    }

    /// Whether the graph has no cycles (including self-edges).
    pub fn is_acyclic(&self) -> bool {
        self.cycles().is_empty()
    }

    fn adjacency(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for node in &self.nodes {
            adj.entry(node.clone()).or_default();
        }
        for (from, to) in self.edges.keys() {
            adj.entry(from.clone()).or_default().insert(to.clone());
        }
        adj
    }

    /// Human-readable listing: nodes, edges with provenance, cycles.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lock-order graph: {} locks, {} edges\n\nlocks:\n",
            self.nodes.len(),
            self.edges.len()
        ));
        for node in &self.nodes {
            out.push_str(&format!("  {node}\n"));
        }
        out.push_str("\nedges (held -> acquired):\n");
        if self.edges.is_empty() {
            out.push_str("  (none — no lock is ever taken while another is held)\n");
        }
        for ((from, to), origin) in &self.edges {
            let via = origin
                .via
                .as_ref()
                .map(|c| format!(" via {c}()"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {from} -> {to}  [{}:{}{via}]\n",
                origin.file, origin.line
            ));
        }
        let cycles = self.cycles();
        if cycles.is_empty() {
            out.push_str("\nacyclic: yes\n");
        } else {
            out.push_str("\nacyclic: NO — cycles:\n");
            for cycle in &cycles {
                out.push_str(&format!("  {}\n", cycle.join(" -> ")));
            }
        }
        out
    }

    /// Graphviz DOT form, byte-stable across runs.
    pub fn render_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("// fb-lint --locks --dot: the workspace lock-order graph.\n");
        out.push_str("// An edge A -> B means B is acquired while A is held; any cycle\n");
        out.push_str("// is a potential deadlock and fails the lint (rule C1).\n");
        out.push_str("digraph lock_order {\n  rankdir=LR;\n  node [shape=box];\n");
        for node in &self.nodes {
            out.push_str(&format!("  \"{node}\";\n"));
        }
        for ((from, to), origin) in &self.edges {
            let via = origin
                .via
                .as_ref()
                .map(|c| format!(" via {c}()"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  \"{from}\" -> \"{to}\" [label=\"{}:{}{via}\"];\n",
                origin.file, origin.line
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// The outcome of the workspace C1/C2 pass.
#[derive(Debug, Clone, Default)]
pub struct LocksReport {
    /// C1/C2 findings, deduplicated by (file, line, rule).
    pub findings: Vec<Finding>,
    /// The lock-order graph.
    pub graph: LockGraph,
}

/// A guard alive during simulation.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name; `None` for anonymous (shadowed) guards.
    name: Option<String>,
    /// Locks this guard protects (one for direct acquisitions; an
    /// accessor's full set for guard-returning calls).
    locks: Vec<String>,
    /// Block depth at which the guard's scope ends.
    depth: i64,
    /// Same-statement temporary (unbound expression): dies at the next
    /// `;` at or below its depth, and is exempt from C2.
    temp: bool,
}

/// Per-function facts from a first, context-free replay.
#[derive(Debug, Clone, Default)]
struct FnFacts {
    /// Locks this fn acquires directly (incl. via guard-returning
    /// accessor calls resolved by name).
    direct_acquires: BTreeSet<String>,
    /// Whether this fn blocks directly (I/O, join, condvar wait, …).
    direct_blocks: bool,
}

/// Runs the whole C1/C2 analysis over every parsed function.
/// Test-scoped functions are excluded entirely: they neither produce
/// findings nor participate in call resolution.
pub fn analyze(fns: &[FnModel]) -> LocksReport {
    let live: Vec<&FnModel> = fns.iter().filter(|f| !f.is_test).collect();

    // Name index over resolvable functions.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in live.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }

    // Guard-returning accessors, by name: calling one acquires its locks.
    let mut accessor_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &live {
        if f.returns_guard {
            let locks: BTreeSet<String> = f
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::Acquire { lock, .. } => Some(lock.clone()),
                    _ => None,
                })
                .collect();
            if !locks.is_empty() {
                accessor_locks
                    .entry(f.name.clone())
                    .or_default()
                    .extend(locks);
            }
        }
    }

    // Pass 1: context-free per-fn facts.
    let mut facts: Vec<FnFacts> = Vec::with_capacity(live.len());
    for f in &live {
        let mut ff = FnFacts::default();
        for op in &f.ops {
            match op {
                Op::Acquire { lock, .. } => {
                    ff.direct_acquires.insert(lock.clone());
                }
                Op::Call { callee, .. } => {
                    if let Some(locks) = accessor(&accessor_locks, callee) {
                        ff.direct_acquires.extend(locks.iter().cloned());
                    }
                }
                Op::Blocking { .. } | Op::CondvarWait { .. } => ff.direct_blocks = true,
                _ => {}
            }
        }
        facts.push(ff);
    }

    // Pass 2: fixpoint of may-acquire / may-block along the call graph.
    let mut may_acquire: Vec<BTreeSet<String>> =
        facts.iter().map(|f| f.direct_acquires.clone()).collect();
    let mut may_block: Vec<bool> = facts.iter().map(|f| f.direct_blocks).collect();
    loop {
        let mut changed = false;
        for (i, f) in live.iter().enumerate() {
            for op in &f.ops {
                let Op::Call { callee, .. } = op else {
                    continue;
                };
                for &j in resolve(&by_name, callee) {
                    if j == i {
                        continue; // self-recursion adds nothing new
                    }
                    let (acq_j, block_j) = (may_acquire.get(j).cloned(), may_block.get(j).copied());
                    if let (Some(acq_j), Some(acq_i)) = (acq_j, may_acquire.get_mut(i)) {
                        for lock in acq_j {
                            changed |= acq_i.insert(lock);
                        }
                    }
                    if block_j == Some(true) {
                        if let Some(slot) = may_block.get_mut(i) {
                            if !*slot {
                                *slot = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: guard-stack replay per fn — edges and findings.
    let mut graph = LockGraph::default();
    for lock in facts.iter().flat_map(|f| f.direct_acquires.iter()) {
        graph.nodes.insert(lock.clone());
    }
    let mut findings: Vec<Finding> = Vec::new();
    for f in &live {
        replay(
            f,
            &by_name,
            &accessor_locks,
            &may_acquire,
            &may_block,
            &mut graph,
            &mut findings,
        );
    }

    // Cycle findings (multi-node SCCs; self-edges are already reported
    // at their acquisition/call sites).
    for cycle in graph.cycles() {
        if cycle.len() < 2 {
            continue;
        }
        let origin = graph
            .edges
            .iter()
            .find(|((from, to), _)| cycle.contains(from) && cycle.contains(to))
            .map(|(_, o)| o.clone());
        let Some(origin) = origin else { continue };
        findings.push(Finding {
            rule: Rule::C1,
            file: origin.file.clone(),
            line: origin.line,
            message: format!(
                "lock-order cycle (potential deadlock): {}",
                cycle.join(" -> ")
            ),
        });
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    LocksReport { findings, graph }
}

/// Workspace call resolution by callee name ([`NO_RESOLVE`]-filtered).
fn resolve<'a>(by_name: &'a BTreeMap<String, Vec<usize>>, callee: &str) -> &'a [usize] {
    if NO_RESOLVE.contains(&callee) {
        return &[];
    }
    by_name.get(callee).map(Vec::as_slice).unwrap_or(&[])
}

/// The locks a guard-returning accessor named `callee` would acquire.
fn accessor<'a>(
    accessor_locks: &'a BTreeMap<String, BTreeSet<String>>,
    callee: &str,
) -> Option<&'a BTreeSet<String>> {
    if NO_RESOLVE.contains(&callee) {
        return None;
    }
    accessor_locks.get(callee)
}

/// Replays one fn's ops against a guard stack, adding edges and C1/C2
/// findings.
fn replay(
    f: &FnModel,
    by_name: &BTreeMap<String, Vec<usize>>,
    accessor_locks: &BTreeMap<String, BTreeSet<String>>,
    may_acquire: &[BTreeSet<String>],
    may_block: &[bool],
    graph: &mut LockGraph,
    findings: &mut Vec<Finding>,
) {
    let mut depth = 0i64;
    let mut guards: Vec<Guard> = Vec::new();
    let held = |guards: &[Guard]| -> Vec<String> {
        let mut locks: Vec<String> = guards
            .iter()
            .flat_map(|g| g.locks.iter().cloned())
            .collect();
        locks.sort();
        locks.dedup();
        locks
    };

    for op in &f.ops {
        match op {
            Op::OpenBlock => depth += 1,
            Op::CloseBlock => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Op::EndStmt => {
                guards.retain(|g| !(g.temp && g.depth >= depth));
            }
            Op::DropGuard { name, .. } => {
                if let Some(pos) = guards
                    .iter()
                    .rposition(|g| g.name.as_deref() == Some(name.as_str()))
                {
                    guards.remove(pos);
                }
            }
            Op::Acquire {
                lock,
                binding,
                cond,
                line,
            } => {
                let held_now = held(&guards);
                if held_now.iter().any(|h| h == lock) {
                    findings.push(Finding {
                        rule: Rule::C1,
                        file: f.file.clone(),
                        line: *line,
                        message: format!(
                            "`{lock}` acquired while already held in `{}` (self-deadlock)",
                            f.name
                        ),
                    });
                }
                add_edges(
                    graph,
                    &held_now,
                    std::slice::from_ref(lock),
                    &f.file,
                    *line,
                    None,
                );
                push_guard(&mut guards, binding, *cond, depth, vec![lock.clone()]);
            }
            Op::CondvarWait { guard_arg, line } => {
                let released: BTreeSet<&String> = guards
                    .iter()
                    .filter(|g| g.name.as_deref() == guard_arg.as_deref())
                    .flat_map(|g| g.locks.iter())
                    .collect();
                let still_held: Vec<String> = held(&guards)
                    .into_iter()
                    .filter(|l| !released.contains(l))
                    .collect();
                if !still_held.is_empty() {
                    findings.push(Finding {
                        rule: Rule::C1,
                        file: f.file.clone(),
                        line: *line,
                        message: format!(
                            "`Condvar::wait` in `{}` parks while a second guard is held ({})",
                            f.name,
                            still_held.join(", ")
                        ),
                    });
                }
            }
            Op::Blocking {
                what,
                receiver,
                line,
            } => {
                report_blocked(f, &guards, what, receiver.as_deref(), *line, findings);
            }
            Op::Call {
                callee,
                receiver,
                binding,
                cond,
                line,
            } => {
                let held_now = held(&guards);
                let resolved = resolve(by_name, callee);
                if !held_now.is_empty() && !resolved.is_empty() {
                    let callee_acquires: BTreeSet<String> = resolved
                        .iter()
                        .flat_map(|&j| may_acquire.get(j).into_iter().flatten().cloned())
                        .collect();
                    for lock in &callee_acquires {
                        if held_now.iter().any(|h| h == lock) {
                            findings.push(Finding {
                                rule: Rule::C1,
                                file: f.file.clone(),
                                line: *line,
                                message: format!(
                                    "call to `{callee}` may re-acquire `{lock}` already held in `{}`",
                                    f.name
                                ),
                            });
                        }
                    }
                    let acq: Vec<String> = callee_acquires.into_iter().collect();
                    add_edges(graph, &held_now, &acq, &f.file, *line, Some(callee));
                }
                if resolved.iter().any(|&j| may_block.get(j) == Some(&true)) {
                    report_blocked(f, &guards, callee, receiver.as_deref(), *line, findings);
                }
                // A guard-returning accessor call acquires at the caller.
                if let Some(locks) = accessor(accessor_locks, callee) {
                    let locks: Vec<String> = locks.iter().cloned().collect();
                    push_guard(&mut guards, binding, *cond, depth, locks);
                }
            }
        }
    }
}

/// Pushes a new guard, demoting any same-named guard to anonymous —
/// shadowing a binding does *not* drop the shadowed value until the
/// scope ends, so the old lock stays held (the classic rebinding trap).
fn push_guard(
    guards: &mut Vec<Guard>,
    binding: &Option<String>,
    cond: bool,
    depth: i64,
    locks: Vec<String>,
) {
    if let Some(name) = binding {
        for g in guards.iter_mut() {
            if g.name.as_deref() == Some(name.as_str()) {
                g.name = None;
            }
        }
    }
    guards.push(Guard {
        name: binding.clone(),
        locks,
        // An `if let`/`while let` condition binding scopes to the body
        // block that follows, one level deeper than the condition.
        depth: depth + i64::from(cond),
        temp: binding.is_none(),
    });
}

/// Emits a C2 finding if a non-temporary guard other than the blocking
/// call's own receiver is held.
fn report_blocked(
    f: &FnModel,
    guards: &[Guard],
    what: &str,
    receiver: Option<&str>,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    // The "blocking through the guard itself" exemption needs an actual
    // receiver: a receiver-less call (`std::thread::sleep(..)`) blocks
    // under *every* live guard, named or shadow-demoted anonymous.
    let offenders: Vec<String> = guards
        .iter()
        .filter(|g| !(g.temp || (receiver.is_some() && g.name.as_deref() == receiver)))
        .flat_map(|g| g.locks.iter().cloned())
        .collect();
    if offenders.is_empty() {
        return;
    }
    let mut locks = offenders;
    locks.sort();
    locks.dedup();
    findings.push(Finding {
        rule: Rule::C2,
        file: f.file.clone(),
        line,
        message: format!(
            "blocking call `{what}` in `{}` while holding {}",
            f.name,
            locks.join(", ")
        ),
    });
}

/// Adds `held × acquired` edges, keeping the first origin per edge.
fn add_edges(
    graph: &mut LockGraph,
    held: &[String],
    acquired: &[String],
    file: &str,
    line: u32,
    via: Option<&str>,
) {
    for lock in acquired {
        graph.nodes.insert(lock.clone());
    }
    for from in held {
        for to in acquired {
            graph
                .edges
                .entry((from.clone(), to.clone()))
                .or_insert_with(|| EdgeOrigin {
                    file: file.to_owned(),
                    line,
                    via: via.map(str::to_owned),
                });
        }
    }
}

/// Strongly connected components (Kosaraju), smallest-node-first inside
/// each component and components sorted; deterministic for BTree input.
fn sccs(adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    // First DFS: post-order over the forward graph.
    let mut order: Vec<&String> = Vec::new();
    let mut visited: BTreeSet<&String> = BTreeSet::new();
    for start in adj.keys() {
        if visited.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit (node, expanded?) stack.
        let mut stack: Vec<(&String, bool)> = vec![(start, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if !visited.insert(node) {
                continue;
            }
            stack.push((node, true));
            if let Some(next) = adj.get(node) {
                for n in next {
                    if !visited.contains(n) {
                        stack.push((n, false));
                    }
                }
            }
        }
    }
    // Transpose.
    let mut rev: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for (from, tos) in adj {
        rev.entry(from).or_default();
        for to in tos {
            rev.entry(to).or_default().insert(from);
        }
    }
    // Second DFS over the transpose, in reverse post-order.
    let mut component: BTreeMap<&String, usize> = BTreeMap::new();
    let mut components: Vec<Vec<String>> = Vec::new();
    for &start in order.iter().rev() {
        if component.contains_key(start) {
            continue;
        }
        let id = components.len();
        let mut members: Vec<String> = Vec::new();
        let mut stack: Vec<&String> = vec![start];
        while let Some(node) = stack.pop() {
            if component.contains_key(node) {
                continue;
            }
            component.insert(node, id);
            members.push(node.clone());
            if let Some(next) = rev.get(node) {
                for &n in next {
                    if !component.contains_key(n) {
                        stack.push(n);
                    }
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components.sort();
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn analyze_src(path: &str, src: &str) -> LocksReport {
        analyze(&parse_file(path, src).fns)
    }

    fn rules_of(r: &LocksReport) -> Vec<Rule> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn nested_acquisition_makes_an_edge_and_stays_acyclic() {
        let src = "impl S { fn m(&self) {\n\
            let a = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
            let b = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert!(r
            .graph
            .edges
            .contains_key(&("serve/x.a".to_owned(), "serve/x.b".to_owned())));
        assert!(r.graph.is_acyclic());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = "impl S {\n\
            fn m(&self) { let a = self.a.lock().unwrap_or_else(|e| e.into_inner()); let b = self.b.lock().unwrap_or_else(|e| e.into_inner()); }\n\
            fn n(&self) { let b = self.b.lock().unwrap_or_else(|e| e.into_inner()); let a = self.a.lock().unwrap_or_else(|e| e.into_inner()); }\n\
        }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(!r.graph.is_acyclic());
        assert!(rules_of(&r).contains(&Rule::C1));
    }

    #[test]
    fn interprocedural_edge_via_call() {
        let src = "impl S {\n\
            fn inner(&self) { let b = self.b.lock().unwrap_or_else(|e| e.into_inner()); }\n\
            fn outer(&self) { let a = self.a.lock().unwrap_or_else(|e| e.into_inner()); self.inner(); }\n\
        }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        let origin = r
            .graph
            .edges
            .get(&("serve/x.a".to_owned(), "serve/x.b".to_owned()))
            .expect("edge");
        assert_eq!(origin.via.as_deref(), Some("inner"));
    }

    #[test]
    fn denylisted_names_are_not_resolved() {
        // A workspace `len` that takes a lock must not bind to `v.len()`.
        let src = "impl S {\n\
            fn len(&self) -> usize { self.state.lock().unwrap_or_else(|e| e.into_inner()).n }\n\
            fn m(&self, v: &[u32]) { let a = self.a.lock().unwrap_or_else(|e| e.into_inner()); let k = v.len(); }\n\
        }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(!r.graph.edges.keys().any(|(from, _)| from == "serve/x.a"));
    }

    #[test]
    fn self_recursion_terminates() {
        let src = "impl S { fn m(&self, d: u32) { let a = self.a.lock().unwrap_or_else(|e| e.into_inner()); drop(a); if d > 0 { self.m(d - 1); } } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert!(r.graph.is_acyclic());
    }

    #[test]
    fn condvar_wait_with_second_guard_is_c1() {
        let src = "impl S { fn m(&self) {\n\
            let extra = self.extra.lock().unwrap_or_else(|e| e.into_inner());\n\
            let mut g = self.m1.lock().unwrap_or_else(|e| e.into_inner());\n\
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![Rule::C1]);
    }

    #[test]
    fn condvar_wait_with_only_its_own_guard_is_clean() {
        let src = "impl S { fn m(&self) {\n\
            let mut g = self.m1.lock().unwrap_or_else(|e| e.into_inner());\n\
            while !done { g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner()); }\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn blocking_with_named_guard_is_c2_and_drop_clears_it() {
        let flagged = "impl S { fn m(&self, s: &mut T) {\n\
            let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n\
            s.write_all(b\"x\");\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", flagged);
        assert_eq!(rules_of(&r), vec![Rule::C2]);
        let dropped = "impl S { fn m(&self, s: &mut T) {\n\
            let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n\
            drop(g);\n\
            s.write_all(b\"x\");\n\
        } }";
        assert!(analyze_src("crates/serve/src/x.rs", dropped)
            .findings
            .is_empty());
    }

    #[test]
    fn blocking_through_the_guard_itself_is_exempt() {
        let src = "impl S { fn m(&self) {\n\
            let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());\n\
            out.write_all(b\"x\");\n\
            out.flush();\n\
        } }";
        assert!(analyze_src("crates/serve/src/x.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn temporary_guards_are_exempt_from_c2() {
        let src = "impl S { fn m(&self) { let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush(); } }";
        assert!(analyze_src("crates/serve/src/x.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn shadowed_guard_stays_held() {
        // Rebinding g does NOT release the first lock; blocking after
        // dropping only the second must still flag the first.
        let src = "impl S { fn m(&self, s: &mut T) {\n\
            let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
            let g = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
            drop(g);\n\
            s.write_all(b\"x\");\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![Rule::C2]);
        assert!(r.findings.iter().any(|f| f.message.contains("serve/x.a")));
    }

    #[test]
    fn guard_returning_accessor_counts_at_the_caller() {
        let src = "impl Q {\n\
            fn lock(&self) -> MutexGuard<'_, State> { self.state.lock().unwrap_or_else(|e| e.into_inner()) }\n\
            fn m(&self, s: &mut T) { let st = self.lock(); s.write_all(b\"x\"); }\n\
        }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert_eq!(rules_of(&r), vec![Rule::C2]);
        assert!(r
            .findings
            .iter()
            .any(|f| f.message.contains("serve/x.state")));
    }

    #[test]
    fn interprocedural_blocking_via_callee() {
        let src = "impl S {\n\
            fn waits(&self, h: H) { h.join(); }\n\
            fn m(&self, h: H) { let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); self.waits(h); }\n\
        }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(rules_of(&r).contains(&Rule::C2));
    }

    #[test]
    fn test_code_is_excluded() {
        let src = "#[cfg(test)]\nmod tests { use super::*; #[test] fn t() {\n\
            let a = s.a.lock().unwrap_or_else(|e| e.into_inner());\n\
            let b = s.b.lock().unwrap_or_else(|e| e.into_inner());\n\
            h.join();\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert!(r.graph.nodes.is_empty());
    }

    #[test]
    fn disjoint_locks_have_no_edge() {
        let src = "impl S {\n\
            fn m(&self) { let a = self.a.lock().unwrap_or_else(|e| e.into_inner()); }\n\
            fn n(&self) { let b = self.b.lock().unwrap_or_else(|e| e.into_inner()); }\n\
        }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        assert!(r.findings.is_empty());
        assert!(r.graph.edges.is_empty());
        assert_eq!(r.graph.nodes.len(), 2);
    }

    #[test]
    fn dot_output_is_stable_and_well_formed() {
        let src = "impl S { fn m(&self) {\n\
            let a = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
            let b = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
        } }";
        let r = analyze_src("crates/serve/src/x.rs", src);
        let dot = r.graph.render_dot();
        assert!(dot.starts_with("// fb-lint --locks --dot"));
        assert!(dot.contains("digraph lock_order {"));
        assert!(dot.contains("\"serve/x.a\" -> \"serve/x.b\""));
        assert_eq!(dot, r.graph.render_dot());
    }
}
