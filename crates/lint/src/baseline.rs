//! The committed-debt baseline and its ratchet.
//!
//! Existing violations are grandfathered in `lint_baseline.json`
//! (per-file, per-rule counts). A lint run fails only on *new* debt:
//! any (file, rule) cell whose current count exceeds its baseline count,
//! or a current total above the baseline total. `--update-baseline`
//! rewrites the file from the current tree but refuses to *grow* the
//! total unless `--allow-growth` is passed — so absent a deliberate,
//! visible override, the committed number can only go down.
//!
//! The file is ordinary JSON with sorted keys, so diffs in review show
//! exactly which file/rule cell moved.
//!
//! Schema v2 (this version) differs from v1 in two enforced ways: the
//! `version` field is required and must equal 2 (a v1 file is rejected
//! with a regeneration hint, so a stale or tampered-schema baseline
//! cannot silently load), and C-family rules (C1/C2/C3) may not appear
//! in `counts` at all — concurrency hazards carry zero grandfathered
//! debt by policy ([`Rule::baselineable`]).

use crate::rules::{Finding, Rule, ALL_RULES};
use fairbridge_obs::json::{self, Value};
use std::collections::BTreeMap;

/// Grandfathered violation counts: file → rule → count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-file, per-rule grandfathered counts.
    pub counts: BTreeMap<String, BTreeMap<Rule, usize>>,
}

impl Baseline {
    /// Total grandfathered violations.
    pub fn total(&self) -> usize {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Per-rule totals, in rule order.
    pub fn rule_totals(&self) -> BTreeMap<Rule, usize> {
        let mut totals: BTreeMap<Rule, usize> = BTreeMap::new();
        for per_file in self.counts.values() {
            for (rule, n) in per_file {
                *totals.entry(*rule).or_insert(0) += n;
            }
        }
        totals
    }

    /// The grandfathered count for one (file, rule) cell.
    pub fn count(&self, file: &str, rule: Rule) -> usize {
        self.counts
            .get(file)
            .and_then(|m| m.get(&rule))
            .copied()
            .unwrap_or(0)
    }

    /// Builds a baseline from a finding list.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<Rule, usize>> = BTreeMap::new();
        for f in findings {
            *counts
                .entry(f.file.clone())
                .or_default()
                .entry(f.rule)
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Renders the canonical JSON form (sorted keys, one file per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"counts\": {");
        let mut first_file = true;
        for (file, per_rule) in &self.counts {
            if per_rule.is_empty() {
                continue;
            }
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!("\n    \"{}\": {{", json_escape(file)));
            let mut first_rule = true;
            for (rule, n) in per_rule {
                if !first_rule {
                    out.push_str(", ");
                }
                first_rule = false;
                out.push_str(&format!("\"{}\": {n}", rule.id()));
            }
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the JSON form. Tolerates a missing file (`None` input) by
    /// returning an empty baseline.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let version = value
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| "baseline: missing numeric `version`".to_owned())?;
        if version != 2 {
            return Err(format!(
                "baseline: schema version {version} (expected 2) — regenerate with \
                 `fb-lint --update-baseline`"
            ));
        }
        let declared_total = value
            .get("total")
            .and_then(Value::as_u64)
            .ok_or_else(|| "baseline: missing numeric `total`".to_owned())?;
        let Some(Value::Obj(files)) = value.get("counts") else {
            return Err("baseline: missing `counts` object".to_owned());
        };
        let mut counts: BTreeMap<String, BTreeMap<Rule, usize>> = BTreeMap::new();
        for (file, per_rule) in files {
            let Value::Obj(rules) = per_rule else {
                return Err(format!("baseline: `{file}` is not an object"));
            };
            let mut m = BTreeMap::new();
            for (rule_id, n) in rules {
                let rule = Rule::parse(rule_id)
                    .ok_or_else(|| format!("baseline: unknown rule `{rule_id}`"))?;
                if !rule.baselineable() {
                    return Err(format!(
                        "baseline: rule `{rule_id}` (in `{file}`) cannot be grandfathered — \
                         C-family debt must be zero; fix the findings instead"
                    ));
                }
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("baseline: `{file}`/`{rule_id}` is not a count"))?;
                m.insert(rule, n as usize);
            }
            counts.insert(file.clone(), m);
        }
        let baseline = Baseline { counts };
        // Internal consistency: a hand-edited total is how a ratchet gets
        // quietly loosened; refuse to load one.
        if baseline.total() as u64 != declared_total {
            return Err(format!(
                "baseline: declared total {declared_total} != sum of counts {}",
                baseline.total()
            ));
        }
        Ok(baseline)
    }
}

/// The comparison of a scan against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Findings in (file, rule) cells over their grandfathered count —
    /// every finding in the offending cell is listed, with the cell's
    /// `current > baseline` counts, since lines may have shifted.
    pub new_cells: Vec<(String, Rule, usize, usize, Vec<Finding>)>,
    /// Cells now *below* their grandfathered count (ratchet opportunity).
    pub improved_cells: Vec<(String, Rule, usize, usize)>,
}

impl Diff {
    /// Whether the scan introduces debt the baseline does not cover.
    pub fn clean(&self) -> bool {
        self.new_cells.is_empty()
    }

    /// Findings fixed relative to the baseline.
    pub fn fixed(&self) -> usize {
        self.improved_cells
            .iter()
            .map(|(_, _, cur, base)| base - cur)
            .sum()
    }
}

/// Compares current findings against the baseline.
pub fn diff(findings: &[Finding], baseline: &Baseline) -> Diff {
    let current = Baseline::from_findings(findings);
    let mut out = Diff::default();
    // Cells present now: over / under baseline.
    for (file, per_rule) in &current.counts {
        for (rule, &cur) in per_rule {
            let base = baseline.count(file, *rule);
            if cur > base {
                let cell_findings: Vec<Finding> = findings
                    .iter()
                    .filter(|f| &f.file == file && f.rule == *rule)
                    .cloned()
                    .collect();
                out.new_cells
                    .push((file.clone(), *rule, cur, base, cell_findings));
            } else if cur < base {
                out.improved_cells.push((file.clone(), *rule, cur, base));
            }
        }
    }
    // Cells that vanished entirely.
    for (file, per_rule) in &baseline.counts {
        for (rule, &base) in per_rule {
            if base > 0 && current.count(file, *rule) == 0 {
                out.improved_cells.push((file.clone(), *rule, 0, base));
            }
        }
    }
    out.new_cells.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    out.improved_cells
        .sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    out.improved_cells.dedup();
    out
}

/// Renders a full machine-readable report: findings, per-rule counts,
/// per-family counts, baseline comparison. Stable (bytewise) ordering
/// throughout.
///
/// Schema v2: a leading `"version":2`, then every v1 field in its v1
/// order (`files_scanned`, `total`, `baseline_total`, `new`, `fixed`,
/// `suppressed`, `rules`, `findings` — so v1 consumers that look fields
/// up by name keep working), with one addition: a `families` object
/// (per-family totals, keys sorted) between `rules` and `findings`.
pub fn report_json(
    files_scanned: usize,
    findings: &[Finding],
    suppressed: &[Finding],
    baseline: &Baseline,
    d: &Diff,
) -> String {
    let current = Baseline::from_findings(findings);
    let rule_totals = current.rule_totals();
    let mut out = String::new();
    out.push('{');
    out.push_str("\"version\":2,");
    out.push_str(&format!("\"files_scanned\":{files_scanned},"));
    out.push_str(&format!("\"total\":{},", findings.len()));
    out.push_str(&format!("\"baseline_total\":{},", baseline.total()));
    out.push_str(&format!(
        "\"new\":{},",
        d.new_cells
            .iter()
            .map(|(_, _, cur, base, _)| cur - base)
            .sum::<usize>()
    ));
    out.push_str(&format!("\"fixed\":{},", d.fixed()));
    out.push_str(&format!("\"suppressed\":{},", suppressed.len()));
    out.push_str("\"rules\":{");
    let mut first = true;
    for rule in ALL_RULES {
        if !first {
            out.push(',');
        }
        first = false;
        let n = rule_totals.get(rule).copied().unwrap_or(0);
        out.push_str(&format!("\"{}\":{n}", rule.id()));
    }
    out.push_str("},\"families\":{");
    let mut family_totals: BTreeMap<char, usize> = BTreeMap::new();
    for rule in ALL_RULES {
        *family_totals.entry(rule.family()).or_insert(0) +=
            rule_totals.get(rule).copied().unwrap_or(0);
    }
    let mut first = true;
    for (family, n) in &family_totals {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{family}\":{n}"));
    }
    out.push_str("},\"findings\":[");
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let mut first = true;
    for f in sorted {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.id(),
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Escapes a string for embedding in JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, rule: Rule, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn roundtrip_json() {
        let b = Baseline::from_findings(&[
            f("crates/a/src/x.rs", Rule::P1, 3),
            f("crates/a/src/x.rs", Rule::P1, 9),
            f("crates/b/src/y.rs", Rule::D1, 1),
        ]);
        let text = b.to_json();
        let back = Baseline::from_json(&text).expect("parse");
        assert_eq!(b, back);
        assert_eq!(back.total(), 3);
        assert_eq!(back.count("crates/a/src/x.rs", Rule::P1), 2);
    }

    #[test]
    fn tampered_total_is_rejected() {
        let b = Baseline::from_findings(&[f("crates/a/src/x.rs", Rule::P1, 3)]);
        let text = b.to_json().replace("\"total\": 1", "\"total\": 7");
        assert!(Baseline::from_json(&text).is_err());
    }

    #[test]
    fn diff_flags_only_growth() {
        let base = Baseline::from_findings(&[
            f("crates/a/src/x.rs", Rule::P1, 3),
            f("crates/a/src/x.rs", Rule::P1, 9),
        ]);
        // Same count, different lines: clean (shifted, not new).
        let moved = [
            f("crates/a/src/x.rs", Rule::P1, 4),
            f("crates/a/src/x.rs", Rule::P1, 10),
        ];
        assert!(diff(&moved, &base).clean());
        // One extra: fails, listing the whole cell.
        let grown = [
            f("crates/a/src/x.rs", Rule::P1, 4),
            f("crates/a/src/x.rs", Rule::P1, 10),
            f("crates/a/src/x.rs", Rule::P1, 20),
        ];
        let d = diff(&grown, &base);
        assert!(!d.clean());
        assert_eq!(d.new_cells.len(), 1);
        // One fewer: clean, improvement recorded.
        let shrunk = [f("crates/a/src/x.rs", Rule::P1, 4)];
        let d = diff(&shrunk, &base);
        assert!(d.clean());
        assert_eq!(d.fixed(), 1);
        // Cell gone entirely: counted once.
        let d = diff(&[], &base);
        assert!(d.clean());
        assert_eq!(d.fixed(), 2);
    }

    #[test]
    fn empty_baseline_makes_everything_new() {
        let d = diff(&[f("crates/a/src/x.rs", Rule::D2, 1)], &Baseline::default());
        assert!(!d.clean());
    }
}
