//! Structural pass over the token stream: `fn` items, call edges, and
//! lock-guard scopes.
//!
//! fb-lint's original rules are purely lexical — each matches a short
//! token window. The concurrency rules (C1/C2) need more: *which
//! function* a token belongs to, *which locks are held* when it
//! executes, and *who calls whom*. This module recovers exactly that
//! much structure and no more:
//!
//! * **Items** — every `fn name … { body }` at any nesting depth
//!   becomes a [`FnModel`]; nested fns are split out of their enclosing
//!   body so guard scopes never leak across an item boundary. Closures
//!   stay inline (a closure capturing a guard conservatively keeps it
//!   "held" at the closure's call sites — an over-approximation).
//! * **Guard scopes** — a `.lock()` / `.read()` / `.write()` call with
//!   an empty argument list is a lock acquisition. Its guard is bound
//!   (`let g = …` → named, lives to end of block, `drop(g)`, or
//!   shadowing) or temporary (expression position → lives to the end of
//!   the enclosing statement). Shadowing a guard binding does **not**
//!   release the old guard (Rust keeps the shadowed value alive to end
//!   of scope) — the analysis models that trap faithfully.
//! * **Call edges** — method and free calls are recorded by callee
//!   *name* (a conservative, type-free workspace call graph). Calls
//!   through std container/iterator method names are recorded but never
//!   resolved interprocedurally (see [`crate::locks::NO_RESOLVE`]);
//!   resolving `.len()` to whichever workspace type also defines `len`
//!   would fabricate edges.
//! * **Lock identity** — the receiver path of an acquisition, minus a
//!   leading `self.`, scoped by the file it appears in:
//!   `crates/serve/src/queue.rs: self.state.lock()` →
//!   `serve/queue.state`. Two fields with the same name in the same
//!   file alias (over-approximation); the same lock reached through
//!   differently-named locals does not (under-approximation). Both are
//!   documented in DESIGN §16.

use crate::lexer::{TokKind, Token};

/// One operation inside a function body, in source order. The locks
/// analysis replays these against a guard stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A lock acquisition: `path.lock()` / `.read()` / `.write()`.
    Acquire {
        /// Lock identity (`<crate>/<file>.<field path>`).
        lock: String,
        /// `Some(name)` when the guard is bound by the enclosing `let`.
        binding: Option<String>,
        /// `true` when the `let` is an `if let`/`while let` condition —
        /// the guard then lives only through the condition's body block.
        cond: bool,
        /// 1-based source line.
        line: u32,
    },
    /// A call, by callee name (method or free function).
    Call {
        /// Last path segment of the callee.
        callee: String,
        /// First segment of the receiver path (`self`, a local, …).
        receiver: Option<String>,
        /// `Some(name)` when the result is bound by the enclosing `let`
        /// (a guard-returning accessor binds its lock to this name).
        binding: Option<String>,
        /// `true` when the binding `let` is an `if let`/`while let`
        /// condition (see [`Op::Acquire::cond`]).
        cond: bool,
        /// 1-based source line.
        line: u32,
    },
    /// `cv.wait(guard)` / `wait_timeout` / `wait_while` — a condvar
    /// wait that atomically releases `guard_arg` while parked.
    CondvarWait {
        /// The guard passed in (first identifier in the argument list).
        guard_arg: Option<String>,
        /// 1-based source line.
        line: u32,
    },
    /// A potentially-indefinite blocking call (socket/file I/O, thread
    /// join, sleep, parked wait).
    Blocking {
        /// The matched method/function name.
        what: String,
        /// First segment of the receiver path, for the
        /// "blocking-on-the-guarded-resource-itself" exemption.
        receiver: Option<String>,
        /// 1-based source line.
        line: u32,
    },
    /// `drop(g)` — explicit early release of a named guard.
    DropGuard {
        /// The dropped binding.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// `{` — opens a scope level.
    OpenBlock,
    /// `}` — closes a scope level, releasing guards bound inside it.
    CloseBlock,
    /// `;` — ends a statement, releasing temporary guards born in it.
    EndStmt,
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// The function's name.
    pub name: String,
    /// Repo-relative path of the defining file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item lives in test-scoped code.
    pub is_test: bool,
    /// Whether the signature's return type names a `MutexGuard` /
    /// `RwLockReadGuard` / `RwLockWriteGuard` — the accessor pattern
    /// whose callers receive a live guard.
    pub returns_guard: bool,
    /// The body's operations, in source order.
    pub ops: Vec<Op>,
}

/// The structural model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnModel>,
    /// All comment tokens (for allow-marker resolution on C findings).
    pub comments: Vec<Token>,
}

/// Guard types whose appearance in a return type marks an accessor as
/// guard-returning.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Zero-argument methods that block indefinitely: parked waits, thread
/// joins, channel receives, stream flushes, listener accepts.
const BLOCKING_NOARG: &[&str] = &["wait", "join", "recv", "flush", "accept", "incoming"];

/// Methods (any arity) that block on I/O or time.
const BLOCKING_ARG: &[&str] = &[
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "read_until",
    "write_all",
    "recv_timeout",
    "connect",
    "sleep",
];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "in", "as", "move", "ref", "else",
    "mut", "pub", "use", "where", "impl", "struct", "enum", "trait", "type", "const", "static",
    "unsafe", "dyn", "break", "continue", "crate", "super", "fn", "await",
];

/// Parses one file into its structural model. Never fails: malformed
/// input degrades to fewer recovered items.
pub fn parse_file(rel_path: &str, src: &str) -> FileModel {
    let tokens = crate::lexer::tokenize(src);
    let flags = crate::scope::test_flags(&tokens);
    let comments: Vec<Token> = tokens.iter().filter(|t| t.is_comment()).cloned().collect();
    // Work on code tokens only; remember each one's test flag.
    let mut code: Vec<&Token> = Vec::new();
    let mut code_test: Vec<bool> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            code.push(t);
            code_test.push(flags.get(i).copied().unwrap_or(false));
        }
    }
    let scope = file_scope(rel_path);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if is_fn_keyword(&code, i) {
            if let Some((model, _)) = parse_fn(&code, &code_test, i, &scope, rel_path) {
                fns.push(model);
                // Advance past `fn name` only, so nested fn items inside
                // this body are discovered and modeled too.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    FileModel { fns, comments }
}

/// `<crate>/<file-stem>` for `crates/<crate>/src/**/<file-stem>.rs`,
/// used to scope lock identities per file.
fn file_scope(rel_path: &str) -> String {
    let crate_name = crate::rules::crate_of(rel_path);
    let stem = rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs");
    if crate_name.is_empty() {
        stem.to_owned()
    } else {
        format!("{crate_name}/{stem}")
    }
}

fn tok<'a>(code: &[&'a Token], i: usize) -> Option<&'a Token> {
    code.get(i).copied()
}

fn is_punct(code: &[&Token], i: usize, text: &str) -> bool {
    matches!(tok(code, i), Some(t) if t.kind == TokKind::Punct && t.text == text)
}

fn is_ident(code: &[&Token], i: usize, text: &str) -> bool {
    matches!(tok(code, i), Some(t) if t.kind == TokKind::Ident && t.text == text)
}

fn ident_text<'a>(code: &[&'a Token], i: usize) -> Option<&'a str> {
    match tok(code, i) {
        Some(t) if t.kind == TokKind::Ident => Some(t.text.as_str()),
        _ => None,
    }
}

/// A `fn` keyword introducing an item (not e.g. the `fn` inside an
/// `impl Fn(…)` bound, which is `Fn`, a different token).
fn is_fn_keyword(code: &[&Token], i: usize) -> bool {
    is_ident(code, i, "fn") && matches!(tok(code, i + 1), Some(t) if t.kind == TokKind::Ident)
}

/// Parses `fn name …` starting at the `fn` keyword; returns the model
/// and the code index just past the body's closing brace.
fn parse_fn(
    code: &[&Token],
    code_test: &[bool],
    fn_idx: usize,
    scope: &str,
    rel_path: &str,
) -> Option<(FnModel, usize)> {
    let name = ident_text(code, fn_idx + 1)?.to_owned();
    let line = tok(code, fn_idx)?.line;
    let is_test = code_test.get(fn_idx).copied().unwrap_or(false);
    // Scan the signature: from past the name to the body `{` or a
    // declaration-ending `;`, tracking (), [] and <> nesting. `<` / `>`
    // appear as comparison-free generics in signature position, but a
    // `->` arrow's `>` must not decrement, so `-` `>` pairs are skipped.
    let mut j = fn_idx + 2;
    let mut parens = 0i64;
    let mut angles = 0i64;
    let mut saw_arrow = false;
    let mut returns_guard = false;
    let body_open = loop {
        let t = tok(code, j)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => parens += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => parens -= 1,
            (TokKind::Punct, "<") => angles += 1,
            (TokKind::Punct, ">") => {
                // Part of `->`?
                if is_punct(code, j.wrapping_sub(1), "-") {
                    saw_arrow = true;
                } else {
                    angles -= 1;
                }
            }
            (TokKind::Punct, "{") if parens == 0 && angles <= 0 => break j,
            (TokKind::Punct, ";") if parens == 0 && angles <= 0 => return None,
            (TokKind::Ident, name) if saw_arrow && GUARD_TYPES.contains(&name) => {
                returns_guard = true;
            }
            _ => {}
        }
        j += 1;
    };
    // Find the matching close of the body.
    let mut depth = 0i64;
    let mut k = body_open;
    let body_close = loop {
        let t = tok(code, k)?;
        if t.kind == TokKind::Punct {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    break k;
                }
            }
        }
        k += 1;
    };
    let ops = extract_ops(code, body_open, body_close, scope, rel_path);
    Some((
        FnModel {
            name,
            file: rel_path.to_owned(),
            line,
            is_test,
            returns_guard,
            ops,
        },
        body_close + 1,
    ))
}

/// The in-flight `let` binding of the statement being read.
#[derive(Clone)]
struct PendingLet {
    name: String,
    /// `if let` / `while let` condition binding: guards it binds live
    /// only through the condition's body block.
    cond: bool,
}

/// Walks the body tokens in `(open, close)` and emits [`Op`]s. Nested
/// `fn` items are skipped (modeled separately), and so are `move`
/// closure bodies: they execute detached (spawned threads, stored
/// callbacks), so their acquisitions do not happen under the guards
/// lexically in scope here — a documented under-approximation. Plain
/// (borrowing) closures stay inline.
fn extract_ops(code: &[&Token], open: usize, close: usize, scope: &str, rel_path: &str) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut pending_let: Option<PendingLet> = None;
    let mut i = open;
    while i <= close {
        // Skip nested fn items wholesale.
        if i > open && is_fn_keyword(code, i) {
            if let Some((_, end)) = parse_fn(code, &[], i, scope, rel_path) {
                i = end;
                continue;
            }
        }
        // Skip `move` closure bodies (`move |args| body`).
        if is_ident(code, i, "move") && (is_punct(code, i + 1, "|") || is_punct(code, i + 2, "|")) {
            if let Some(end) = skip_closure(code, i + 1, close) {
                i = end;
                continue;
            }
        }
        let Some(t) = tok(code, i) else { break };
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                ops.push(Op::OpenBlock);
                i += 1;
            }
            (TokKind::Punct, "}") => {
                ops.push(Op::CloseBlock);
                // A binding `let … = match { … }` survives inner blocks;
                // only the `;` below clears it.
                i += 1;
            }
            (TokKind::Punct, ";") => {
                ops.push(Op::EndStmt);
                pending_let = None;
                i += 1;
            }
            (TokKind::Ident, "let") => {
                let cond = is_ident(code, i.wrapping_sub(1), "if")
                    || is_ident(code, i.wrapping_sub(1), "while");
                pending_let = let_binding_name(code, i).map(|name| PendingLet { name, cond });
                i += 1;
            }
            (TokKind::Ident, "drop") if is_punct(code, i + 1, "(") => {
                // `drop(g)` with a single-identifier argument releases g.
                if let (Some(name), true) = (ident_text(code, i + 2), is_punct(code, i + 3, ")")) {
                    ops.push(Op::DropGuard {
                        name: name.to_owned(),
                        line: t.line,
                    });
                    i += 4;
                } else {
                    i += 1;
                }
            }
            (TokKind::Punct, ".") => {
                let consumed = match_method(code, i, scope, pending_let.as_ref(), &mut ops);
                i += consumed.max(1);
            }
            (TokKind::Ident, name) => {
                // Free or path-qualified call: `name(` not preceded by
                // `.`, not a keyword, not a macro (`name!(`).
                if is_punct(code, i + 1, "(")
                    && !NON_CALL_KEYWORDS.contains(&name)
                    && !is_punct(code, i.wrapping_sub(1), ".")
                    && !is_punct(code, i + 1, "!")
                {
                    if BLOCKING_ARG.contains(&name) || BLOCKING_NOARG.contains(&name) {
                        ops.push(Op::Blocking {
                            what: name.to_owned(),
                            receiver: None,
                            line: t.line,
                        });
                    }
                    ops.push(Op::Call {
                        callee: name.to_owned(),
                        receiver: None,
                        binding: pending_let.as_ref().map(|p| p.name.clone()),
                        cond: pending_let.as_ref().is_some_and(|p| p.cond),
                        line: t.line,
                    });
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    ops
}

/// Skips a closure starting at its first `|` (code index `bar`): past
/// the argument list, then past a braced body or a bare expression
/// (which ends at a `,` / `)` / `;` / `}` at nesting depth 0). Returns
/// the index just past the body.
fn skip_closure(code: &[&Token], bar: usize, close: usize) -> Option<usize> {
    let mut j = if is_punct(code, bar, "|") {
        bar
    } else {
        bar + 1
    };
    if !is_punct(code, j, "|") {
        return None;
    }
    // Find the closing `|` of the argument list.
    j += 1;
    while j <= close && !is_punct(code, j, "|") {
        j += 1;
    }
    j += 1; // past the closing `|`
    if is_punct(code, j, "{") {
        // Braced body: skip the balanced block.
        let mut depth = 0i64;
        while j <= close {
            if is_punct(code, j, "{") {
                depth += 1;
            } else if is_punct(code, j, "}") {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            j += 1;
        }
        return Some(j);
    }
    // Expression body: ends at `,` `)` `;` `}` at depth 0.
    let mut depth = 0i64;
    while j <= close {
        let Some(t) = tok(code, j) else { break };
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth > 0 => depth -= 1,
                ")" | "]" | "}" | "," | ";" => return Some(j),
                _ => {}
            }
        }
        j += 1;
    }
    Some(j)
}

/// The binding name of a `let` statement starting at `let_idx`:
/// `let [mut] name`, `let Some(name)`, `let Ok(name)`, `let (a, …)` →
/// first useful identifier inside the pattern. `let _ = …` binds
/// nothing (and, like any unbound value, drops at end of statement).
fn let_binding_name(code: &[&Token], let_idx: usize) -> Option<String> {
    let mut j = let_idx + 1;
    if is_ident(code, j, "mut") {
        j += 1;
    }
    let first = ident_text(code, j)?;
    if first == "_" {
        return None;
    }
    // Enum-variant destructuring (`Some(g)` / `Ok(g)`): take the inner
    // identifier. The uppercase-initial heuristic distinguishes a
    // variant from a plain binding.
    if first.starts_with(|c: char| c.is_ascii_uppercase()) && is_punct(code, j + 1, "(") {
        let mut k = j + 2;
        if is_ident(code, k, "mut") {
            k += 1;
        }
        return ident_text(code, k).map(str::to_owned);
    }
    Some(first.to_owned())
}

/// Handles a `.` token: classifies the method access that follows as an
/// acquisition, a condvar wait, a blocking call, or a plain call, and
/// pushes the corresponding ops. Returns how many tokens to advance.
fn match_method(
    code: &[&Token],
    dot: usize,
    scope: &str,
    pending_let: Option<&PendingLet>,
    ops: &mut Vec<Op>,
) -> usize {
    let binding = pending_let.map(|p| p.name.clone());
    let cond = pending_let.is_some_and(|p| p.cond);
    let Some(name) = ident_text(code, dot + 1) else {
        return 1;
    };
    let Some(line) = tok(code, dot + 1).map(|t| t.line) else {
        return 1;
    };
    let has_parens = is_punct(code, dot + 2, "(");
    if !has_parens {
        return 1; // field access, not a call
    }
    let empty_args = is_punct(code, dot + 3, ")");

    // Acquisition: `path.lock()` / `.read()` / `.write()` with no args.
    if empty_args && matches!(name, "lock" | "read" | "write") {
        let path = receiver_path(code, dot);
        if let Some(path) = path {
            if path == "self" {
                // `self.lock()` — a call to a local accessor method, not
                // a std Mutex acquisition.
                ops.push(Op::Call {
                    callee: name.to_owned(),
                    receiver: Some("self".to_owned()),
                    binding,
                    cond,
                    line,
                });
            } else {
                let field = path.strip_prefix("self.").unwrap_or(&path);
                ops.push(Op::Acquire {
                    lock: format!("{scope}.{field}"),
                    binding,
                    cond,
                    line,
                });
            }
            return 4;
        }
        return 1;
    }

    // Condvar wait: `.wait(guard…)` / `.wait_timeout(guard, …)` /
    // `.wait_while(guard, …)` — non-empty argument list.
    if !empty_args && matches!(name, "wait" | "wait_timeout" | "wait_while") {
        ops.push(Op::CondvarWait {
            guard_arg: ident_text(code, dot + 3).map(str::to_owned),
            line,
        });
        return 3;
    }

    let receiver_root = receiver_path(code, dot).map(|p| {
        p.split('.')
            .next()
            .unwrap_or(p.as_str())
            .trim_end_matches("()")
            .to_owned()
    });

    // Blocking calls (the zero-arg parked/join/flush family, and the
    // any-arity I/O family).
    if (empty_args && BLOCKING_NOARG.contains(&name))
        || (!empty_args && BLOCKING_ARG.contains(&name))
    {
        ops.push(Op::Blocking {
            what: name.to_owned(),
            receiver: receiver_root.clone(),
            line,
        });
    }

    ops.push(Op::Call {
        callee: name.to_owned(),
        receiver: receiver_root,
        binding,
        cond,
        line,
    });
    2
}

/// Reconstructs the receiver path ending at the `.` token: walks
/// backward over `ident`, `ident()` and `::`/`.`-joined segments.
/// `self.state` for `self.state.lock()`; `self.entries()` for
/// `self.entries().get_mut(…)`; `slot` for `slot.lock()`.
fn receiver_path(code: &[&Token], dot: usize) -> Option<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot.checked_sub(1)?;
    loop {
        match tok(code, j) {
            Some(t) if t.kind == TokKind::Ident => {
                segs.push(t.text.clone());
            }
            Some(t) if t.kind == TokKind::Punct && t.text == ")" => {
                // Skip a balanced call-argument list backward, then take
                // the function name: `entries()` as one segment.
                let mut depth = 0i64;
                loop {
                    match tok(code, j) {
                        Some(t) if t.kind == TokKind::Punct && t.text == ")" => depth += 1,
                        Some(t) if t.kind == TokKind::Punct && t.text == "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => return None,
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
                match tok(code, j) {
                    Some(t) if t.kind == TokKind::Ident => segs.push(format!("{}()", t.text)),
                    _ => break,
                }
            }
            _ => break,
        }
        // Continue over a `.` or `::` separator.
        let Some(prev) = j.checked_sub(1) else { break };
        if is_punct(code, prev, ".") {
            let Some(next) = prev.checked_sub(1) else {
                break;
            };
            j = next;
        } else if is_punct(code, prev, ":") && is_punct(code, prev.wrapping_sub(1), ":") {
            let Some(next) = prev.checked_sub(2) else {
                break;
            };
            j = next;
        } else {
            break;
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileModel {
        parse_file("crates/serve/src/fixture.rs", src)
    }

    fn ops_of<'a>(m: &'a FileModel, name: &str) -> &'a [Op] {
        m.fns
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.ops.as_slice())
            .unwrap_or(&[])
    }

    #[test]
    fn recovers_fns_methods_and_nesting() {
        let src = "fn a() { b(); }\n\
                   impl S { fn m(&self) { self.x.lock().unwrap_or_else(|e| e.into_inner()); } }\n\
                   fn outer() { fn inner() { q.lock(); } outer_call(); }\n";
        let m = parse(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "m", "outer", "inner"]);
        // outer's ops exclude inner's acquisition but keep its own call.
        assert!(ops_of(&m, "outer")
            .iter()
            .all(|op| !matches!(op, Op::Acquire { .. })));
        assert!(ops_of(&m, "outer")
            .iter()
            .any(|op| matches!(op, Op::Call { callee, .. } if callee == "outer_call")));
    }

    #[test]
    fn acquisition_identity_strips_self_and_scopes_by_file() {
        let src = "impl S { fn m(&self) { let g = self.state.lock().unwrap_or_else(|e| e.into_inner()); } }";
        let m = parse(src);
        assert!(ops_of(&m, "m").iter().any(|op| matches!(
            op,
            Op::Acquire { lock, binding: Some(b), .. }
                if lock == "serve/fixture.state" && b == "g"
        )));
    }

    #[test]
    fn unbound_acquisition_is_a_temporary() {
        let src = "impl S { fn m(&self) { self.state.lock().unwrap_or_else(|e| e.into_inner()).x = 1; } }";
        let m = parse(src);
        assert!(ops_of(&m, "m")
            .iter()
            .any(|op| matches!(op, Op::Acquire { binding: None, .. })));
    }

    #[test]
    fn self_lock_is_an_accessor_call_not_an_acquisition() {
        let src = "impl S { fn m(&self) { let g = self.lock(); } }";
        let m = parse(src);
        let ops = ops_of(&m, "m");
        assert!(ops.iter().all(|op| !matches!(op, Op::Acquire { .. })));
        assert!(ops.iter().any(|op| matches!(
            op,
            Op::Call { callee, binding: Some(b), .. } if callee == "lock" && b == "g"
        )));
    }

    #[test]
    fn guard_returning_signature_is_detected() {
        let src = "impl S { fn entries(&self) -> MutexGuard<'_, Vec<u32>> { self.entries.lock().unwrap_or_else(|e| e.into_inner()) } }\n\
                   fn plain() -> usize { 0 }";
        let m = parse(src);
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n);
        assert!(by_name("entries").is_some_and(|f| f.returns_guard));
        assert!(by_name("plain").is_some_and(|f| !f.returns_guard));
    }

    #[test]
    fn condvar_wait_and_blocking_calls_classify() {
        let src = "impl S { fn m(&self) {\n\
                       let mut g = self.m1.lock().unwrap_or_else(|e| e.into_inner());\n\
                       g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());\n\
                       handle.join();\n\
                       stream.write_all(b\"x\");\n\
                   } }";
        let m = parse(src);
        let ops = ops_of(&m, "m");
        assert!(ops
            .iter()
            .any(|op| matches!(op, Op::CondvarWait { guard_arg: Some(g), .. } if g == "g")));
        assert!(ops
            .iter()
            .any(|op| matches!(op, Op::Blocking { what, .. } if what == "join")));
        assert!(ops.iter().any(|op| matches!(
            op,
            Op::Blocking { what, receiver: Some(r), .. } if what == "write_all" && r == "stream"
        )));
    }

    #[test]
    fn drop_and_let_patterns() {
        let src = "fn m() { let g = s.lock().unwrap_or_else(|e| e.into_inner()); drop(g); }\n\
                   fn n() { if let Some(e) = m.lock().unwrap_or_else(|e| e.into_inner()).get(0) { use_it(e); } }";
        let m = parse(src);
        assert!(ops_of(&m, "m")
            .iter()
            .any(|op| matches!(op, Op::DropGuard { name, .. } if name == "g")));
        // `if let Some(e) = …` binds e (the variant's payload).
        assert!(ops_of(&m, "n")
            .iter()
            .any(|op| matches!(op, Op::Acquire { binding: Some(b), .. } if b == "e")));
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src = "trait T { fn decl(&self); fn with_default(&self) { x.lock(); } }";
        let m = parse(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn test_scoped_fns_are_flagged() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }";
        let m = parse(src);
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n);
        assert!(by_name("lib").is_some_and(|f| !f.is_test));
        assert!(by_name("t").is_some_and(|f| f.is_test));
    }
}
