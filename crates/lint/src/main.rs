//! `fb-lint` — the workspace determinism & panic-safety linter.
//!
//! Usage:
//!
//! ```text
//! fb-lint [--root DIR] [--baseline FILE] [--json]
//!         [--locks [--dot]]
//!         [--update-baseline [--allow-growth]]
//!         [--explain RULE]
//! ```
//!
//! Exit codes: `0` clean (no violations beyond the baseline; for
//! `--locks`, an acyclic lock-order graph), `1` new violations, a
//! refused ratchet update, or a cyclic lock graph, `2` usage or I/O
//! error.
//!
//! C-family rules (C1/C2/C3) carry zero grandfathered debt: the v2
//! baseline schema refuses to record them and `--update-baseline`
//! refuses to run while any exist — `--allow-growth` is no escape.
//!
//! Environment:
//! * `FB_LINT_TELEMETRY=<path>` — write the pass's own telemetry
//!   (spans, `lint.*` counters, the `lint_completed` event) as JSONL.
//! * `FB_BENCH_JSON=<path>` — append one violation-count record to the
//!   bench sidecar, so lint debt is tracked alongside performance.

use fairbridge_lint::baseline::{diff, report_json, Baseline};
use fairbridge_lint::rules::{Rule, ALL_RULES};
use fairbridge_lint::scan::scan_tree;
use fairbridge_obs::{JsonlSink, Telemetry};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    json: bool,
    locks: bool,
    dot: bool,
    update_baseline: bool,
    allow_growth: bool,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "fb-lint: fairbridge determinism, panic-safety & concurrency static analysis\n\
     \n\
     USAGE: fb-lint [OPTIONS]\n\
     \n\
     OPTIONS:\n\
       --root DIR           workspace root (default: .)\n\
       --baseline FILE      baseline path (default: <root>/lint_baseline.json)\n\
       --json               machine-readable report on stdout (schema v2)\n\
       --locks              print the workspace lock-order graph; exit 1 on cycles\n\
       --dot                with --locks: Graphviz DOT instead of text\n\
       --update-baseline    rewrite the baseline from the current tree\n\
       --allow-growth       permit --update-baseline to raise the total\n\
                            (D/P/U families only — C debt is never recordable)\n\
       --explain RULE       print one rule's rationale (D1 D2 D3 D4 P1 U1 C1 C2 C3)\n\
       --help               this text\n"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline_path: None,
        json: false,
        locks: false,
        dot: false,
        update_baseline: false,
        allow_growth: false,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a value".to_owned())?);
            }
            "--baseline" => {
                opts.baseline_path = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--baseline needs a value".to_owned())?,
                ));
            }
            "--json" => opts.json = true,
            "--locks" => opts.locks = true,
            "--dot" => opts.dot = true,
            "--update-baseline" => opts.update_baseline = true,
            "--allow-growth" => opts.allow_growth = true,
            "--explain" => {
                opts.explain = Some(
                    it.next()
                        .ok_or_else(|| "--explain needs a rule id".to_owned())?
                        .clone(),
                );
            }
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn telemetry_from_env() -> Telemetry {
    match std::env::var("FB_LINT_TELEMETRY") {
        Ok(path) if !path.is_empty() => match JsonlSink::create(&path) {
            Ok(sink) => Telemetry::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("fb-lint: FB_LINT_TELEMETRY: cannot open {path}: {e}");
                Telemetry::off()
            }
        },
        _ => Telemetry::off(),
    }
}

/// Appends the violation counts to the `FB_BENCH_JSON` sidecar so debt
/// trajectory rides the same file as performance numbers.
fn write_bench_sidecar(files_scanned: usize, per_rule: &[(Rule, usize)], total: usize) {
    let Ok(path) = std::env::var("FB_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut rules = String::new();
    for (i, (rule, n)) in per_rule.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        rules.push_str(&format!("\"{}\":{n}", rule.id()));
    }
    let line = format!(
        "{{\"label\":\"fb-lint\",\"mode\":\"lint\",\"files_scanned\":{files_scanned},\"violations\":{{{rules}}},\"total\":{total}}}\n"
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("fb-lint: FB_BENCH_JSON: {path}: {e}");
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if let Some(rule_id) = &opts.explain {
        let rule = Rule::parse(rule_id)
            .ok_or_else(|| format!("unknown rule `{rule_id}` (try D1 D2 D3 D4 P1 U1 C1 C2 C3)"))?;
        println!("{}", rule.explain());
        return Ok(true);
    }

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("lint_baseline.json"));

    let telemetry = telemetry_from_env();
    let report = scan_tree(&opts.root, &telemetry)?;
    telemetry.flush();

    if opts.locks {
        if opts.dot {
            print!("{}", report.graph.render_dot());
        } else {
            print!("{}", report.graph.render_text());
        }
        return Ok(report.graph.is_acyclic());
    }

    let current = Baseline::from_findings(&report.findings);
    let per_rule: Vec<(Rule, usize)> = ALL_RULES
        .iter()
        .map(|r| (*r, report.findings.iter().filter(|f| f.rule == *r).count()))
        .collect();
    write_bench_sidecar(report.files_scanned, &per_rule, report.findings.len());

    if opts.update_baseline {
        // C-family findings can never be grandfathered: refuse to write
        // any baseline while one exists, --allow-growth notwithstanding.
        let c_findings: Vec<_> = report
            .findings
            .iter()
            .filter(|f| !f.rule.baselineable())
            .collect();
        if !c_findings.is_empty() {
            let mut msg = format!(
                "cannot record a baseline while {} C-family finding(s) exist — concurrency \
                 hazards carry zero grandfathered debt; fix them first:",
                c_findings.len()
            );
            for f in c_findings.iter().take(10) {
                msg.push_str(&format!(
                    "\n  {}:{}: [{}] {}",
                    f.file,
                    f.line,
                    f.rule.id(),
                    f.message
                ));
            }
            return Err(msg);
        }
        // An unreadable or prior-schema baseline cannot anchor the
        // ratchet, but must not block regeneration either (the v1→v2
        // migration path runs through exactly this branch).
        let old_total = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|text| match Baseline::from_json(&text) {
                Ok(b) => Some(b.total()),
                Err(e) => {
                    eprintln!(
                        "fb-lint: note: ignoring existing baseline for the ratchet check ({e})"
                    );
                    None
                }
            });
        if let Some(old) = old_total {
            if current.total() > old && !opts.allow_growth {
                return Err(format!(
                    "ratchet: refusing to grow the baseline ({} -> {} violations); fix the new \
                     findings or pass --allow-growth to record the regression deliberately",
                    old,
                    current.total()
                ));
            }
        }
        std::fs::write(&baseline_path, current.to_json())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        println!(
            "fb-lint: baseline updated: {} violations across {} files ({})",
            current.total(),
            current.counts.len(),
            baseline_path.display()
        );
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::from_json(&text)?,
        Err(_) => {
            eprintln!(
                "fb-lint: note: no baseline at {} — treating all findings as new \
                 (run --update-baseline to grandfather current debt)",
                baseline_path.display()
            );
            Baseline::default()
        }
    };
    let d = diff(&report.findings, &baseline);

    if opts.json {
        println!(
            "{}",
            report_json(
                report.files_scanned,
                &report.findings,
                &report.suppressed,
                &baseline,
                &d
            )
        );
    } else {
        println!(
            "fb-lint: scanned {} files: {} violations ({} baseline, {} new, {} fixed, {} suppressed)",
            report.files_scanned,
            report.findings.len(),
            baseline.total(),
            d.new_cells
                .iter()
                .map(|(_, _, cur, base, _)| cur - base)
                .sum::<usize>(),
            d.fixed(),
            report.suppressed.len()
        );
        for (rule, n) in &per_rule {
            let base = baseline.rule_totals().get(rule).copied().unwrap_or(0);
            println!(
                "  {}  {:>4} (baseline {:>4})  {}",
                rule.id(),
                n,
                base,
                rule.title()
            );
        }
        if !d.new_cells.is_empty() {
            println!("\nnew violations (cells above their grandfathered count):");
            for (file, rule, cur, base, findings) in &d.new_cells {
                println!(
                    "  {file} [{}]: {cur} found, {base} grandfathered:",
                    rule.id()
                );
                for f in findings {
                    println!("    {}:{}: {}", f.file, f.line, f.message);
                }
            }
            println!(
                "\nfix the new findings (see `fb-lint --explain <RULE>`), or suppress a \
                 deliberate exception with `// fb-lint: allow(<RULE>): reason`"
            );
        }
        if d.clean() && d.fixed() > 0 {
            println!(
                "\n{} grandfathered violations fixed — run `fb-lint --update-baseline` to \
                 ratchet the baseline down",
                d.fixed()
            );
        }
    }
    Ok(d.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) if e == "help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fb-lint: error: {e}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
