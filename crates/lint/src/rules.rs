//! The rule set: repo-specific determinism and panic-safety invariants.
//!
//! Each rule is a lexical check over the token stream of one file, scoped
//! by crate (parsed from the `crates/<name>/src/…` path) and by test
//! flags from [`crate::scope`]. The rules encode invariants the PR 1–4
//! equivalence tests only *sample*; here they are enforced everywhere:
//!
//! * **D1** — no `HashMap`/`HashSet` in determinism-sensitive crates.
//!   Unordered iteration is the classic source of run-to-run divergence;
//!   audits must be bitwise-reproducible evidence.
//! * **D2** — no `std::thread::spawn`/`scope` outside `tabular::par`.
//!   All fan-out goes through `ordered_parallel_map`, whose seed-order
//!   merge is what makes parallel audits deterministic.
//! * **D3** — no `Instant::now`/`SystemTime` outside `fairbridge-obs`
//!   and the bench harness. Wall-clock reads in audit paths leak
//!   nondeterminism into results and make replays lie.
//! * **D4** — no raw `.sum::<f64>()`/`.fold(0.0, …)` float reductions in
//!   kernel-client crates; route through `stats::kernel::{sum,dot,axpy}`
//!   so every path shares one fixed reduction order.
//! * **P1** — no `.unwrap()`/`.expect()`/`panic!`/`unreachable!`/
//!   slice-indexing-by-literal in non-test library code. A production
//!   audit service must degrade to typed errors, not crash mid-request.
//! * **U1** — every `unsafe` block carries a `// SAFETY:` comment.
//!
//! A finding on line *L* is suppressed by a comment on *L* or *L−1*
//! containing `fb-lint: allow(RULE): reason` — the documented escape
//! hatch (e.g. a sort-wrapped map iteration for D1).

use crate::lexer::{TokKind, Token};

/// Crates whose outputs are audit evidence: any unordered iteration here
/// can change reported numbers between runs.
pub const D1_CRATES: &[&str] = &["metrics", "engine", "audit", "stats", "tabular", "mitigate"];

/// Crates that consume `stats::kernel` reductions (D4 scope).
pub const D4_CRATES: &[&str] = &["metrics", "engine", "audit", "mitigate", "learn"];

/// Crates exempt from D3 (they own the clocks).
pub const D3_EXEMPT_CRATES: &[&str] = &["obs", "bench"];

/// Crates exempt from P1 (the experiment harness: a failed check panics
/// by design, and exit-on-panic is its reporting mechanism).
pub const P1_EXEMPT_CRATES: &[&str] = &["bench"];

/// The one file allowed to spawn threads (D2).
pub const D2_EXEMPT_FILE: &str = "crates/tabular/src/par.rs";

/// Rule identifiers, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered-container use in determinism-sensitive crates.
    D1,
    /// Thread spawn/scope outside `tabular::par`.
    D2,
    /// Wall-clock reads outside the telemetry/bench layers.
    D3,
    /// Raw float accumulation where the fixed-order kernel exists.
    D4,
    /// Panic sites in non-test library code.
    P1,
    /// `unsafe` without a `// SAFETY:` comment.
    U1,
}

/// All rules, in report order.
pub const ALL_RULES: &[Rule] = &[Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::P1, Rule::U1];

impl Rule {
    /// Stable identifier (used in reports, baselines and allow-markers).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::P1 => "P1",
            Rule::U1 => "U1",
        }
    }

    /// Parses a rule identifier (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "P1" => Some(Rule::P1),
            "U1" => Some(Rule::U1),
            _ => None,
        }
    }

    /// One-line summary.
    pub fn title(self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet in determinism-sensitive crates",
            Rule::D2 => "no thread::spawn/scope outside tabular::par",
            Rule::D3 => "no Instant::now/SystemTime outside obs and bench",
            Rule::D4 => "no raw f64 sum/fold where stats::kernel exists",
            Rule::P1 => "no panic sites in non-test library code",
            Rule::U1 => "every unsafe block needs a // SAFETY: comment",
        }
    }

    /// Full `--explain` text: what, why (the evidentiary rationale), how
    /// to fix, and how to suppress.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::D1 => {
                "D1: no HashMap/HashSet in determinism-sensitive crates\n\
                 \n\
                 Scope: crates/{metrics,engine,audit,stats,tabular,mitigate}/src, non-test code.\n\
                 \n\
                 Why: these crates produce audit evidence. Iterating a std HashMap/HashSet\n\
                 visits entries in a per-process random order (SipHash seeding), so any value\n\
                 that flows out of such iteration — group orderings, merge orders, float\n\
                 accumulation orders — can differ between two runs on identical input. A\n\
                 fairness audit that is not bitwise-reproducible is not evidence (paper §IV.E:\n\
                 robustness to manipulation; §IV.F: sampling soundness). The rule is\n\
                 conservative: it flags the *types*, not just iteration, because holding an\n\
                 unordered map invites iterating it later.\n\
                 \n\
                 Fix: use BTreeMap/BTreeSet (ordered), a sorted Vec, or interned u32 keys\n\
                 with dense indexing (see tabular::groups). If an unordered map is genuinely\n\
                 required and every iteration is sort-wrapped, document it:\n\
                 \n\
                     // fb-lint: allow(D1): iteration is sort-wrapped below; keys are …\n"
            }
            Rule::D2 => {
                "D2: no thread::spawn/scope outside tabular::par\n\
                 \n\
                 Scope: all crates/*/src, non-test code, except crates/tabular/src/par.rs.\n\
                 \n\
                 Why: fairbridge's parallel results are bitwise-identical to sequential ones\n\
                 because every fan-out goes through ordered_parallel_map, which merges worker\n\
                 results in seed order regardless of completion order. Ad-hoc std::thread\n\
                 usage reintroduces completion-order dependence (and uninstrumented threads\n\
                 the telemetry layer cannot attribute).\n\
                 \n\
                 Fix: express the computation as ordered_parallel_map(items, workers, f),\n\
                 or extend tabular::par if the shape genuinely does not fit.\n"
            }
            Rule::D3 => {
                "D3: no Instant::now/SystemTime outside obs and bench\n\
                 \n\
                 Scope: all crates/*/src, non-test code, except crates/obs and crates/bench.\n\
                 \n\
                 Why: audit outputs must be a pure function of (dataset, configuration,\n\
                 seed). A wall-clock read in an audit path either leaks into results\n\
                 (nondeterminism) or silently couples behaviour to machine load. Timing\n\
                 belongs to the telemetry layer: spans measure, events carry elapsed_ns,\n\
                 and Telemetry::now_ns() is the sanctioned monotonic read (one flag check\n\
                 when disabled).\n\
                 \n\
                 Fix: take time through fairbridge_obs::Telemetry (span() or now_ns()),\n\
                 or move the measurement into the bench harness.\n"
            }
            Rule::D4 => {
                "D4: no raw f64 sum/fold where stats::kernel exists\n\
                 \n\
                 Scope: crates/{metrics,engine,audit,mitigate,learn}/src, non-test code.\n\
                 Patterns: .sum::<f64>() and .fold(<float literal>, …).\n\
                 \n\
                 Why: float addition is not associative; every distinct accumulation order\n\
                 is a distinct rounding. stats::kernel::{sum,dot,axpy} fix one blocked\n\
                 8-lane order that the kernels, the parallel bootstrap and the trainers all\n\
                 share — a raw .sum() beside them silently computes a *different* number\n\
                 for the same data, which is exactly the cross-path drift the PR 4\n\
                 equivalence suites exist to prevent.\n\
                 \n\
                 Fix: use fairbridge_stats::kernel::sum (or dot/axpy) for hot-path or\n\
                 cross-path reductions. Existing sites are grandfathered in the baseline;\n\
                 migrate them when a bitwise change is acceptable and covered by tests.\n"
            }
            Rule::P1 => {
                "P1: no panic sites in non-test library code\n\
                 \n\
                 Scope: all crates/*/src except crates/bench, non-test code.\n\
                 Patterns: .unwrap(), .expect(…), panic!, unreachable!, and slice\n\
                 indexing by integer literal (x[0]). Indexing is matched lexically and\n\
                 conservatively: fixed-size array receivers (where x[0] is infallible)\n\
                 are flagged too, because the linter does no type inference. Such sites\n\
                 stay grandfathered or carry an allow-marker.\n\
                 \n\
                 Why: a production audit service answering a regulator cannot abort\n\
                 mid-request. Every panic site is a latent 500 and, worse, a truncated\n\
                 evidential trail: the spans and events up to the crash never flush.\n\
                 Library code returns typed errors (EngineError, tabular::Error) and lets\n\
                 the caller decide.\n\
                 \n\
                 Fix: return Result with a typed error; use .get(i) over x[i]; for locks,\n\
                 unwrap_or_else(|e| e.into_inner()) on poisoned mutexes. Where a panic is\n\
                 provably unreachable, document it:\n\
                 \n\
                     // fb-lint: allow(P1): keys are sorted and unique by construction\n"
            }
            Rule::U1 => {
                "U1: every unsafe block needs a // SAFETY: comment\n\
                 \n\
                 Scope: all crates/*/src, non-test code.\n\
                 \n\
                 Why: unsafe code is where the compiler stops checking and the auditor\n\
                 starts. A SAFETY comment stating the invariant being relied on is the\n\
                 minimum evidential standard — and its absence is a review smell. The\n\
                 workspace currently forbids unsafe entirely ([workspace.lints]\n\
                 unsafe_code = \"forbid\"); this rule keeps any future, deliberately\n\
                 carved-out exception honest.\n\
                 \n\
                 Fix: precede the unsafe block with // SAFETY: <invariant>, on the same\n\
                 or previous line.\n"
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was matched, for the report.
    pub message: String,
}

/// The outcome of linting one file: findings, plus the ones an
/// `fb-lint: allow` marker suppressed (reported for transparency).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileReport {
    /// Violations that stand.
    pub findings: Vec<Finding>,
    /// Violations covered by an allow-marker.
    pub suppressed: Vec<Finding>,
}

/// Lints one file's source. `rel_path` must be the repo-relative path
/// (e.g. `crates/engine/src/partition.rs`); the crate name is parsed
/// from it.
pub fn check_source(rel_path: &str, src: &str) -> FileReport {
    let tokens = crate::lexer::tokenize(src);
    let flags = crate::scope::test_flags(&tokens);
    let crate_name = crate_of(rel_path);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !matches!(tokens.get(i), Some(t) if t.is_comment()))
        .collect();
    let mut raw: Vec<Finding> = Vec::new();

    let in_test = |ci: usize| -> bool {
        code.get(ci)
            .and_then(|&ti| flags.get(ti))
            .copied()
            .unwrap_or(false)
    };
    let tok = |ci: usize| -> Option<&Token> { code.get(ci).and_then(|&ti| tokens.get(ti)) };
    let line_of = |ci: usize| -> u32 { tok(ci).map(|t| t.line).unwrap_or(0) };
    let is = |ci: usize, kind: TokKind, text: &str| -> bool {
        matches!(tok(ci), Some(t) if t.kind == kind && t.text == text)
    };
    let is_kind =
        |ci: usize, kind: TokKind| -> bool { matches!(tok(ci), Some(t) if t.kind == kind) };

    for ci in 0..code.len() {
        if in_test(ci) {
            continue;
        }

        // --- D1: unordered containers in determinism-sensitive crates ---
        if D1_CRATES.contains(&crate_name)
            && (is(ci, TokKind::Ident, "HashMap") || is(ci, TokKind::Ident, "HashSet"))
        {
            if let Some(t) = tok(ci) {
                raw.push(Finding {
                    rule: Rule::D1,
                    file: rel_path.to_owned(),
                    line: t.line,
                    message: format!("`{}` in determinism-sensitive crate `{crate_name}`", t.text),
                });
            }
        }

        // --- D2: thread spawn/scope outside tabular::par ---
        if rel_path != D2_EXEMPT_FILE
            && is(ci, TokKind::Ident, "thread")
            && is(ci + 1, TokKind::Punct, ":")
            && is(ci + 2, TokKind::Punct, ":")
            && (is(ci + 3, TokKind::Ident, "spawn") || is(ci + 3, TokKind::Ident, "scope"))
        {
            let what = tok(ci + 3).map(|t| t.text.clone()).unwrap_or_default();
            raw.push(Finding {
                rule: Rule::D2,
                file: rel_path.to_owned(),
                line: line_of(ci),
                message: format!("`thread::{what}` outside tabular::par"),
            });
        }

        // --- D3: wall-clock reads outside obs/bench ---
        if !D3_EXEMPT_CRATES.contains(&crate_name) {
            if is(ci, TokKind::Ident, "Instant")
                && is(ci + 1, TokKind::Punct, ":")
                && is(ci + 2, TokKind::Punct, ":")
                && is(ci + 3, TokKind::Ident, "now")
            {
                raw.push(Finding {
                    rule: Rule::D3,
                    file: rel_path.to_owned(),
                    line: line_of(ci),
                    message: "`Instant::now` outside the telemetry/bench layers".to_owned(),
                });
            }
            if is(ci, TokKind::Ident, "SystemTime") {
                raw.push(Finding {
                    rule: Rule::D3,
                    file: rel_path.to_owned(),
                    line: line_of(ci),
                    message: "`SystemTime` outside the telemetry/bench layers".to_owned(),
                });
            }
        }

        // --- D4: raw float reductions in kernel-client crates ---
        if D4_CRATES.contains(&crate_name) && is(ci, TokKind::Punct, ".") {
            if is(ci + 1, TokKind::Ident, "sum")
                && is(ci + 2, TokKind::Punct, ":")
                && is(ci + 3, TokKind::Punct, ":")
                && is(ci + 4, TokKind::Punct, "<")
                && is(ci + 5, TokKind::Ident, "f64")
                && is(ci + 6, TokKind::Punct, ">")
            {
                raw.push(Finding {
                    rule: Rule::D4,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "raw `.sum::<f64>()` — use stats::kernel::sum".to_owned(),
                });
            }
            if is(ci + 1, TokKind::Ident, "fold")
                && is(ci + 2, TokKind::Punct, "(")
                && is_kind(ci + 3, TokKind::Float)
            {
                raw.push(Finding {
                    rule: Rule::D4,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "raw float `.fold(…)` — use stats::kernel::{sum,dot,axpy}".to_owned(),
                });
            }
        }

        // --- P1: panic sites in library code ---
        if !P1_EXEMPT_CRATES.contains(&crate_name) {
            if is(ci, TokKind::Punct, ".")
                && is(ci + 1, TokKind::Ident, "unwrap")
                && is(ci + 2, TokKind::Punct, "(")
                && is(ci + 3, TokKind::Punct, ")")
            {
                raw.push(Finding {
                    rule: Rule::P1,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "`.unwrap()` in library code".to_owned(),
                });
            }
            if is(ci, TokKind::Punct, ".")
                && is(ci + 1, TokKind::Ident, "expect")
                && is(ci + 2, TokKind::Punct, "(")
            {
                raw.push(Finding {
                    rule: Rule::P1,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "`.expect(…)` in library code".to_owned(),
                });
            }
            for mac in ["panic", "unreachable"] {
                if is(ci, TokKind::Ident, mac) && is(ci + 1, TokKind::Punct, "!") {
                    raw.push(Finding {
                        rule: Rule::P1,
                        file: rel_path.to_owned(),
                        line: line_of(ci),
                        message: format!("`{mac}!` in library code"),
                    });
                }
            }
            // Slice indexing by integer literal: ident/)/] followed by [LIT].
            if is(ci, TokKind::Punct, "[")
                && is_kind(ci + 1, TokKind::Int)
                && is(ci + 2, TokKind::Punct, "]")
                && ci > 0
                && matches!(tok(ci - 1), Some(p)
                    if p.kind == TokKind::Ident
                        || (p.kind == TokKind::Punct && (p.text == ")" || p.text == "]")))
            {
                let lit = tok(ci + 1).map(|t| t.text.clone()).unwrap_or_default();
                raw.push(Finding {
                    rule: Rule::P1,
                    file: rel_path.to_owned(),
                    line: line_of(ci),
                    message: format!("slice indexing by literal `[{lit}]` in library code"),
                });
            }
        }

        // --- U1: unsafe without SAFETY comment ---
        if is(ci, TokKind::Ident, "unsafe") {
            let line = line_of(ci);
            let documented = tokens.iter().any(|t| {
                t.is_comment()
                    && t.text.contains("SAFETY:")
                    && t.line <= line
                    && t.end_line() + 1 >= line
            });
            if !documented {
                raw.push(Finding {
                    rule: Rule::U1,
                    file: rel_path.to_owned(),
                    line,
                    message: "`unsafe` without a `// SAFETY:` comment".to_owned(),
                });
            }
        }
    }

    // Partition into findings vs. allow-marker suppressions.
    let mut report = FileReport::default();
    for finding in raw {
        if allowed(&tokens, finding.rule, finding.line) {
            report.suppressed.push(finding);
        } else {
            report.findings.push(finding);
        }
    }
    report.findings.sort_by_key(|f| (f.line, f.rule));
    report.suppressed.sort_by_key(|f| (f.line, f.rule));
    report
}

/// The crate name inside `crates/<name>/…`, or `""`.
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Whether a comment on `line` or the line above carries
/// `fb-lint: allow(<rule>…)` for this rule.
fn allowed(tokens: &[Token], rule: Rule, line: u32) -> bool {
    tokens.iter().any(|t| {
        t.is_comment()
            && t.line <= line
            && t.end_line() + 1 >= line
            && comment_allows(&t.text, rule)
    })
}

/// Parses `fb-lint: allow(D1, P1): reason` out of a comment.
fn comment_allows(comment: &str, rule: Rule) -> bool {
    let Some(idx) = comment.find("fb-lint: allow(") else {
        return false;
    };
    let after = &comment[idx + "fb-lint: allow(".len()..];
    let Some(close) = after.find(')') else {
        return false;
    };
    after[..close]
        .split(',')
        .any(|part| Rule::parse(part) == Some(rule))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_parsing() {
        assert_eq!(crate_of("crates/engine/src/partition.rs"), "engine");
        assert_eq!(crate_of("crates/lint/src/main.rs"), "lint");
        assert_eq!(crate_of("tests/integration_engine.rs"), "");
    }

    #[test]
    fn allow_marker_parses_rule_lists() {
        assert!(comment_allows(
            "// fb-lint: allow(D1): sorted below",
            Rule::D1
        ));
        assert!(comment_allows("// fb-lint: allow(D1, P1): both", Rule::P1));
        assert!(!comment_allows("// fb-lint: allow(D1): sorted", Rule::P1));
        assert!(!comment_allows("// plain comment", Rule::D1));
    }

    #[test]
    fn d1_fires_only_in_sensitive_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let engine = check_source("crates/engine/src/x.rs", src);
        assert_eq!(engine.findings.len(), 3);
        assert!(engine.findings.iter().all(|f| f.rule == Rule::D1));
        let core = check_source("crates/core/src/x.rs", src);
        assert!(core.findings.is_empty());
    }

    #[test]
    fn p1_patterns_and_test_scoping() {
        let src = "fn f(x: Option<u32>, v: &[u32]) -> u32 { x.unwrap() + v[0] }\n\
                   #[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }\n";
        let rep = check_source("crates/core/src/x.rs", src);
        assert_eq!(rep.findings.len(), 2);
        assert!(rep.findings.iter().all(|f| f.rule == Rule::P1));
        assert_eq!(rep.findings.first().map(|f| f.line), Some(1));
    }

    #[test]
    fn allow_marker_suppresses_and_is_counted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // fb-lint: allow(P1): provably Some by construction\n\
                   x.unwrap()\n}\n";
        let rep = check_source("crates/core/src/x.rs", src);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.suppressed.len(), 1);
    }

    #[test]
    fn u1_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let good = "fn f() {\n// SAFETY: caller guarantees the branch is dead\nunsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(check_source("crates/core/src/x.rs", bad).findings.len(), 1);
        assert!(check_source("crates/core/src/x.rs", good)
            .findings
            .is_empty());
    }
}
