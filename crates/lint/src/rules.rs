//! The rule set: repo-specific determinism and panic-safety invariants.
//!
//! Each rule is a lexical check over the token stream of one file, scoped
//! by crate (parsed from the `crates/<name>/src/…` path) and by test
//! flags from [`crate::scope`]. The rules encode invariants the PR 1–4
//! equivalence tests only *sample*; here they are enforced everywhere:
//!
//! * **D1** — no `HashMap`/`HashSet` in determinism-sensitive crates.
//!   Unordered iteration is the classic source of run-to-run divergence;
//!   audits must be bitwise-reproducible evidence.
//! * **D2** — no `std::thread::spawn`/`scope` outside `tabular::par`.
//!   All fan-out goes through `ordered_parallel_map`, whose seed-order
//!   merge is what makes parallel audits deterministic.
//! * **D3** — no `Instant::now`/`SystemTime` outside `fairbridge-obs`
//!   and the bench harness. Wall-clock reads in audit paths leak
//!   nondeterminism into results and make replays lie.
//! * **D4** — no raw `.sum::<f64>()`/`.fold(0.0, …)` float reductions in
//!   kernel-client crates; route through `stats::kernel::{sum,dot,axpy}`
//!   so every path shares one fixed reduction order.
//! * **P1** — no `.unwrap()`/`.expect()`/`panic!`/`unreachable!`/
//!   slice-indexing-by-literal in non-test library code. A production
//!   audit service must degrade to typed errors, not crash mid-request.
//! * **U1** — every `unsafe` block carries a `// SAFETY:` comment.
//! * **C1/C2** — lock-order cycles and guards held across blocking
//!   calls. These are *structural*, not lexical: the parser in
//!   [`crate::parse`] and the interprocedural analysis in
//!   [`crate::locks`] produce them; this module only hosts their
//!   metadata (`id`/`title`/`explain`). The C family admits no
//!   grandfathered debt — see [`Rule::baselineable`].
//! * **C3** — concurrency hygiene, lexical like the rest: lock results
//!   go through the poison-absorbing
//!   `unwrap_or_else(|e| e.into_inner())` (never bare `.unwrap()` /
//!   `.expect`), and every non-SeqCst atomic `Ordering::…` use carries
//!   an `// ORDER:` justification comment mirroring U1's `// SAFETY:`.
//!
//! A finding on line *L* is suppressed by a comment on *L* or *L−1*
//! containing `fb-lint: allow(RULE): reason` — the documented escape
//! hatch (e.g. a sort-wrapped map iteration for D1).

use crate::lexer::{TokKind, Token};

/// Crates whose outputs are audit evidence: any unordered iteration here
/// can change reported numbers between runs.
pub const D1_CRATES: &[&str] = &["metrics", "engine", "audit", "stats", "tabular", "mitigate"];

/// Crates that consume `stats::kernel` reductions (D4 scope).
pub const D4_CRATES: &[&str] = &["metrics", "engine", "audit", "mitigate", "learn"];

/// Crates exempt from D3 (they own the clocks).
pub const D3_EXEMPT_CRATES: &[&str] = &["obs", "bench"];

/// Crates exempt from P1 (the experiment harness: a failed check panics
/// by design, and exit-on-panic is its reporting mechanism).
pub const P1_EXEMPT_CRATES: &[&str] = &["bench"];

/// The one file allowed to spawn threads (D2).
pub const D2_EXEMPT_FILE: &str = "crates/tabular/src/par.rs";

/// Rule identifiers, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered-container use in determinism-sensitive crates.
    D1,
    /// Thread spawn/scope outside `tabular::par`.
    D2,
    /// Wall-clock reads outside the telemetry/bench layers.
    D3,
    /// Raw float accumulation where the fixed-order kernel exists.
    D4,
    /// Panic sites in non-test library code.
    P1,
    /// `unsafe` without a `// SAFETY:` comment.
    U1,
    /// Lock-order hazards: cycles in the lock-order graph, re-acquiring
    /// a held lock, `Condvar::wait` with a second guard held.
    C1,
    /// A guard held across a potentially-indefinite blocking call.
    C2,
    /// Concurrency hygiene: bare `.unwrap()`/`.expect()` on lock
    /// results; undocumented non-SeqCst atomic orderings.
    C3,
}

/// All rules, in report order.
pub const ALL_RULES: &[Rule] = &[
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::P1,
    Rule::U1,
    Rule::C1,
    Rule::C2,
    Rule::C3,
];

impl Rule {
    /// Stable identifier (used in reports, baselines and allow-markers).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::P1 => "P1",
            Rule::U1 => "U1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::C3 => "C3",
        }
    }

    /// Rule family letter (`D`, `P`, `U`, `C`) — the unit the v2 report
    /// totals by, and the unit the C-family zero-debt policy applies to.
    pub fn family(self) -> char {
        match self {
            Rule::D1 | Rule::D2 | Rule::D3 | Rule::D4 => 'D',
            Rule::P1 => 'P',
            Rule::U1 => 'U',
            Rule::C1 | Rule::C2 | Rule::C3 => 'C',
        }
    }

    /// Whether this rule admits grandfathered (baselined) debt. The
    /// concurrency family does not: a potential deadlock is not debt to
    /// ratchet down, it is a hazard to fix before merging.
    pub fn baselineable(self) -> bool {
        self.family() != 'C'
    }

    /// Parses a rule identifier (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "P1" => Some(Rule::P1),
            "U1" => Some(Rule::U1),
            "C1" => Some(Rule::C1),
            "C2" => Some(Rule::C2),
            "C3" => Some(Rule::C3),
            _ => None,
        }
    }

    /// One-line summary.
    pub fn title(self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet in determinism-sensitive crates",
            Rule::D2 => "no thread::spawn/scope outside tabular::par",
            Rule::D3 => "no Instant::now/SystemTime outside obs and bench",
            Rule::D4 => "no raw f64 sum/fold where stats::kernel exists",
            Rule::P1 => "no panic sites in non-test library code",
            Rule::U1 => "every unsafe block needs a // SAFETY: comment",
            Rule::C1 => "no lock-order cycles, re-acquisition, or waits with a second guard",
            Rule::C2 => "no guard held across a blocking call",
            Rule::C3 => "poison-absorbing lock access; // ORDER: on atomic orderings",
        }
    }

    /// Full `--explain` text: what, why (the evidentiary rationale), how
    /// to fix, and how to suppress.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::D1 => {
                "D1: no HashMap/HashSet in determinism-sensitive crates\n\
                 \n\
                 Scope: crates/{metrics,engine,audit,stats,tabular,mitigate}/src, non-test code.\n\
                 \n\
                 Why: these crates produce audit evidence. Iterating a std HashMap/HashSet\n\
                 visits entries in a per-process random order (SipHash seeding), so any value\n\
                 that flows out of such iteration — group orderings, merge orders, float\n\
                 accumulation orders — can differ between two runs on identical input. A\n\
                 fairness audit that is not bitwise-reproducible is not evidence (paper §IV.E:\n\
                 robustness to manipulation; §IV.F: sampling soundness). The rule is\n\
                 conservative: it flags the *types*, not just iteration, because holding an\n\
                 unordered map invites iterating it later.\n\
                 \n\
                 Fix: use BTreeMap/BTreeSet (ordered), a sorted Vec, or interned u32 keys\n\
                 with dense indexing (see tabular::groups). If an unordered map is genuinely\n\
                 required and every iteration is sort-wrapped, document it:\n\
                 \n\
                     // fb-lint: allow(D1): iteration is sort-wrapped below; keys are …\n"
            }
            Rule::D2 => {
                "D2: no thread::spawn/scope outside tabular::par\n\
                 \n\
                 Scope: all crates/*/src, non-test code, except crates/tabular/src/par.rs.\n\
                 \n\
                 Why: fairbridge's parallel results are bitwise-identical to sequential ones\n\
                 because every fan-out goes through ordered_parallel_map, which merges worker\n\
                 results in seed order regardless of completion order. Ad-hoc std::thread\n\
                 usage reintroduces completion-order dependence (and uninstrumented threads\n\
                 the telemetry layer cannot attribute).\n\
                 \n\
                 Fix: express the computation as ordered_parallel_map(items, workers, f),\n\
                 or extend tabular::par if the shape genuinely does not fit.\n"
            }
            Rule::D3 => {
                "D3: no Instant::now/SystemTime outside obs and bench\n\
                 \n\
                 Scope: all crates/*/src, non-test code, except crates/obs and crates/bench.\n\
                 \n\
                 Why: audit outputs must be a pure function of (dataset, configuration,\n\
                 seed). A wall-clock read in an audit path either leaks into results\n\
                 (nondeterminism) or silently couples behaviour to machine load. Timing\n\
                 belongs to the telemetry layer: spans measure, events carry elapsed_ns,\n\
                 and Telemetry::now_ns() is the sanctioned monotonic read (one flag check\n\
                 when disabled).\n\
                 \n\
                 Fix: take time through fairbridge_obs::Telemetry (span() or now_ns()),\n\
                 or move the measurement into the bench harness.\n"
            }
            Rule::D4 => {
                "D4: no raw f64 sum/fold where stats::kernel exists\n\
                 \n\
                 Scope: crates/{metrics,engine,audit,mitigate,learn}/src, non-test code.\n\
                 Patterns: .sum::<f64>() and .fold(<float literal>, …).\n\
                 \n\
                 Why: float addition is not associative; every distinct accumulation order\n\
                 is a distinct rounding. stats::kernel::{sum,dot,axpy} fix one blocked\n\
                 8-lane order that the kernels, the parallel bootstrap and the trainers all\n\
                 share — a raw .sum() beside them silently computes a *different* number\n\
                 for the same data, which is exactly the cross-path drift the PR 4\n\
                 equivalence suites exist to prevent.\n\
                 \n\
                 Fix: use fairbridge_stats::kernel::sum (or dot/axpy) for hot-path or\n\
                 cross-path reductions. Existing sites are grandfathered in the baseline;\n\
                 migrate them when a bitwise change is acceptable and covered by tests.\n"
            }
            Rule::P1 => {
                "P1: no panic sites in non-test library code\n\
                 \n\
                 Scope: all crates/*/src except crates/bench, non-test code.\n\
                 Patterns: .unwrap(), .expect(…), panic!, unreachable!, and slice\n\
                 indexing by integer literal (x[0]). Indexing is matched lexically and\n\
                 conservatively: fixed-size array receivers (where x[0] is infallible)\n\
                 are flagged too, because the linter does no type inference. Such sites\n\
                 stay grandfathered or carry an allow-marker.\n\
                 \n\
                 Why: a production audit service answering a regulator cannot abort\n\
                 mid-request. Every panic site is a latent 500 and, worse, a truncated\n\
                 evidential trail: the spans and events up to the crash never flush.\n\
                 Library code returns typed errors (EngineError, tabular::Error) and lets\n\
                 the caller decide.\n\
                 \n\
                 Fix: return Result with a typed error; use .get(i) over x[i]; for locks,\n\
                 unwrap_or_else(|e| e.into_inner()) on poisoned mutexes. Where a panic is\n\
                 provably unreachable, document it:\n\
                 \n\
                     // fb-lint: allow(P1): keys are sorted and unique by construction\n"
            }
            Rule::U1 => {
                "U1: every unsafe block needs a // SAFETY: comment\n\
                 \n\
                 Scope: all crates/*/src, non-test code.\n\
                 \n\
                 Why: unsafe code is where the compiler stops checking and the auditor\n\
                 starts. A SAFETY comment stating the invariant being relied on is the\n\
                 minimum evidential standard — and its absence is a review smell. The\n\
                 workspace currently forbids unsafe entirely ([workspace.lints]\n\
                 unsafe_code = \"forbid\"); this rule keeps any future, deliberately\n\
                 carved-out exception honest.\n\
                 \n\
                 Fix: precede the unsafe block with // SAFETY: <invariant>, on the same\n\
                 or previous line.\n"
            }
            Rule::C1 => {
                "C1: no lock-order cycles, re-acquisition, or condvar waits with a second guard\n\
                 \n\
                 Scope: all crates/*/src, non-test code. Analysis: fb-lint's structural pass\n\
                 recovers fn items and guard scopes, keys every lock by identity\n\
                 (<crate>/<file>.<field path>), records which locks are held at every\n\
                 acquisition, and propagates may-acquire sets along the name-based workspace\n\
                 call graph. `fb-lint --locks [--dot]` prints the resulting lock-order graph.\n\
                 \n\
                 Why: the audit daemon is the system that produces our evidential trail; a\n\
                 deadlock is not a slow request but a silent, permanent halt of evidence\n\
                 production — and no 1/2/8-worker equivalence test can rule one out, because\n\
                 deadlocks live in interleavings, not outputs. Three hazards are flagged:\n\
                 (a) a cycle in the lock-order graph (two threads can take the locks in\n\
                 opposite orders and wait on each other forever); (b) acquiring a lock\n\
                 already held (std::sync::Mutex is not reentrant: instant self-deadlock or\n\
                 UB-adjacent poisoning); (c) Condvar::wait while a *second* guard is held\n\
                 (wait releases only the guard it is given — the second lock stays held\n\
                 across the park and starves every thread that needs it).\n\
                 \n\
                 Fix: impose one global acquisition order (document it in DESIGN §16) and\n\
                 restructure so nested acquisitions follow it; narrow guard scopes with\n\
                 blocks or drop(guard) so no second lock is taken under the first; never\n\
                 wait on a condvar holding anything but its own guard.\n\
                 \n\
                 C-family rules carry zero grandfathered debt: the baseline cannot record\n\
                 them and --update-baseline refuses while any exist. A false positive from\n\
                 the conservative analysis (see DESIGN §16) may be suppressed with\n\
                 `// fb-lint: allow(C1): reason`, which is visible in review and counted.\n"
            }
            Rule::C2 => {
                "C2: no guard held across a blocking call\n\
                 \n\
                 Scope: all crates/*/src, non-test code. A *named* guard binding held at a\n\
                 potentially-indefinite blocking call — socket/file reads and writes,\n\
                 JoinHandle::join, condvar-backed queue push/pop, accept/incoming, connect,\n\
                 thread::sleep — directly or through a callee that may block (propagated\n\
                 along the call graph).\n\
                 \n\
                 Why: a lock held across I/O couples every thread contending for that lock\n\
                 to the slowest socket peer. The serve daemon's admission control exists so\n\
                 a slow client costs one connection thread; a guard held across a write\n\
                 upgrades that to a convoy on the shared lock (and, combined with C1 edges,\n\
                 to a distributed deadlock risk). The paper's §V framing: the audit trail\n\
                 must remain available under adversarial load.\n\
                 \n\
                 Exemptions built into the analysis: same-statement temporary guards\n\
                 (`m.lock().…` chains — released at the statement's end), and blocking\n\
                 *through the guard itself* (writing via a MutexGuard<BufWriter> is that\n\
                 mutex's purpose).\n\
                 \n\
                 Fix: copy what you need out of the guarded region, drop the guard (scope\n\
                 block or drop(g)), then do the I/O. See DESIGN §12's accept-loop fix for\n\
                 the canonical restructuring. False positives: `// fb-lint: allow(C2): …`.\n"
            }
            Rule::C3 => {
                "C3: poison-absorbing lock access; // ORDER: on atomic orderings\n\
                 \n\
                 Scope: all crates/*/src, non-test code. Two patterns:\n\
                 (a) `.lock()`/`.read()`/`.write()` immediately followed by `.unwrap()` or\n\
                 `.expect(…)`;\n\
                 (b) `Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel` with no `// ORDER:`\n\
                 comment on the same or previous line (SeqCst needs no justification —\n\
                 it is the conservative default).\n\
                 \n\
                 Why (a): unwrapping a lock result turns poisoning — some *other* thread\n\
                 panicked while holding the lock — into a cascading panic here, killing a\n\
                 second worker because a first one died. The workspace pattern\n\
                 `unwrap_or_else(|e| e.into_inner())` absorbs the poison and keeps serving:\n\
                 panic-safety of the daemon's workers (DESIGN §12) depends on every lock\n\
                 site following it. This subsumes the lock-shaped chunk of P1.\n\
                 \n\
                 Why (b): a relaxed/acquire/release ordering is a claim about which\n\
                 cross-thread reorderings are safe — exactly the kind of claim U1 demands\n\
                 a // SAFETY: comment for on unsafe blocks. An `// ORDER:` comment stating\n\
                 why the weaker ordering suffices (e.g. \"independent stat counter; no\n\
                 reader infers other state from it\") makes the reasoning reviewable.\n\
                 \n\
                 Fix (a): `.unwrap_or_else(|e| e.into_inner())`. Fix (b): add\n\
                 `// ORDER: <why this ordering is sufficient>` beside the use, or switch\n\
                 to SeqCst if the cost is irrelevant. Suppress only with\n\
                 `// fb-lint: allow(C3): reason`.\n"
            }
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was matched, for the report.
    pub message: String,
}

/// The outcome of linting one file: findings, plus the ones an
/// `fb-lint: allow` marker suppressed (reported for transparency).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileReport {
    /// Violations that stand.
    pub findings: Vec<Finding>,
    /// Violations covered by an allow-marker.
    pub suppressed: Vec<Finding>,
}

/// Lints one file's source. `rel_path` must be the repo-relative path
/// (e.g. `crates/engine/src/partition.rs`); the crate name is parsed
/// from it.
pub fn check_source(rel_path: &str, src: &str) -> FileReport {
    let tokens = crate::lexer::tokenize(src);
    let flags = crate::scope::test_flags(&tokens);
    let crate_name = crate_of(rel_path);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !matches!(tokens.get(i), Some(t) if t.is_comment()))
        .collect();
    let mut raw: Vec<Finding> = Vec::new();

    let in_test = |ci: usize| -> bool {
        code.get(ci)
            .and_then(|&ti| flags.get(ti))
            .copied()
            .unwrap_or(false)
    };
    let tok = |ci: usize| -> Option<&Token> { code.get(ci).and_then(|&ti| tokens.get(ti)) };
    let line_of = |ci: usize| -> u32 { tok(ci).map(|t| t.line).unwrap_or(0) };
    let is = |ci: usize, kind: TokKind, text: &str| -> bool {
        matches!(tok(ci), Some(t) if t.kind == kind && t.text == text)
    };
    let is_kind =
        |ci: usize, kind: TokKind| -> bool { matches!(tok(ci), Some(t) if t.kind == kind) };

    for ci in 0..code.len() {
        if in_test(ci) {
            continue;
        }

        // --- D1: unordered containers in determinism-sensitive crates ---
        if D1_CRATES.contains(&crate_name)
            && (is(ci, TokKind::Ident, "HashMap") || is(ci, TokKind::Ident, "HashSet"))
        {
            if let Some(t) = tok(ci) {
                raw.push(Finding {
                    rule: Rule::D1,
                    file: rel_path.to_owned(),
                    line: t.line,
                    message: format!("`{}` in determinism-sensitive crate `{crate_name}`", t.text),
                });
            }
        }

        // --- D2: thread spawn/scope outside tabular::par ---
        if rel_path != D2_EXEMPT_FILE
            && is(ci, TokKind::Ident, "thread")
            && is(ci + 1, TokKind::Punct, ":")
            && is(ci + 2, TokKind::Punct, ":")
            && (is(ci + 3, TokKind::Ident, "spawn") || is(ci + 3, TokKind::Ident, "scope"))
        {
            let what = tok(ci + 3).map(|t| t.text.clone()).unwrap_or_default();
            raw.push(Finding {
                rule: Rule::D2,
                file: rel_path.to_owned(),
                line: line_of(ci),
                message: format!("`thread::{what}` outside tabular::par"),
            });
        }

        // --- D3: wall-clock reads outside obs/bench ---
        if !D3_EXEMPT_CRATES.contains(&crate_name) {
            if is(ci, TokKind::Ident, "Instant")
                && is(ci + 1, TokKind::Punct, ":")
                && is(ci + 2, TokKind::Punct, ":")
                && is(ci + 3, TokKind::Ident, "now")
            {
                raw.push(Finding {
                    rule: Rule::D3,
                    file: rel_path.to_owned(),
                    line: line_of(ci),
                    message: "`Instant::now` outside the telemetry/bench layers".to_owned(),
                });
            }
            if is(ci, TokKind::Ident, "SystemTime") {
                raw.push(Finding {
                    rule: Rule::D3,
                    file: rel_path.to_owned(),
                    line: line_of(ci),
                    message: "`SystemTime` outside the telemetry/bench layers".to_owned(),
                });
            }
        }

        // --- D4: raw float reductions in kernel-client crates ---
        if D4_CRATES.contains(&crate_name) && is(ci, TokKind::Punct, ".") {
            if is(ci + 1, TokKind::Ident, "sum")
                && is(ci + 2, TokKind::Punct, ":")
                && is(ci + 3, TokKind::Punct, ":")
                && is(ci + 4, TokKind::Punct, "<")
                && is(ci + 5, TokKind::Ident, "f64")
                && is(ci + 6, TokKind::Punct, ">")
            {
                raw.push(Finding {
                    rule: Rule::D4,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "raw `.sum::<f64>()` — use stats::kernel::sum".to_owned(),
                });
            }
            if is(ci + 1, TokKind::Ident, "fold")
                && is(ci + 2, TokKind::Punct, "(")
                && is_kind(ci + 3, TokKind::Float)
            {
                raw.push(Finding {
                    rule: Rule::D4,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "raw float `.fold(…)` — use stats::kernel::{sum,dot,axpy}".to_owned(),
                });
            }
        }

        // --- P1: panic sites in library code ---
        if !P1_EXEMPT_CRATES.contains(&crate_name) {
            if is(ci, TokKind::Punct, ".")
                && is(ci + 1, TokKind::Ident, "unwrap")
                && is(ci + 2, TokKind::Punct, "(")
                && is(ci + 3, TokKind::Punct, ")")
            {
                raw.push(Finding {
                    rule: Rule::P1,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "`.unwrap()` in library code".to_owned(),
                });
            }
            if is(ci, TokKind::Punct, ".")
                && is(ci + 1, TokKind::Ident, "expect")
                && is(ci + 2, TokKind::Punct, "(")
            {
                raw.push(Finding {
                    rule: Rule::P1,
                    file: rel_path.to_owned(),
                    line: line_of(ci + 1),
                    message: "`.expect(…)` in library code".to_owned(),
                });
            }
            for mac in ["panic", "unreachable"] {
                if is(ci, TokKind::Ident, mac) && is(ci + 1, TokKind::Punct, "!") {
                    raw.push(Finding {
                        rule: Rule::P1,
                        file: rel_path.to_owned(),
                        line: line_of(ci),
                        message: format!("`{mac}!` in library code"),
                    });
                }
            }
            // Slice indexing by integer literal: ident/)/] followed by [LIT].
            if is(ci, TokKind::Punct, "[")
                && is_kind(ci + 1, TokKind::Int)
                && is(ci + 2, TokKind::Punct, "]")
                && ci > 0
                && matches!(tok(ci - 1), Some(p)
                    if p.kind == TokKind::Ident
                        || (p.kind == TokKind::Punct && (p.text == ")" || p.text == "]")))
            {
                let lit = tok(ci + 1).map(|t| t.text.clone()).unwrap_or_default();
                raw.push(Finding {
                    rule: Rule::P1,
                    file: rel_path.to_owned(),
                    line: line_of(ci),
                    message: format!("slice indexing by literal `[{lit}]` in library code"),
                });
            }
        }

        // --- C3(a): bare unwrap/expect on a lock result ---
        if is(ci, TokKind::Punct, ".")
            && (is(ci + 1, TokKind::Ident, "lock")
                || is(ci + 1, TokKind::Ident, "read")
                || is(ci + 1, TokKind::Ident, "write"))
            && is(ci + 2, TokKind::Punct, "(")
            && is(ci + 3, TokKind::Punct, ")")
            && is(ci + 4, TokKind::Punct, ".")
            && (is(ci + 5, TokKind::Ident, "unwrap") || is(ci + 5, TokKind::Ident, "expect"))
            && is(ci + 6, TokKind::Punct, "(")
        {
            let acc = tok(ci + 1).map(|t| t.text.clone()).unwrap_or_default();
            let panicky = tok(ci + 5).map(|t| t.text.clone()).unwrap_or_default();
            raw.push(Finding {
                rule: Rule::C3,
                file: rel_path.to_owned(),
                line: line_of(ci + 5),
                message: format!(
                    "`.{acc}().{panicky}(…)` on a lock — use `.unwrap_or_else(|e| e.into_inner())`"
                ),
            });
        }

        // --- C3(b): non-SeqCst atomic ordering without // ORDER: ---
        if is(ci, TokKind::Ident, "Ordering")
            && is(ci + 1, TokKind::Punct, ":")
            && is(ci + 2, TokKind::Punct, ":")
            && matches!(tok(ci + 3), Some(t) if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "Relaxed" | "Acquire" | "Release" | "AcqRel"))
        {
            let line = line_of(ci + 3);
            let variant = tok(ci + 3).map(|t| t.text.clone()).unwrap_or_default();
            let documented = tokens.iter().any(|t| {
                t.is_comment()
                    && t.text.contains("ORDER:")
                    && t.line <= line
                    && t.end_line() + 1 >= line
            });
            if !documented {
                raw.push(Finding {
                    rule: Rule::C3,
                    file: rel_path.to_owned(),
                    line,
                    message: format!(
                        "`Ordering::{variant}` without an `// ORDER:` justification comment"
                    ),
                });
            }
        }

        // --- U1: unsafe without SAFETY comment ---
        if is(ci, TokKind::Ident, "unsafe") {
            let line = line_of(ci);
            let documented = tokens.iter().any(|t| {
                t.is_comment()
                    && t.text.contains("SAFETY:")
                    && t.line <= line
                    && t.end_line() + 1 >= line
            });
            if !documented {
                raw.push(Finding {
                    rule: Rule::U1,
                    file: rel_path.to_owned(),
                    line,
                    message: "`unsafe` without a `// SAFETY:` comment".to_owned(),
                });
            }
        }
    }

    // Partition into findings vs. allow-marker suppressions.
    let mut report = FileReport::default();
    for finding in raw {
        if allowed(&tokens, finding.rule, finding.line) {
            report.suppressed.push(finding);
        } else {
            report.findings.push(finding);
        }
    }
    report.findings.sort_by_key(|f| (f.line, f.rule));
    report.suppressed.sort_by_key(|f| (f.line, f.rule));
    report
}

/// The crate name inside `crates/<name>/…`, or `""`.
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Whether a comment on `line` or the line above carries
/// `fb-lint: allow(<rule>…)` for this rule. `tokens` may be a full
/// token stream or a pre-filtered comment list.
pub fn allowed(tokens: &[Token], rule: Rule, line: u32) -> bool {
    tokens.iter().any(|t| {
        t.is_comment()
            && t.line <= line
            && t.end_line() + 1 >= line
            && comment_allows(&t.text, rule)
    })
}

/// Parses `fb-lint: allow(D1, P1): reason` out of a comment.
fn comment_allows(comment: &str, rule: Rule) -> bool {
    let Some(idx) = comment.find("fb-lint: allow(") else {
        return false;
    };
    let after = &comment[idx + "fb-lint: allow(".len()..];
    let Some(close) = after.find(')') else {
        return false;
    };
    after[..close]
        .split(',')
        .any(|part| Rule::parse(part) == Some(rule))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_parsing() {
        assert_eq!(crate_of("crates/engine/src/partition.rs"), "engine");
        assert_eq!(crate_of("crates/lint/src/main.rs"), "lint");
        assert_eq!(crate_of("tests/integration_engine.rs"), "");
    }

    #[test]
    fn allow_marker_parses_rule_lists() {
        assert!(comment_allows(
            "// fb-lint: allow(D1): sorted below",
            Rule::D1
        ));
        assert!(comment_allows("// fb-lint: allow(D1, P1): both", Rule::P1));
        assert!(!comment_allows("// fb-lint: allow(D1): sorted", Rule::P1));
        assert!(!comment_allows("// plain comment", Rule::D1));
    }

    #[test]
    fn d1_fires_only_in_sensitive_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let engine = check_source("crates/engine/src/x.rs", src);
        assert_eq!(engine.findings.len(), 3);
        assert!(engine.findings.iter().all(|f| f.rule == Rule::D1));
        let core = check_source("crates/core/src/x.rs", src);
        assert!(core.findings.is_empty());
    }

    #[test]
    fn p1_patterns_and_test_scoping() {
        let src = "fn f(x: Option<u32>, v: &[u32]) -> u32 { x.unwrap() + v[0] }\n\
                   #[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }\n";
        let rep = check_source("crates/core/src/x.rs", src);
        assert_eq!(rep.findings.len(), 2);
        assert!(rep.findings.iter().all(|f| f.rule == Rule::P1));
        assert_eq!(rep.findings.first().map(|f| f.line), Some(1));
    }

    #[test]
    fn allow_marker_suppresses_and_is_counted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // fb-lint: allow(P1): provably Some by construction\n\
                   x.unwrap()\n}\n";
        let rep = check_source("crates/core/src/x.rs", src);
        assert!(rep.findings.is_empty());
        assert_eq!(rep.suppressed.len(), 1);
    }

    #[test]
    fn u1_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let good = "fn f() {\n// SAFETY: caller guarantees the branch is dead\nunsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(check_source("crates/core/src/x.rs", bad).findings.len(), 1);
        assert!(check_source("crates/core/src/x.rs", good)
            .findings
            .is_empty());
    }
}
