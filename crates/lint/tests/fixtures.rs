//! Fixture suite for fb-lint: every rule class is exercised against a
//! known-violating snippet (exact finding counts asserted), and every
//! known false-positive trap — test-scoped code, string literals,
//! comments, attribute brackets, fixed-array type syntax — is asserted
//! to produce *zero* findings. This is the linter's own regression
//! harness: if a rule's matcher drifts, these counts move.

use fairbridge_lint::baseline::{diff, report_json, Baseline};
use fairbridge_lint::rules::{check_source, Rule};

/// Counts findings of one rule in a report run against `crates/<krate>/src/fixture.rs`.
fn count(krate: &str, src: &str, rule: Rule) -> usize {
    check_source(&format!("crates/{krate}/src/fixture.rs"), src)
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .count()
}

// --- D1: unordered containers in determinism-sensitive crates ---------

#[test]
fn d1_detects_each_container_mention() {
    let src = "use std::collections::{HashMap, HashSet};\n\
               pub struct Cache { inner: HashMap<u64, u64>, seen: HashSet<u64> }\n";
    // 2 in the use list + 2 in the struct body.
    assert_eq!(count("engine", src, Rule::D1), 4);
    assert_eq!(count("metrics", src, Rule::D1), 4);
}

#[test]
fn d1_silent_in_insensitive_crates_and_on_btree() {
    let hash = "use std::collections::HashMap;\n";
    assert_eq!(count("obs", hash, Rule::D1), 0);
    assert_eq!(count("core", hash, Rule::D1), 0);
    let btree = "use std::collections::{BTreeMap, BTreeSet};\n";
    assert_eq!(count("engine", btree, Rule::D1), 0);
}

#[test]
fn d1_string_and_comment_traps_do_not_fire() {
    let src = "// a HashMap would be wrong here\n\
               /* HashSet too */\n\
               pub const DOC: &str = \"uses HashMap internally\";\n";
    assert_eq!(count("engine", src, Rule::D1), 0);
}

// --- D2: thread spawn/scope outside tabular::par ----------------------

#[test]
fn d2_detects_spawn_and_scope() {
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n\
               pub fn g() { std::thread::scope(|_| {}); }\n";
    assert_eq!(count("engine", src, Rule::D2), 2);
}

#[test]
fn d2_exempts_the_parallel_map_module() {
    let src = "pub fn f() { std::thread::scope(|_| {}); }\n";
    let rep = check_source("crates/tabular/src/par.rs", src);
    assert!(rep.findings.iter().all(|f| f.rule != Rule::D2));
    // …but the same code in any other tabular file fires.
    assert_eq!(count("tabular", src, Rule::D2), 1);
}

// --- D3: wall-clock reads outside obs/bench ---------------------------

#[test]
fn d3_detects_instant_and_system_time() {
    let src = "use std::time::{Instant, SystemTime};\n\
               pub fn f() -> bool { let t = Instant::now(); t.elapsed().as_nanos() > 0 }\n";
    // SystemTime in the use list + Instant::now in the body.
    assert_eq!(count("engine", src, Rule::D3), 2);
}

#[test]
fn d3_exempts_obs_and_bench() {
    let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(count("obs", src, Rule::D3), 0);
    assert_eq!(count("bench", src, Rule::D3), 0);
    assert_eq!(count("stats", src, Rule::D3), 1);
}

// --- D4: raw float reductions in kernel-client crates -----------------

#[test]
fn d4_detects_sum_turbofish_and_float_fold() {
    let src = "pub fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n\
               pub fn g(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }\n";
    assert_eq!(count("metrics", src, Rule::D4), 2);
}

#[test]
fn d4_ignores_integer_reductions_and_non_client_crates() {
    let int = "pub fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }\n\
               pub fn g(v: &[u64]) -> u64 { v.iter().fold(0, |a, b| a + b) }\n";
    assert_eq!(count("metrics", int, Rule::D4), 0);
    let float = "pub fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
    // stats owns the kernel; it is not a D4 client.
    assert_eq!(count("stats", float, Rule::D4), 0);
}

// --- P1: panic sites in non-test library code -------------------------

#[test]
fn p1_detects_each_panic_site_class() {
    let src = "pub fn f(x: Option<u32>, v: &[u32]) -> u32 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"present\");\n\
                   if a > b { panic!(\"impossible\"); }\n\
                   if b > a { unreachable!(); }\n\
                   a + v[0]\n\
               }\n";
    assert_eq!(count("core", src, Rule::P1), 5);
}

#[test]
fn p1_skips_test_scoped_code() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { None::<u32>.unwrap(); assert!(vec![1][0] == 1); }\n\
               }\n";
    assert_eq!(count("core", src, Rule::P1), 0);
}

#[test]
fn p1_indexing_traps_do_not_fire() {
    // Array type syntax, macro brackets and attribute brackets all
    // contain `[<int>]`-ish shapes that must not match.
    let src = "#[derive(Debug)]\n\
               pub struct S { buf: [u8; 4] }\n\
               pub fn f() -> Vec<u32> { vec![0] }\n";
    assert_eq!(count("core", src, Rule::P1), 0);
}

#[test]
fn p1_allow_marker_suppresses_and_is_reported() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
               // fb-lint: allow(P1): invariant documented here\n\
               x.unwrap()\n\
               }\n";
    let rep = check_source("crates/core/src/fixture.rs", src);
    assert!(rep.findings.is_empty());
    assert_eq!(rep.suppressed.len(), 1);
    assert_eq!(rep.suppressed.first().map(|f| f.rule), Some(Rule::P1));
}

// --- U1: unsafe needs a SAFETY comment --------------------------------

#[test]
fn u1_detects_undocumented_unsafe_only() {
    let bare = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(count("core", bare, Rule::U1), 1);
    let documented = "// SAFETY: caller guarantees p is valid for reads\n\
                      pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(count("core", documented, Rule::U1), 0);
}

// --- Baseline / JSON stability ----------------------------------------

#[test]
fn baseline_roundtrip_and_ratchet_semantics() {
    let noisy = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let rep = check_source("crates/core/src/fixture.rs", noisy);
    let base = Baseline::from_findings(&rep.findings);
    let parsed = Baseline::from_json(&base.to_json()).expect("roundtrip");
    assert_eq!(parsed.total(), base.total());

    // Same findings vs. their own baseline: clean.
    assert!(diff(&rep.findings, &base).clean());
    // An extra finding vs. that baseline: not clean.
    let noisier = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() + x.unwrap() }\n";
    let rep2 = check_source("crates/core/src/fixture.rs", noisier);
    assert!(!diff(&rep2.findings, &base).clean());
    // Fewer findings: clean, and the improvement is counted.
    let d = diff(&[], &base);
    assert!(d.clean());
    assert_eq!(d.fixed(), 1);
}

#[test]
fn report_json_is_bytewise_stable() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               pub fn g() { std::thread::spawn(|| {}); }\n";
    let rep = check_source("crates/engine/src/fixture.rs", src);
    let base = Baseline::default();
    let d = diff(&rep.findings, &base);
    let a = report_json(1, &rep.findings, &rep.suppressed, &base, &d);
    let b = report_json(1, &rep.findings, &rep.suppressed, &base, &d);
    assert_eq!(a, b);
    // Spot-check shape: parseable by the in-tree JSON parser and keyed
    // in the documented order.
    let v = fairbridge_obs::json::parse(&a).expect("valid JSON");
    assert_eq!(
        v.get("total").and_then(|t| t.as_f64()),
        Some(rep.findings.len() as f64)
    );
    assert!(a.starts_with("{\"files_scanned\":1,"));
}
