//! Fixture suite for fb-lint: every rule class is exercised against a
//! known-violating snippet (exact finding counts asserted), and every
//! known false-positive trap — test-scoped code, string literals,
//! comments, attribute brackets, fixed-array type syntax — is asserted
//! to produce *zero* findings. This is the linter's own regression
//! harness: if a rule's matcher drifts, these counts move.

use fairbridge_lint::baseline::{diff, report_json, Baseline};
use fairbridge_lint::rules::{check_source, Rule};
use fairbridge_lint::{analyze, parse_file, LocksReport};

/// Counts findings of one rule in a report run against `crates/<krate>/src/fixture.rs`.
fn count(krate: &str, src: &str, rule: Rule) -> usize {
    check_source(&format!("crates/{krate}/src/fixture.rs"), src)
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .count()
}

/// Runs the structural lock analysis over one fixture file.
fn locks(krate: &str, src: &str) -> LocksReport {
    let model = parse_file(&format!("crates/{krate}/src/fixture.rs"), src);
    analyze(&model.fns)
}

/// Counts C1/C2 findings of one rule from the lock analysis.
fn lock_count(krate: &str, src: &str, rule: Rule) -> usize {
    locks(krate, src)
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .count()
}

// --- D1: unordered containers in determinism-sensitive crates ---------

#[test]
fn d1_detects_each_container_mention() {
    let src = "use std::collections::{HashMap, HashSet};\n\
               pub struct Cache { inner: HashMap<u64, u64>, seen: HashSet<u64> }\n";
    // 2 in the use list + 2 in the struct body.
    assert_eq!(count("engine", src, Rule::D1), 4);
    assert_eq!(count("metrics", src, Rule::D1), 4);
}

#[test]
fn d1_silent_in_insensitive_crates_and_on_btree() {
    let hash = "use std::collections::HashMap;\n";
    assert_eq!(count("obs", hash, Rule::D1), 0);
    assert_eq!(count("core", hash, Rule::D1), 0);
    let btree = "use std::collections::{BTreeMap, BTreeSet};\n";
    assert_eq!(count("engine", btree, Rule::D1), 0);
}

#[test]
fn d1_string_and_comment_traps_do_not_fire() {
    let src = "// a HashMap would be wrong here\n\
               /* HashSet too */\n\
               pub const DOC: &str = \"uses HashMap internally\";\n";
    assert_eq!(count("engine", src, Rule::D1), 0);
}

// --- D2: thread spawn/scope outside tabular::par ----------------------

#[test]
fn d2_detects_spawn_and_scope() {
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n\
               pub fn g() { std::thread::scope(|_| {}); }\n";
    assert_eq!(count("engine", src, Rule::D2), 2);
}

#[test]
fn d2_exempts_the_parallel_map_module() {
    let src = "pub fn f() { std::thread::scope(|_| {}); }\n";
    let rep = check_source("crates/tabular/src/par.rs", src);
    assert!(rep.findings.iter().all(|f| f.rule != Rule::D2));
    // …but the same code in any other tabular file fires.
    assert_eq!(count("tabular", src, Rule::D2), 1);
}

// --- D3: wall-clock reads outside obs/bench ---------------------------

#[test]
fn d3_detects_instant_and_system_time() {
    let src = "use std::time::{Instant, SystemTime};\n\
               pub fn f() -> bool { let t = Instant::now(); t.elapsed().as_nanos() > 0 }\n";
    // SystemTime in the use list + Instant::now in the body.
    assert_eq!(count("engine", src, Rule::D3), 2);
}

#[test]
fn d3_exempts_obs_and_bench() {
    let src = "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(count("obs", src, Rule::D3), 0);
    assert_eq!(count("bench", src, Rule::D3), 0);
    assert_eq!(count("stats", src, Rule::D3), 1);
}

// --- D4: raw float reductions in kernel-client crates -----------------

#[test]
fn d4_detects_sum_turbofish_and_float_fold() {
    let src = "pub fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n\
               pub fn g(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }\n";
    assert_eq!(count("metrics", src, Rule::D4), 2);
}

#[test]
fn d4_ignores_integer_reductions_and_non_client_crates() {
    let int = "pub fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }\n\
               pub fn g(v: &[u64]) -> u64 { v.iter().fold(0, |a, b| a + b) }\n";
    assert_eq!(count("metrics", int, Rule::D4), 0);
    let float = "pub fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
    // stats owns the kernel; it is not a D4 client.
    assert_eq!(count("stats", float, Rule::D4), 0);
}

// --- P1: panic sites in non-test library code -------------------------

#[test]
fn p1_detects_each_panic_site_class() {
    let src = "pub fn f(x: Option<u32>, v: &[u32]) -> u32 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"present\");\n\
                   if a > b { panic!(\"impossible\"); }\n\
                   if b > a { unreachable!(); }\n\
                   a + v[0]\n\
               }\n";
    assert_eq!(count("core", src, Rule::P1), 5);
}

#[test]
fn p1_skips_test_scoped_code() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { None::<u32>.unwrap(); assert!(vec![1][0] == 1); }\n\
               }\n";
    assert_eq!(count("core", src, Rule::P1), 0);
}

#[test]
fn p1_indexing_traps_do_not_fire() {
    // Array type syntax, macro brackets and attribute brackets all
    // contain `[<int>]`-ish shapes that must not match.
    let src = "#[derive(Debug)]\n\
               pub struct S { buf: [u8; 4] }\n\
               pub fn f() -> Vec<u32> { vec![0] }\n";
    assert_eq!(count("core", src, Rule::P1), 0);
}

#[test]
fn p1_allow_marker_suppresses_and_is_reported() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
               // fb-lint: allow(P1): invariant documented here\n\
               x.unwrap()\n\
               }\n";
    let rep = check_source("crates/core/src/fixture.rs", src);
    assert!(rep.findings.is_empty());
    assert_eq!(rep.suppressed.len(), 1);
    assert_eq!(rep.suppressed.first().map(|f| f.rule), Some(Rule::P1));
}

// --- U1: unsafe needs a SAFETY comment --------------------------------

#[test]
fn u1_detects_undocumented_unsafe_only() {
    let bare = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(count("core", bare, Rule::U1), 1);
    let documented = "// SAFETY: caller guarantees p is valid for reads\n\
                      pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(count("core", documented, Rule::U1), 0);
}

// --- C1: lock-order cycles, re-acquisition, condvar discipline --------

#[test]
fn c1_detects_an_opposite_order_cycle() {
    let src = "impl S {\n\
               fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn ba(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
               }\n";
    let r = locks("engine", src);
    assert!(!r.graph.is_acyclic());
    assert_eq!(lock_count("engine", src, Rule::C1), 1);
}

#[test]
fn c1_detects_direct_self_reacquisition() {
    let src = "impl S { fn f(&self) { let g = self.a.lock(); let h = self.a.lock(); } }\n";
    assert_eq!(lock_count("engine", src, Rule::C1), 1);
}

#[test]
fn c1_detects_reacquisition_through_a_self_recursive_call() {
    // Recursing while the guard is live re-enters `f`, which acquires
    // `a` again: a genuine self-deadlock, found interprocedurally.
    let src = "impl S { fn f(&self) { let g = self.a.lock(); self.f(); } }\n";
    assert_eq!(lock_count("engine", src, Rule::C1), 1);
}

#[test]
fn c1_trap_self_recursion_after_drop_is_clean() {
    // The same recursion with the guard released first must not fire,
    // and the interprocedural fixpoint must terminate on the cycle.
    let src = "impl S { fn f(&self, d: u32) {\n\
               let g = self.a.lock();\n\
               drop(g);\n\
               if d > 0 { self.f(d - 1); }\n\
               } }\n";
    assert_eq!(lock_count("engine", src, Rule::C1), 0);
}

#[test]
fn c1_detects_condvar_wait_with_a_second_guard() {
    let src = "impl S { fn f(&self) {\n\
               let extra = self.extra.lock();\n\
               let mut g = self.state.lock();\n\
               g = self.cv.wait(g);\n\
               } }\n";
    assert_eq!(lock_count("engine", src, Rule::C1), 1);
}

#[test]
fn c1_trap_condvar_wait_with_only_its_own_guard_is_clean() {
    let src = "impl S { fn f(&self) {\n\
               let mut g = self.state.lock();\n\
               g = self.cv.wait(g);\n\
               } }\n";
    assert_eq!(lock_count("engine", src, Rule::C1), 0);
}

#[test]
fn c1_trap_drop_breaks_the_nesting_edge() {
    // `ab` releases `a` before taking `b`, so only `ba`'s b->a edge
    // exists and the graph stays acyclic.
    let src = "impl S {\n\
               fn ab(&self) { let g = self.a.lock(); drop(g); let h = self.b.lock(); }\n\
               fn ba(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
               }\n";
    let r = locks("engine", src);
    assert!(r.graph.is_acyclic());
    assert_eq!(r.graph.edges.len(), 1);
    assert_eq!(lock_count("engine", src, Rule::C1), 0);
}

#[test]
fn c1_trap_two_disjoint_scopes_produce_no_edge() {
    let src = "impl S { fn f(&self) {\n\
               { let g = self.a.lock(); }\n\
               { let h = self.b.lock(); }\n\
               } }\n";
    let r = locks("engine", src);
    assert_eq!(r.graph.nodes.len(), 2);
    assert!(r.graph.edges.is_empty());
    assert!(r.findings.is_empty());
}

// --- C2: blocking while a guard is held -------------------------------

#[test]
fn c2_detects_blocking_io_and_joins_under_a_guard() {
    let src = "impl S {\n\
               fn f(&self, s: &mut TcpStream, buf: &mut [u8]) {\n\
               let g = self.conns.lock();\n\
               s.read_exact(buf);\n\
               }\n\
               fn j(&self, h: JoinHandle<()>) {\n\
               let g = self.conns.lock();\n\
               h.join();\n\
               }\n\
               }\n";
    assert_eq!(lock_count("serve", src, Rule::C2), 2);
}

#[test]
fn c2_detects_blocking_through_an_interprocedural_callee() {
    let src = "impl S {\n\
               fn slow(&self, s: &mut TcpStream, buf: &mut [u8]) { s.read_exact(buf); }\n\
               fn f(&self, s: &mut TcpStream, buf: &mut [u8]) {\n\
               let g = self.conns.lock();\n\
               self.slow(s, buf);\n\
               }\n\
               }\n";
    assert_eq!(lock_count("serve", src, Rule::C2), 1);
}

#[test]
fn c2_shadowed_rebinding_keeps_the_first_guard_held() {
    // Rebinding `g` does NOT release the first guard — it lives,
    // anonymous, to end of scope. Sleeping still blocks under both.
    let src = "impl S { fn f(&self, d: Duration) {\n\
               let g = self.a.lock();\n\
               let g = self.b.lock();\n\
               std::thread::sleep(d);\n\
               } }\n";
    let r = locks("engine", src);
    let c2: Vec<_> = r.findings.iter().filter(|f| f.rule == Rule::C2).collect();
    assert_eq!(c2.len(), 1);
    let msg = &c2.first().expect("one C2").message;
    assert!(msg.contains("engine/fixture.a"), "both locks named: {msg}");
    assert!(msg.contains("engine/fixture.b"), "both locks named: {msg}");
}

#[test]
fn c2_trap_drop_before_blocking_is_clean() {
    let src = "impl S { fn f(&self, s: &mut TcpStream, buf: &mut [u8]) {\n\
               let g = self.conns.lock();\n\
               drop(g);\n\
               s.read_exact(buf);\n\
               } }\n";
    assert_eq!(lock_count("serve", src, Rule::C2), 0);
}

#[test]
fn c2_trap_same_statement_temporary_guard_is_exempt() {
    // The accessor-chain idiom: the guard dies at the semicolon, so the
    // flush through it is not "holding a lock across blocking I/O".
    let src = "impl S { fn f(&self) { let _ = self.out.lock().flush(); } }\n";
    assert_eq!(lock_count("obs", src, Rule::C2), 0);
}

#[test]
fn c2_trap_blocking_through_the_guard_itself_is_exempt() {
    // Writing via the MutexGuard<BufWriter> is the point of that mutex.
    let src = "impl S { fn f(&self, line: &[u8]) {\n\
               let mut g = self.out.lock();\n\
               g.write_all(line);\n\
               } }\n";
    assert_eq!(lock_count("obs", src, Rule::C2), 0);
}

#[test]
fn c_rules_skip_test_scoped_guards() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn f(a: &Mutex<u32>, b: &Mutex<u32>, d: Duration) {\n\
               let g = a.lock();\n\
               let h = b.lock();\n\
               std::thread::sleep(d);\n\
               }\n\
               }\n";
    let r = locks("engine", src);
    assert!(r.findings.is_empty());
    assert!(r.graph.nodes.is_empty());
}

// --- C3: lock hygiene and ordering justifications ---------------------

#[test]
fn c3_detects_panicky_lock_access() {
    let src = "pub fn f(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {\n\
               *m.lock().unwrap() + *rw.read().expect(\"poisoned\")\n\
               }\n";
    // Two findings for the lock accesses; the unwrap/expect themselves
    // also fire P1 separately.
    assert_eq!(count("core", src, Rule::C3), 2);
}

#[test]
fn c3_trap_poison_absorbing_access_is_clean() {
    let src = "pub fn f(m: &Mutex<u32>) -> u32 {\n\
               *m.lock().unwrap_or_else(|e| e.into_inner())\n\
               }\n";
    assert_eq!(count("core", src, Rule::C3), 0);
}

#[test]
fn c3_detects_unjustified_weak_orderings() {
    let src = "pub fn f(x: &AtomicU64) -> u64 {\n\
               x.fetch_add(1, Ordering::Relaxed);\n\
               x.load(Ordering::Acquire)\n\
               }\n";
    assert_eq!(count("core", src, Rule::C3), 2);
}

#[test]
fn c3_trap_order_comment_and_seqcst_are_clean() {
    let src = "pub fn f(x: &AtomicU64) -> u64 {\n\
               // ORDER: Relaxed — pure tally.\n\
               x.fetch_add(1, Ordering::Relaxed);\n\
               x.load(Ordering::SeqCst) // strongest ordering needs no note\n\
               }\n";
    assert_eq!(count("core", src, Rule::C3), 0);
}

#[test]
fn c3_skips_test_scoped_code() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn f(m: &Mutex<u32>, x: &AtomicU64) {\n\
               m.lock().unwrap();\n\
               x.load(Ordering::Relaxed);\n\
               }\n\
               }\n";
    assert_eq!(count("core", src, Rule::C3), 0);
}

// --- The real workspace's lock discipline ------------------------------

#[test]
fn real_workspace_lock_graph_is_acyclic_and_matches_the_committed_dot() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let telemetry = fairbridge_obs::Telemetry::off();
    let report = fairbridge_lint::scan_tree(&root, &telemetry).expect("scan");
    assert!(
        report.graph.is_acyclic(),
        "workspace lock-order graph has a cycle:\n{}",
        report.graph.render_text()
    );
    // serve, obs and engine locks must all be modeled.
    for prefix in ["serve/", "obs/", "engine/"] {
        assert!(
            report.graph.nodes.iter().any(|n| n.starts_with(prefix)),
            "no {prefix} locks recovered — parser regression?"
        );
    }
    let committed = std::fs::read_to_string(root.join("LOCK_ORDER.dot"))
        .expect("LOCK_ORDER.dot is committed at the repo root");
    assert_eq!(
        report.graph.render_dot(),
        committed,
        "LOCK_ORDER.dot is stale — regenerate with `fb-lint --locks --dot > LOCK_ORDER.dot`"
    );
}

// --- Baseline / JSON stability ----------------------------------------

#[test]
fn baseline_roundtrip_and_ratchet_semantics() {
    let noisy = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let rep = check_source("crates/core/src/fixture.rs", noisy);
    let base = Baseline::from_findings(&rep.findings);
    let parsed = Baseline::from_json(&base.to_json()).expect("roundtrip");
    assert_eq!(parsed.total(), base.total());

    // Same findings vs. their own baseline: clean.
    assert!(diff(&rep.findings, &base).clean());
    // An extra finding vs. that baseline: not clean.
    let noisier = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() + x.unwrap() }\n";
    let rep2 = check_source("crates/core/src/fixture.rs", noisier);
    assert!(!diff(&rep2.findings, &base).clean());
    // Fewer findings: clean, and the improvement is counted.
    let d = diff(&[], &base);
    assert!(d.clean());
    assert_eq!(d.fixed(), 1);
}

#[test]
fn report_json_is_bytewise_stable() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               pub fn g() { std::thread::spawn(|| {}); }\n";
    let rep = check_source("crates/engine/src/fixture.rs", src);
    let base = Baseline::default();
    let d = diff(&rep.findings, &base);
    let a = report_json(1, &rep.findings, &rep.suppressed, &base, &d);
    let b = report_json(1, &rep.findings, &rep.suppressed, &base, &d);
    assert_eq!(a, b);
    // Spot-check shape: parseable by the in-tree JSON parser and keyed
    // in the documented order.
    let v = fairbridge_obs::json::parse(&a).expect("valid JSON");
    assert_eq!(
        v.get("total").and_then(|t| t.as_f64()),
        Some(rep.findings.len() as f64)
    );
    assert!(a.starts_with("{\"version\":2,\"files_scanned\":1,"));
}

#[test]
fn report_json_v2_keeps_v1_field_order_and_adds_families() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let rep = check_source("crates/engine/src/fixture.rs", src);
    let base = Baseline::default();
    let d = diff(&rep.findings, &base);
    let a = report_json(1, &rep.findings, &rep.suppressed, &base, &d);
    // Every v1 key is still present, in its v1 relative order — a v1
    // consumer walking fields by name keeps working.
    let v1_keys = [
        "\"files_scanned\":",
        "\"total\":",
        "\"baseline_total\":",
        "\"new\":",
        "\"fixed\":",
        "\"suppressed\":",
        "\"rules\":",
        "\"findings\":",
    ];
    let positions: Vec<usize> = v1_keys
        .iter()
        .map(|k| a.find(k).unwrap_or_else(|| panic!("missing v1 key {k}")))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "v1 keys out of their v1 order: {a}"
    );
    // v2 additions: leading version, per-family totals with all four
    // families present even when zero.
    let v = fairbridge_obs::json::parse(&a).expect("valid JSON");
    assert_eq!(v.get("version").and_then(|x| x.as_f64()), Some(2.0));
    let families = v.get("families").expect("families object");
    for fam in ["C", "D", "P", "U"] {
        assert!(families.get(fam).is_some(), "family {fam} missing");
    }
    assert_eq!(families.get("P").and_then(|x| x.as_f64()), Some(1.0));
    assert_eq!(families.get("C").and_then(|x| x.as_f64()), Some(0.0));
}

#[test]
fn baseline_rejects_v1_schema() {
    // A v1 baseline has no version field; a tampered one says version 1.
    let v1 = "{\n  \"total\": 1,\n  \"counts\": {\n    \"crates/a/src/x.rs\": {\"P1\": 1}}\n}\n";
    let err = Baseline::from_json(v1).expect_err("v1 must be rejected");
    assert!(err.contains("version"), "unexpected error: {err}");
    let pinned = "{\n  \"version\": 1,\n  \"total\": 1,\n  \"counts\": {\n    \"crates/a/src/x.rs\": {\"P1\": 1}}\n}\n";
    let err = Baseline::from_json(pinned).expect_err("version 1 must be rejected");
    assert!(err.contains("regenerate"), "unexpected error: {err}");
}

#[test]
fn baseline_rejects_grandfathered_c_debt() {
    for rule in ["C1", "C2", "C3"] {
        let text = format!(
            "{{\n  \"version\": 2,\n  \"total\": 1,\n  \"counts\": {{\n    \"crates/a/src/x.rs\": {{\"{rule}\": 1}}}}\n}}\n"
        );
        let err = Baseline::from_json(&text).expect_err("C debt must be rejected");
        assert!(
            err.contains("cannot be grandfathered"),
            "unexpected error for {rule}: {err}"
        );
    }
}
