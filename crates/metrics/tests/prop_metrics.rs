//! Randomized property tests for the fairness metrics: gap/ratio
//! invariants, driven by the workspace's deterministic PRNG (no proptest:
//! the build is offline).

use fairbridge_metrics::disparity::demographic_disparity;
use fairbridge_metrics::odds::equalized_odds;
use fairbridge_metrics::opportunity::equal_opportunity;
use fairbridge_metrics::outcome::{GapSummary, Outcomes, RateStat};
use fairbridge_metrics::parity::{demographic_parity, disparate_impact};
use fairbridge_stats::rng::{Rng, StdRng};
use fairbridge_tabular::GroupKey;

const CASES: usize = 64;

/// Random predictions + labels + binary group codes of equal length.
fn outcome_data<R: Rng>(rng: &mut R) -> (Vec<bool>, Vec<bool>, Vec<u32>) {
    let n = rng.gen_range(2..80usize);
    let preds: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2usize) as u32).collect();
    (preds, labels, codes)
}

/// Gap is in [0,1]; ratio in [0,1]; gap 0 iff ratio 1 (when defined).
#[test]
fn parity_gap_ratio_bounds() {
    let mut rng = StdRng::seed_from_u64(0x3E_01);
    for _ in 0..CASES {
        let (preds, _labels, codes) = outcome_data(&mut rng);
        let o = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let r = demographic_parity(&o, 0);
        if !r.summary.gap.is_nan() {
            assert!((0.0..=1.0).contains(&r.summary.gap));
            assert!((0.0..=1.0 + 1e-12).contains(&r.summary.ratio));
            if r.summary.gap < 1e-12 {
                assert!((r.summary.ratio - 1.0).abs() < 1e-9);
            }
        }
    }
}

/// Relabeling the groups (swapping codes) leaves the gap unchanged.
#[test]
fn parity_invariant_under_group_relabel() {
    let mut rng = StdRng::seed_from_u64(0x3E_02);
    for _ in 0..CASES {
        let (preds, _labels, codes) = outcome_data(&mut rng);
        let swapped: Vec<u32> = codes.iter().map(|&c| 1 - c).collect();
        let o1 = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let o2 = Outcomes::from_slices(&preds, None, &swapped, &["a", "b"]).unwrap();
        let g1 = demographic_parity(&o1, 0).summary.gap;
        let g2 = demographic_parity(&o2, 0).summary.gap;
        if g1.is_nan() {
            assert!(g2.is_nan());
        } else {
            assert!((g1 - g2).abs() < 1e-12);
        }
    }
}

/// Flipping every prediction maps selection rate r to 1−r, so the
/// parity gap is preserved.
#[test]
fn parity_invariant_under_outcome_flip() {
    let mut rng = StdRng::seed_from_u64(0x3E_03);
    for _ in 0..CASES {
        let (preds, _labels, codes) = outcome_data(&mut rng);
        let flipped: Vec<bool> = preds.iter().map(|&p| !p).collect();
        let o1 = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let o2 = Outcomes::from_slices(&flipped, None, &codes, &["a", "b"]).unwrap();
        let g1 = demographic_parity(&o1, 0).summary.gap;
        let g2 = demographic_parity(&o2, 0).summary.gap;
        if !g1.is_nan() && !g2.is_nan() {
            assert!((g1 - g2).abs() < 1e-12);
        }
    }
}

/// Duplicating every row leaves all rates, gaps and verdicts intact.
#[test]
fn metrics_invariant_under_duplication() {
    let mut rng = StdRng::seed_from_u64(0x3E_04);
    for _ in 0..CASES {
        let (preds, labels, codes) = outcome_data(&mut rng);
        let doubled = |v: &[bool]| -> Vec<bool> { v.iter().chain(v.iter()).copied().collect() };
        let codes2: Vec<u32> = codes.iter().chain(codes.iter()).copied().collect();
        let o1 = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let o2 = Outcomes::from_slices(
            &doubled(&preds),
            Some(&doubled(&labels)),
            &codes2,
            &["a", "b"],
        )
        .unwrap();
        let p1 = demographic_parity(&o1, 0).summary.gap;
        let p2 = demographic_parity(&o2, 0).summary.gap;
        if !p1.is_nan() {
            assert!((p1 - p2).abs() < 1e-12);
        }
        let e1 = equal_opportunity(&o1, 0).unwrap().summary.gap;
        let e2 = equal_opportunity(&o2, 0).unwrap().summary.gap;
        if !e1.is_nan() {
            assert!((e1 - e2).abs() < 1e-12);
        }
    }
}

/// The four-fifths verdict is monotone in the threshold.
#[test]
fn four_fifths_monotone_in_threshold() {
    let mut rng = StdRng::seed_from_u64(0x3E_05);
    for _ in 0..CASES {
        let (preds, _labels, codes) = outcome_data(&mut rng);
        let t1 = rng.gen_range(0.0..1.0);
        let t2 = rng.gen_range(0.0..1.0);
        let o = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let easy = disparate_impact(&o, 0, lo);
        let hard = disparate_impact(&o, 0, hi);
        // passing the harder threshold implies passing the easier one
        if hard.passes {
            assert!(easy.passes);
        }
    }
}

/// Equalized odds' worst gap dominates the equal-opportunity gap.
#[test]
fn odds_dominates_opportunity() {
    let mut rng = StdRng::seed_from_u64(0x3E_06);
    for _ in 0..CASES {
        let (preds, labels, codes) = outcome_data(&mut rng);
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let eo = equal_opportunity(&o, 0).unwrap();
        let odds = equalized_odds(&o, 0).unwrap();
        if !eo.summary.gap.is_nan() && !odds.worst_gap().is_nan() {
            assert!(odds.worst_gap() >= eo.summary.gap - 1e-12);
        }
    }
}

/// Demographic disparity verdict matches the rate definition exactly.
#[test]
fn disparity_matches_rate_rule() {
    let mut rng = StdRng::seed_from_u64(0x3E_07);
    for _ in 0..CASES {
        let (preds, _labels, codes) = outcome_data(&mut rng);
        let o = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let report = demographic_disparity(&o);
        for g in &report.groups {
            assert_eq!(g.fair, g.stat.rate > 0.5);
        }
    }
}

/// GapSummary over a single qualifying group reports zero gap.
#[test]
fn single_group_gap_is_zero() {
    let mut rng = StdRng::seed_from_u64(0x3E_08);
    for _ in 0..CASES {
        let n = rng.gen_range(1..50usize);
        let pos = rng.gen_range(0..50usize).min(n);
        let key = GroupKey(vec!["only".into()]);
        let stat = RateStat {
            group: key,
            n,
            positives: pos,
            rate: pos as f64 / n as f64,
        };
        let s = GapSummary::from_rates(&[stat], 0);
        assert!(s.gap.abs() < 1e-12);
        assert!((s.ratio - 1.0).abs() < 1e-12);
    }
}
