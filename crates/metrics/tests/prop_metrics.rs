//! Property-based tests for the fairness metrics: gap/ratio invariants.

use fairbridge_metrics::disparity::demographic_disparity;
use fairbridge_metrics::odds::equalized_odds;
use fairbridge_metrics::opportunity::equal_opportunity;
use fairbridge_metrics::outcome::{GapSummary, Outcomes, RateStat};
use fairbridge_metrics::parity::{demographic_parity, disparate_impact};
use fairbridge_tabular::GroupKey;
use proptest::prelude::*;

/// Strategy: predictions + labels + binary group codes of equal length.
fn outcome_data() -> impl Strategy<Value = (Vec<bool>, Vec<bool>, Vec<u32>)> {
    proptest::collection::vec((any::<bool>(), any::<bool>(), 0u32..2), 2..80).prop_map(|v| {
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        for (p, l, c) in v {
            preds.push(p);
            labels.push(l);
            codes.push(c);
        }
        (preds, labels, codes)
    })
}

proptest! {
    /// Gap is in [0,1]; ratio in [0,1]; gap 0 iff ratio 1 (when defined).
    #[test]
    fn parity_gap_ratio_bounds((preds, _labels, codes) in outcome_data()) {
        let o = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let r = demographic_parity(&o, 0);
        if !r.summary.gap.is_nan() {
            prop_assert!((0.0..=1.0).contains(&r.summary.gap));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r.summary.ratio));
            if r.summary.gap < 1e-12 {
                prop_assert!((r.summary.ratio - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Relabeling the groups (swapping codes) leaves the gap unchanged.
    #[test]
    fn parity_invariant_under_group_relabel((preds, _labels, codes) in outcome_data()) {
        let swapped: Vec<u32> = codes.iter().map(|&c| 1 - c).collect();
        let o1 = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let o2 = Outcomes::from_slices(&preds, None, &swapped, &["a", "b"]).unwrap();
        let g1 = demographic_parity(&o1, 0).summary.gap;
        let g2 = demographic_parity(&o2, 0).summary.gap;
        if g1.is_nan() {
            prop_assert!(g2.is_nan());
        } else {
            prop_assert!((g1 - g2).abs() < 1e-12);
        }
    }

    /// Flipping every prediction maps selection rate r to 1−r, so the
    /// parity gap is preserved.
    #[test]
    fn parity_invariant_under_outcome_flip((preds, _labels, codes) in outcome_data()) {
        let flipped: Vec<bool> = preds.iter().map(|&p| !p).collect();
        let o1 = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let o2 = Outcomes::from_slices(&flipped, None, &codes, &["a", "b"]).unwrap();
        let g1 = demographic_parity(&o1, 0).summary.gap;
        let g2 = demographic_parity(&o2, 0).summary.gap;
        if !g1.is_nan() && !g2.is_nan() {
            prop_assert!((g1 - g2).abs() < 1e-12);
        }
    }

    /// Duplicating every row leaves all rates, gaps and verdicts intact.
    #[test]
    fn metrics_invariant_under_duplication((preds, labels, codes) in outcome_data()) {
        let doubled = |v: &[bool]| -> Vec<bool> { v.iter().chain(v.iter()).copied().collect() };
        let codes2: Vec<u32> = codes.iter().chain(codes.iter()).copied().collect();
        let o1 = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let o2 = Outcomes::from_slices(
            &doubled(&preds),
            Some(&doubled(&labels)),
            &codes2,
            &["a", "b"],
        )
        .unwrap();
        let p1 = demographic_parity(&o1, 0).summary.gap;
        let p2 = demographic_parity(&o2, 0).summary.gap;
        if !p1.is_nan() {
            prop_assert!((p1 - p2).abs() < 1e-12);
        }
        let e1 = equal_opportunity(&o1, 0).unwrap().summary.gap;
        let e2 = equal_opportunity(&o2, 0).unwrap().summary.gap;
        if !e1.is_nan() {
            prop_assert!((e1 - e2).abs() < 1e-12);
        }
    }

    /// The four-fifths verdict is monotone in the threshold.
    #[test]
    fn four_fifths_monotone_in_threshold((preds, _labels, codes) in outcome_data(),
                                         t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let o = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let easy = disparate_impact(&o, 0, lo);
        let hard = disparate_impact(&o, 0, hi);
        // passing the harder threshold implies passing the easier one
        if hard.passes {
            prop_assert!(easy.passes);
        }
    }

    /// Equalized odds' worst gap dominates the equal-opportunity gap.
    #[test]
    fn odds_dominates_opportunity((preds, labels, codes) in outcome_data()) {
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let eo = equal_opportunity(&o, 0).unwrap();
        let odds = equalized_odds(&o, 0).unwrap();
        if !eo.summary.gap.is_nan() && !odds.worst_gap().is_nan() {
            prop_assert!(odds.worst_gap() >= eo.summary.gap - 1e-12);
        }
    }

    /// Demographic disparity verdict matches the rate definition exactly.
    #[test]
    fn disparity_matches_rate_rule((preds, _labels, codes) in outcome_data()) {
        let o = Outcomes::from_slices(&preds, None, &codes, &["a", "b"]).unwrap();
        let report = demographic_disparity(&o);
        for g in &report.groups {
            prop_assert_eq!(g.fair, g.stat.rate > 0.5);
        }
    }

    /// GapSummary over a single qualifying group reports zero gap.
    #[test]
    fn single_group_gap_is_zero(n in 1usize..50, pos in 0usize..50) {
        let pos = pos.min(n);
        let key = GroupKey(vec!["only".into()]);
        let stat = RateStat {
            group: key,
            n,
            positives: pos,
            rate: pos as f64 / n as f64,
        };
        let s = GapSummary::from_rates(&[stat], 0);
        prop_assert!(s.gap.abs() < 1e-12);
        prop_assert!((s.ratio - 1.0).abs() < 1e-12);
    }
}
