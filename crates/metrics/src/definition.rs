//! The paper's definition taxonomy — Section III catalogue plus the
//! Section IV.A classification into equal treatment vs equal outcome.

use std::fmt;

/// The legal equality notion a fairness definition operationalizes
/// (paper Section IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EqualityNotion {
    /// "All individuals are given the same chances to achieve a favorable
    /// outcome" — formal equality / the merit principle.
    EqualTreatment,
    /// "All protected (sub)groups equally/proportionally obtain the
    /// favorable outcome" — substantive equality, affirmative action.
    EqualOutcome,
    /// "A middle ground between the two concepts" that "if appropriately
    /// applied, could achieve substantive equality" — the paper's verdict
    /// on counterfactual fairness.
    MiddleGround,
}

impl EqualityNotion {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EqualityNotion::EqualTreatment => "equal treatment",
            EqualityNotion::EqualOutcome => "equal outcome",
            EqualityNotion::MiddleGround => "middle ground",
        }
    }
}

impl fmt::Display for EqualityNotion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The fairness definitions of Section III (A–G) plus the §V additions.
/// `Ord` follows declaration (paper-section) order, so definition sets
/// sort and iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Definition {
    /// III.A, Eq. (1).
    DemographicParity,
    /// III.B, Eq. (2).
    ConditionalStatisticalParity,
    /// III.C, Eq. (3).
    EqualOpportunity,
    /// III.D, Eq. (4).
    EqualizedOdds,
    /// III.E, Eq. (5).
    DemographicDisparity,
    /// III.F, Eq. (6).
    ConditionalDemographicDisparity,
    /// III.G.
    CounterfactualFairness,
    /// §V shortlist addition: calibration within groups.
    Calibration,
    /// Extended canon: predictive parity (equal precision).
    PredictiveParity,
    /// Extended canon: accuracy equality (equal error rate overall).
    AccuracyEquality,
}

impl Definition {
    /// All definitions in paper order.
    pub const ALL: [Definition; 10] = [
        Definition::DemographicParity,
        Definition::ConditionalStatisticalParity,
        Definition::EqualOpportunity,
        Definition::EqualizedOdds,
        Definition::DemographicDisparity,
        Definition::ConditionalDemographicDisparity,
        Definition::CounterfactualFairness,
        Definition::Calibration,
        Definition::PredictiveParity,
        Definition::AccuracyEquality,
    ];

    /// The seven definitions presented in Section III.
    pub const PAPER_SECTION_III: [Definition; 7] = [
        Definition::DemographicParity,
        Definition::ConditionalStatisticalParity,
        Definition::EqualOpportunity,
        Definition::EqualizedOdds,
        Definition::DemographicDisparity,
        Definition::ConditionalDemographicDisparity,
        Definition::CounterfactualFairness,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Definition::DemographicParity => "demographic parity",
            Definition::ConditionalStatisticalParity => "conditional statistical parity",
            Definition::EqualOpportunity => "equal opportunity",
            Definition::EqualizedOdds => "equalized odds",
            Definition::DemographicDisparity => "demographic disparity",
            Definition::ConditionalDemographicDisparity => "conditional demographic disparity",
            Definition::CounterfactualFairness => "counterfactual fairness",
            Definition::Calibration => "calibration within groups",
            Definition::PredictiveParity => "predictive parity",
            Definition::AccuracyEquality => "accuracy equality",
        }
    }

    /// The paper section presenting the definition (where applicable).
    pub fn paper_section(self) -> Option<&'static str> {
        match self {
            Definition::DemographicParity => Some("III.A"),
            Definition::ConditionalStatisticalParity => Some("III.B"),
            Definition::EqualOpportunity => Some("III.C"),
            Definition::EqualizedOdds => Some("III.D"),
            Definition::DemographicDisparity => Some("III.E"),
            Definition::ConditionalDemographicDisparity => Some("III.F"),
            Definition::CounterfactualFairness => Some("III.G"),
            Definition::Calibration
            | Definition::PredictiveParity
            | Definition::AccuracyEquality => None,
        }
    }

    /// The Section IV.A classification: "definitions A, B, E and F align
    /// with equal outcome, while C and D with equal treatment. Definition
    /// G comprises a middle ground."
    pub fn equality_notion(self) -> EqualityNotion {
        match self {
            Definition::DemographicParity
            | Definition::ConditionalStatisticalParity
            | Definition::DemographicDisparity
            | Definition::ConditionalDemographicDisparity => EqualityNotion::EqualOutcome,
            Definition::EqualOpportunity
            | Definition::EqualizedOdds
            | Definition::Calibration
            | Definition::PredictiveParity
            | Definition::AccuracyEquality => EqualityNotion::EqualTreatment,
            Definition::CounterfactualFairness => EqualityNotion::MiddleGround,
        }
    }

    /// Whether the definition needs ground-truth labels `Y`.
    pub fn requires_labels(self) -> bool {
        matches!(
            self,
            Definition::EqualOpportunity
                | Definition::EqualizedOdds
                | Definition::Calibration
                | Definition::PredictiveParity
                | Definition::AccuracyEquality
        )
    }

    /// Whether the definition needs a queryable model (not just recorded
    /// decisions).
    pub fn requires_model(self) -> bool {
        matches!(self, Definition::CounterfactualFairness)
    }

    /// Whether the definition conditions on legitimate factors `S`.
    pub fn conditions_on_strata(self) -> bool {
        matches!(
            self,
            Definition::ConditionalStatisticalParity | Definition::ConditionalDemographicDisparity
        )
    }

    /// The formula as stated in the paper (ASCII rendering).
    pub fn formula(self) -> &'static str {
        match self {
            Definition::DemographicParity => "Pr(R=+|A=a) = Pr(R=+|A=b)",
            Definition::ConditionalStatisticalParity => "Pr(R=+|S=s,A=a) = Pr(R=+|S=s,A=b)",
            Definition::EqualOpportunity => "Pr(R=+|Y=+,A=a) = Pr(R=+|Y=+,A=b)",
            Definition::EqualizedOdds => "Pr(R=+|Y=y,A=a) = Pr(R=+|Y=y,A=b), y in {+,-}",
            Definition::DemographicDisparity => "Pr(R=+|A=a) > Pr(R=-|A=a)",
            Definition::ConditionalDemographicDisparity => "Pr(R=+|S=s,A=a) >= Pr(R=-|S=s,A=a)",
            Definition::CounterfactualFairness => {
                "R(x) unchanged under do(A=a') with downstream adjustment"
            }
            Definition::Calibration => "Pr(Y=+|score=s,A=a) = s for all groups",
            Definition::PredictiveParity => "Pr(Y=+|R=+,A=a) = Pr(Y=+|R=+,A=b)",
            Definition::AccuracyEquality => "Pr(R=Y|A=a) = Pr(R=Y|A=b)",
        }
    }
}

impl fmt::Display for Definition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_iv_a_classification() {
        // "definitions A, B, E and F align with equal outcome, while C and
        // D with equal treatment. Definition G comprises a middle ground."
        use Definition::*;
        use EqualityNotion::*;
        assert_eq!(DemographicParity.equality_notion(), EqualOutcome); // A
        assert_eq!(ConditionalStatisticalParity.equality_notion(), EqualOutcome); // B
        assert_eq!(EqualOpportunity.equality_notion(), EqualTreatment); // C
        assert_eq!(EqualizedOdds.equality_notion(), EqualTreatment); // D
        assert_eq!(DemographicDisparity.equality_notion(), EqualOutcome); // E
        assert_eq!(
            ConditionalDemographicDisparity.equality_notion(),
            EqualOutcome
        ); // F
        assert_eq!(CounterfactualFairness.equality_notion(), MiddleGround); // G
    }

    #[test]
    fn section_iii_sections_are_ordered() {
        let sections: Vec<&str> = Definition::PAPER_SECTION_III
            .iter()
            .map(|d| d.paper_section().unwrap())
            .collect();
        assert_eq!(
            sections,
            vec!["III.A", "III.B", "III.C", "III.D", "III.E", "III.F", "III.G"]
        );
    }

    #[test]
    fn requirements_match_formulas() {
        assert!(!Definition::DemographicParity.requires_labels());
        assert!(Definition::EqualOpportunity.requires_labels());
        assert!(Definition::EqualizedOdds.requires_labels());
        assert!(Definition::CounterfactualFairness.requires_model());
        assert!(!Definition::DemographicParity.requires_model());
        assert!(Definition::ConditionalStatisticalParity.conditions_on_strata());
        assert!(Definition::ConditionalDemographicDisparity.conditions_on_strata());
        assert!(!Definition::EqualizedOdds.conditions_on_strata());
    }

    #[test]
    fn names_and_formulas_nonempty() {
        for d in Definition::ALL {
            assert!(!d.name().is_empty());
            assert!(!d.formula().is_empty());
            assert_eq!(d.to_string(), d.name());
        }
        assert_eq!(EqualityNotion::EqualOutcome.to_string(), "equal outcome");
    }
}
