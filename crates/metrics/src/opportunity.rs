//! Equal opportunity — paper Section III.C, Eq. (3):
//!
//! > Pr(R = + | Y = +, A = a) = Pr(R = + | Y = +, A = b)  ∀ a, b ∈ A
//!
//! The positive outcome must be independent of the protected class among
//! *actual positives*: equal true-positive rates per group. Unlike
//! demographic parity this definition consults the ground truth `Y`.

use crate::outcome::{GapSummary, Outcomes, RateStat};

/// The equal-opportunity report: per-group TPR plus gap summary.
#[derive(Debug, Clone, PartialEq)]
pub struct OpportunityReport {
    /// Pr(R = + | Y = +, A = a) per group.
    pub tpr: Vec<RateStat>,
    /// Gap/ratio summary over qualifying groups.
    pub summary: GapSummary,
}

impl OpportunityReport {
    /// Whether TPRs agree within `tolerance`.
    pub fn is_fair(&self, tolerance: f64) -> bool {
        !self.summary.gap.is_nan() && self.summary.gap <= tolerance
    }
}

/// Computes equal opportunity (Eq. 3).
///
/// `min_group_size` is the minimum number of *actual positives* a group
/// needs for its TPR to enter the summary.
pub fn equal_opportunity(
    outcomes: &Outcomes,
    min_group_size: usize,
) -> Result<OpportunityReport, String> {
    let labels = outcomes.require_labels("equal opportunity")?.to_vec();
    let preds = &outcomes.predictions;
    let tpr: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_conditioned_rows(key, rows, |i| labels[i], |i| preds[i]))
        .collect();
    let summary = GapSummary::from_rates(&tpr, min_group_size);
    Ok(OpportunityReport { tpr, summary })
}

/// False-negative-rate balance, the complement view of equal opportunity:
/// Pr(R = − | Y = +, A = a) per group. Gaps are identical to the TPR gaps.
pub fn fnr_balance(
    outcomes: &Outcomes,
    min_group_size: usize,
) -> Result<OpportunityReport, String> {
    let labels = outcomes.require_labels("FNR balance")?.to_vec();
    let preds = &outcomes.predictions;
    let fnr: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_conditioned_rows(key, rows, |i| labels[i], |i| !preds[i]))
        .collect();
    let summary = GapSummary::from_rates(&fnr, min_group_size);
    Ok(OpportunityReport { tpr: fnr, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's III.C example: 20 males (10 good matches, 5 of them
    /// hired), 10 females (6 good matches, k hired among the good ones).
    fn paper_example(good_females_hired: usize) -> Outcomes {
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        // 10 good-match males, 5 hired
        for i in 0..10 {
            preds.push(i < 5);
            labels.push(true);
            codes.push(0);
        }
        // 10 bad-match males, none hired
        for _ in 0..10 {
            preds.push(false);
            labels.push(false);
            codes.push(0);
        }
        // 6 good-match females, k hired
        for i in 0..6 {
            preds.push(i < good_females_hired);
            labels.push(true);
            codes.push(1);
        }
        // 4 bad-match females
        for _ in 0..4 {
            preds.push(false);
            labels.push(false);
            codes.push(1);
        }
        Outcomes::from_slices(&preds, Some(&labels), &codes, &["male", "female"]).unwrap()
    }

    #[test]
    fn paper_iii_c_exact_numbers() {
        // "If 5 males that are good matches get the outcome hire, then we
        // have a 50% probability of males being hired conditioned they are
        // good matches ... 3 females should be hired conditioned that they
        // are good matches."
        let report = equal_opportunity(&paper_example(3), 0).unwrap();
        for r in &report.tpr {
            assert!((r.rate - 0.5).abs() < 1e-12);
        }
        assert!(report.is_fair(1e-9));
        // female group conditions on its 6 good matches
        let female = report
            .tpr
            .iter()
            .find(|r| r.group.levels()[0] == "female")
            .unwrap();
        assert_eq!(female.n, 6);
        assert_eq!(female.positives, 3);
    }

    #[test]
    fn fewer_than_three_is_biased_against_females() {
        let report = equal_opportunity(&paper_example(1), 0).unwrap();
        assert!(!report.is_fair(0.05));
        assert_eq!(
            report.summary.min_group.as_ref().unwrap().levels()[0],
            "female"
        );
        assert!((report.summary.gap - (0.5 - 1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn more_than_three_is_biased_against_males() {
        let report = equal_opportunity(&paper_example(6), 0).unwrap();
        assert!(!report.is_fair(0.05));
        assert_eq!(
            report.summary.min_group.as_ref().unwrap().levels()[0],
            "male"
        );
    }

    #[test]
    fn requires_labels() {
        let o = Outcomes::from_slices(&[true], None, &[0], &["a"]).unwrap();
        assert!(equal_opportunity(&o, 0).is_err());
    }

    #[test]
    fn fnr_complements_tpr() {
        let o = paper_example(2);
        let tpr = equal_opportunity(&o, 0).unwrap();
        let fnr = fnr_balance(&o, 0).unwrap();
        for (t, f) in tpr.tpr.iter().zip(&fnr.tpr) {
            assert!((t.rate + f.rate - 1.0).abs() < 1e-12);
        }
        assert!((tpr.summary.gap - fnr.summary.gap).abs() < 1e-12);
    }

    #[test]
    fn group_without_positives_is_skipped() {
        // group b has no actual positives → NaN TPR, excluded
        let preds = vec![true, false, false];
        let labels = vec![true, true, false];
        let codes = vec![0, 0, 1];
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let report = equal_opportunity(&o, 0).unwrap();
        let b = report
            .tpr
            .iter()
            .find(|r| r.group.levels()[0] == "b")
            .unwrap();
        assert!(b.rate.is_nan());
        assert!((report.summary.gap - 0.0).abs() < 1e-12); // only group a qualifies
    }
}
