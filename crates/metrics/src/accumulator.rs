//! Mergeable per-group sufficient statistics.
//!
//! Every Section III group definition is a ratio of *integer counts*
//! within each protected group: selection rates (n⁺/n), true/false
//! positive rates, precision, accuracy. [`GroupAccumulator`] carries
//! exactly those counts — plus score sums for calibration-style
//! monitoring — and supports an associative [`GroupAccumulator::merge`],
//! so a dataset can be scanned in independent shards (or consumed as a
//! stream) and finalized once.
//!
//! Finalization via [`from_accumulator`] reproduces
//! [`FairnessReport::evaluate`] **bitwise-identically**: the counts are
//! integers (addition order cannot change them), the per-group rate is
//! the same single `positives / n` division, and groups are visited in
//! the same sorted-key order the sequential path uses.

use crate::definition::Definition;
use crate::outcome::{GapSummary, Outcomes, RateStat};
use crate::report::{FairnessReport, MetricLine};
use fairbridge_tabular::GroupKey;

/// Sufficient statistics for one protected group.
///
/// With labels present the full confusion matrix is recoverable:
/// `fn = label_pos − tp`, `tn = (n − label_pos) − fp`,
/// `correct = tp + tn`. Without labels only `n` and `pred_pos` are
/// maintained.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupCounts {
    /// Rows observed in the group.
    pub n: u64,
    /// Rows with a positive decision (R = +).
    pub pred_pos: u64,
    /// Rows with a positive label (Y = +); 0 when labels are absent.
    pub label_pos: u64,
    /// True positives (R = + ∧ Y = +).
    pub tp: u64,
    /// False positives (R = + ∧ Y = −).
    pub fp: u64,
    /// Sum of scores observed in the group (0 when unscored).
    pub score_sum: f64,
    /// Sum of squared scores observed in the group.
    pub score_sum_sq: f64,
}

impl GroupCounts {
    /// Adds another group's counts into this one.
    pub fn merge(&mut self, other: &GroupCounts) {
        self.n += other.n;
        self.pred_pos += other.pred_pos;
        self.label_pos += other.label_pos;
        self.tp += other.tp;
        self.fp += other.fp;
        self.score_sum += other.score_sum;
        self.score_sum_sq += other.score_sum_sq;
    }

    /// False negatives (requires labels).
    pub fn fn_(&self) -> u64 {
        self.label_pos - self.tp
    }

    /// True negatives (requires labels).
    pub fn tn(&self) -> u64 {
        (self.n - self.label_pos) - self.fp
    }

    /// Correct decisions `R = Y` (requires labels).
    pub fn correct(&self) -> u64 {
        self.tp + self.tn()
    }

    /// Mean observed score, NaN when no rows.
    pub fn score_mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.score_sum / self.n as f64
        }
    }
}

/// A set of per-group [`GroupCounts`] under fixed, sorted group keys.
///
/// The key list is fixed at construction so that two accumulators built
/// over different shards of the same partition are structurally
/// compatible: [`GroupAccumulator::merge`] is then a per-group integer
/// addition — associative and commutative-in-effect.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAccumulator {
    keys: Vec<GroupKey>,
    counts: Vec<GroupCounts>,
    has_labels: bool,
}

impl GroupAccumulator {
    /// Creates an empty accumulator over `keys` (must be sorted and
    /// unique — the order [`GroupIndex`](fairbridge_tabular::GroupIndex)
    /// iterates in, which is what makes finalization order-identical to
    /// the sequential path).
    pub fn with_keys(keys: Vec<GroupKey>, has_labels: bool) -> Result<GroupAccumulator, String> {
        if keys.is_empty() {
            return Err("accumulator needs at least one group key".to_owned());
        }
        if keys.windows(2).any(|w| matches!(w, [a, b] if a >= b)) {
            return Err("group keys must be sorted and unique".to_owned());
        }
        let counts = vec![GroupCounts::default(); keys.len()];
        Ok(GroupAccumulator {
            keys,
            counts,
            has_labels,
        })
    }

    /// Builds an accumulator by a single sequential pass over an outcome
    /// view — the reference the sharded path must reproduce.
    pub fn from_outcomes(outcomes: &Outcomes) -> GroupAccumulator {
        let keys: Vec<GroupKey> = outcomes.groups.keys().into_iter().cloned().collect();
        let has_labels = outcomes.labels.is_some();
        // GroupIndex keys are sorted and unique by construction; an
        // empty index degrades to an accumulator with no groups.
        let counts = vec![GroupCounts::default(); keys.len()];
        let mut acc = GroupAccumulator {
            keys,
            counts,
            has_labels,
        };
        for (gid, (_, rows)) in outcomes.iter_groups().enumerate() {
            for &i in rows {
                let label = outcomes.labels.as_ref().map(|l| l[i]);
                acc.observe(gid, outcomes.predictions[i], label);
            }
        }
        acc
    }

    /// The group keys, in sorted order.
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// The per-group counts, in key order.
    pub fn counts(&self) -> &[GroupCounts] {
        &self.counts
    }

    /// Whether labeled statistics (confusion counts) are maintained.
    pub fn has_labels(&self) -> bool {
        self.has_labels
    }

    /// Total rows observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.n).sum()
    }

    /// Records one decision for group index `group` (position in
    /// [`GroupAccumulator::keys`]). `label` must be `Some` exactly when
    /// the accumulator was created with labels.
    ///
    /// # Panics
    /// Panics if `group` is out of range or the label presence does not
    /// match the accumulator's mode.
    pub fn observe(&mut self, group: usize, prediction: bool, label: Option<bool>) {
        assert_eq!(
            label.is_some(),
            self.has_labels,
            "label presence must match accumulator mode"
        );
        let c = &mut self.counts[group];
        c.n += 1;
        c.pred_pos += u64::from(prediction);
        if let Some(y) = label {
            c.label_pos += u64::from(y);
            c.tp += u64::from(prediction && y);
            c.fp += u64::from(prediction && !y);
        }
    }

    /// Records one scored decision (adds to the score sums as well).
    pub fn observe_scored(
        &mut self,
        group: usize,
        prediction: bool,
        label: Option<bool>,
        score: f64,
    ) {
        self.observe(group, prediction, label);
        let c = &mut self.counts[group];
        c.score_sum += score;
        c.score_sum_sq += score * score;
    }

    /// Merges another accumulator (built over the same keys and mode)
    /// into this one. Integer counts make this associative; calling it in
    /// a fixed shard order additionally makes the floating-point score
    /// sums deterministic.
    pub fn merge(&mut self, other: &GroupAccumulator) -> Result<(), String> {
        if self.keys != other.keys {
            return Err("cannot merge accumulators over different group keys".to_owned());
        }
        if self.has_labels != other.has_labels {
            return Err("cannot merge labeled with unlabeled accumulators".to_owned());
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            c.merge(o);
        }
        Ok(())
    }

    fn rates<N, P>(&self, denom: N, numer: P) -> Vec<RateStat>
    where
        N: Fn(&GroupCounts) -> u64,
        P: Fn(&GroupCounts) -> u64,
    {
        self.keys
            .iter()
            .zip(&self.counts)
            .map(|(key, c)| {
                let n = denom(c) as usize;
                let positives = numer(c) as usize;
                RateStat {
                    group: key.clone(),
                    n,
                    positives,
                    rate: if n == 0 {
                        f64::NAN
                    } else {
                        positives as f64 / n as f64
                    },
                }
            })
            .collect()
    }

    /// Per-group selection rates `P(R = + | A = a)` (demographic parity).
    pub fn selection_rates(&self) -> Vec<RateStat> {
        self.rates(|c| c.n, |c| c.pred_pos)
    }

    /// Per-group true-positive rates `P(R = + | Y = +, A = a)`.
    pub fn tpr_rates(&self) -> Result<Vec<RateStat>, String> {
        self.require_labels("TPR")?;
        Ok(self.rates(|c| c.label_pos, |c| c.tp))
    }

    /// Per-group false-positive rates `P(R = + | Y = −, A = a)`.
    pub fn fpr_rates(&self) -> Result<Vec<RateStat>, String> {
        self.require_labels("FPR")?;
        Ok(self.rates(|c| c.n - c.label_pos, |c| c.fp))
    }

    /// Per-group precision `P(Y = + | R = +, A = a)` (predictive parity).
    pub fn ppv_rates(&self) -> Result<Vec<RateStat>, String> {
        self.require_labels("predictive parity")?;
        Ok(self.rates(|c| c.pred_pos, |c| c.tp))
    }

    /// Per-group accuracy `P(R = Y | A = a)`.
    pub fn accuracy_rates(&self) -> Result<Vec<RateStat>, String> {
        self.require_labels("accuracy equality")?;
        Ok(self.rates(|c| c.n, |c| c.correct()))
    }

    fn require_labels(&self, what: &str) -> Result<(), String> {
        if self.has_labels {
            Ok(())
        } else {
            Err(format!("{what} requires ground-truth labels (Y)"))
        }
    }
}

/// Finalizes an accumulator into the same [`FairnessReport`] that
/// [`FairnessReport::evaluate`] produces over the equivalent
/// [`Outcomes`] view — bitwise-identical, line for line.
pub fn from_accumulator(
    acc: &GroupAccumulator,
    tolerance: f64,
    min_group_size: usize,
) -> FairnessReport {
    let mut lines = Vec::new();

    let selection = acc.selection_rates();
    let dp_summary = GapSummary::from_rates(&selection, min_group_size);
    lines.push(MetricLine {
        definition: Definition::DemographicParity,
        gap: dp_summary.gap,
        fair: Some(!dp_summary.gap.is_nan() && dp_summary.gap <= tolerance),
        detail: dp_summary
            .min_group
            .as_ref()
            .map(|g| format!("least favored: {g}"))
            .unwrap_or_default(),
    });

    // Demographic disparity (Eq. 5): strict `rate > 0.5` per group; an
    // undefined (NaN) rate counts as unfair, exactly like the direct path.
    let n_unfair = selection
        .iter()
        .filter(|r| r.rate.partial_cmp(&0.5) != Some(std::cmp::Ordering::Greater))
        .count();
    lines.push(MetricLine {
        definition: Definition::DemographicDisparity,
        gap: n_unfair as f64,
        fair: Some(n_unfair == 0),
        detail: if n_unfair > 0 {
            format!("{n_unfair} group(s) receive more rejections than acceptances")
        } else {
            String::new()
        },
    });

    if let (Ok(tpr), Ok(fpr), Ok(ppv), Ok(accuracy)) = (
        acc.tpr_rates(),
        acc.fpr_rates(),
        acc.ppv_rates(),
        acc.accuracy_rates(),
    ) {
        let eo_summary = GapSummary::from_rates(&tpr, min_group_size);
        lines.push(MetricLine {
            definition: Definition::EqualOpportunity,
            gap: eo_summary.gap,
            fair: Some(!eo_summary.gap.is_nan() && eo_summary.gap <= tolerance),
            detail: eo_summary
                .min_group
                .as_ref()
                .map(|g| format!("lowest TPR: {g}"))
                .unwrap_or_default(),
        });

        let fpr_summary = GapSummary::from_rates(&fpr, min_group_size);
        let worst_gap = match (eo_summary.gap.is_nan(), fpr_summary.gap.is_nan()) {
            (true, true) => f64::NAN,
            (true, false) => fpr_summary.gap,
            (false, true) => eo_summary.gap,
            (false, false) => eo_summary.gap.max(fpr_summary.gap),
        };
        lines.push(MetricLine {
            definition: Definition::EqualizedOdds,
            gap: worst_gap,
            fair: Some(!worst_gap.is_nan() && worst_gap <= tolerance),
            detail: format!(
                "TPR gap {:.3}, FPR gap {:.3}",
                eo_summary.gap, fpr_summary.gap
            ),
        });

        let pp_summary = GapSummary::from_rates(&ppv, min_group_size);
        lines.push(MetricLine {
            definition: Definition::PredictiveParity,
            gap: pp_summary.gap,
            fair: Some(!pp_summary.gap.is_nan() && pp_summary.gap <= tolerance),
            detail: String::new(),
        });

        let ae_summary = GapSummary::from_rates(&accuracy, min_group_size);
        lines.push(MetricLine {
            definition: Definition::AccuracyEquality,
            gap: ae_summary.gap,
            fair: Some(!ae_summary.gap.is_nan() && ae_summary.gap <= tolerance),
            detail: String::new(),
        });
    }

    let ratio = dp_summary.ratio;
    FairnessReport {
        lines,
        tolerance,
        impact_ratio: ratio,
        four_fifths_passes: !ratio.is_nan() && ratio >= 0.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> GroupKey {
        GroupKey(vec![s.to_owned()])
    }

    fn sample_outcomes(with_labels: bool) -> Outcomes {
        // group a: 8/10 selected; group b: 2/10 selected
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        for i in 0..10 {
            preds.push(i < 8);
            labels.push(i < 5);
            codes.push(0);
        }
        for i in 0..10 {
            preds.push(i < 2);
            labels.push(i < 5);
            codes.push(1);
        }
        Outcomes::from_slices(
            &preds,
            with_labels.then_some(labels.as_slice()),
            &codes,
            &["a", "b"],
        )
        .unwrap()
    }

    #[test]
    fn with_keys_requires_sorted_unique() {
        assert!(GroupAccumulator::with_keys(vec![key("a"), key("b")], false).is_ok());
        assert!(GroupAccumulator::with_keys(vec![key("b"), key("a")], false).is_err());
        assert!(GroupAccumulator::with_keys(vec![key("a"), key("a")], false).is_err());
        assert!(GroupAccumulator::with_keys(vec![], false).is_err());
    }

    #[test]
    fn counts_match_sequential_pass() {
        let o = sample_outcomes(true);
        let acc = GroupAccumulator::from_outcomes(&o);
        assert_eq!(acc.total(), 20);
        let a = &acc.counts()[0];
        assert_eq!((a.n, a.pred_pos, a.label_pos, a.tp, a.fp), (10, 8, 5, 5, 3));
        assert_eq!((a.fn_(), a.tn(), a.correct()), (0, 2, 7));
        let b = &acc.counts()[1];
        assert_eq!((b.n, b.pred_pos, b.tp, b.fp), (10, 2, 2, 0));
    }

    #[test]
    fn report_is_bitwise_identical_to_direct_evaluation() {
        for with_labels in [false, true] {
            let o = sample_outcomes(with_labels);
            let direct = FairnessReport::evaluate(&o, 0.05, 0);
            let acc = GroupAccumulator::from_outcomes(&o);
            let via_acc = from_accumulator(&acc, 0.05, 0);
            assert_eq!(direct, via_acc);
            // bit-level equality of every gap, not just PartialEq
            for (d, a) in direct.lines.iter().zip(&via_acc.lines) {
                assert_eq!(d.gap.to_bits(), a.gap.to_bits());
            }
            assert_eq!(
                direct.impact_ratio.to_bits(),
                via_acc.impact_ratio.to_bits()
            );
        }
    }

    #[test]
    fn merge_of_split_equals_whole() {
        let o = sample_outcomes(true);
        let keys: Vec<GroupKey> = o.groups.keys().into_iter().cloned().collect();
        let row_group = |i: usize| usize::from(i >= 10); // codes above
        let labels = o.labels.clone().unwrap();

        let whole = GroupAccumulator::from_outcomes(&o);
        // split at every possible point; merge must always reproduce `whole`
        for split in 0..=o.n() {
            let mut left = GroupAccumulator::with_keys(keys.clone(), true).unwrap();
            let mut right = GroupAccumulator::with_keys(keys.clone(), true).unwrap();
            for (i, (&p, &l)) in o.predictions.iter().zip(&labels).enumerate() {
                let target = if i < split { &mut left } else { &mut right };
                target.observe(row_group(i), p, Some(l));
            }
            let mut merged = left.clone();
            merged.merge(&right).unwrap();
            assert_eq!(merged, whole, "split at {split}");
            // commutative in effect
            let mut flipped = right.clone();
            flipped.merge(&left).unwrap();
            assert_eq!(flipped, whole);
        }
    }

    #[test]
    fn merge_rejects_mismatched_shapes() {
        let mut a = GroupAccumulator::with_keys(vec![key("a")], false).unwrap();
        let b = GroupAccumulator::with_keys(vec![key("b")], false).unwrap();
        assert!(a.merge(&b).is_err());
        let c = GroupAccumulator::with_keys(vec![key("a")], true).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn scored_observations_accumulate_sums() {
        let mut acc = GroupAccumulator::with_keys(vec![key("a")], false).unwrap();
        acc.observe_scored(0, true, None, 0.5);
        acc.observe_scored(0, false, None, 0.25);
        let c = &acc.counts()[0];
        assert!((c.score_sum - 0.75).abs() < 1e-12);
        assert!((c.score_sum_sq - 0.3125).abs() < 1e-12);
        assert!((c.score_mean() - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "label presence")]
    fn observe_enforces_label_mode() {
        let mut acc = GroupAccumulator::with_keys(vec![key("a")], true).unwrap();
        acc.observe(0, true, None);
    }
}
