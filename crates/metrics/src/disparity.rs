//! Demographic disparity and its conditional refinement — paper
//! Sections III.E and III.F, Eq. (5) and (6).
//!
//! Eq. (5): Pr(R = + | A = a) > Pr(R = − | A = a) ∀ a ∈ A — each
//! protected group independently must receive more acceptances than
//! rejections.
//!
//! Eq. (6): Pr(R = + | S = s, A = a) ≥ Pr(R = − | S = s, A = a)
//! ∀ a ∈ A, ∀ s ∈ S — the same check within each stratum of a legitimate
//! factor (the paper's five-jobs example).

use crate::outcome::{Outcomes, RateStat};
use fairbridge_tabular::{Dataset, GroupIndex, GroupKey, GroupSpec};

/// Verdict for one group under demographic disparity.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDisparity {
    /// Selection-rate statistic for the group.
    pub stat: RateStat,
    /// Whether Pr(R=+|a) > Pr(R=−|a), i.e. rate > 0.5. Strict by Eq. (5).
    pub fair: bool,
}

/// The demographic-disparity report (Eq. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct DisparityReport {
    /// Per-group verdicts.
    pub groups: Vec<GroupDisparity>,
}

impl DisparityReport {
    /// Whether every group receives more acceptances than rejections.
    pub fn is_fair(&self) -> bool {
        self.groups.iter().all(|g| g.fair)
    }

    /// Groups failing the check.
    pub fn unfair_groups(&self) -> Vec<&GroupKey> {
        self.groups
            .iter()
            .filter(|g| !g.fair)
            .map(|g| &g.stat.group)
            .collect()
    }
}

/// Computes demographic disparity (Eq. 5): strict `>` as in the paper.
pub fn demographic_disparity(outcomes: &Outcomes) -> DisparityReport {
    let preds = &outcomes.predictions;
    let groups = outcomes
        .iter_groups()
        .map(|(key, rows)| {
            let stat = RateStat::over_rows(key, rows, |i| preds[i]);
            GroupDisparity {
                fair: stat.rate > 0.5,
                stat,
            }
        })
        .collect();
    DisparityReport { groups }
}

/// One stratum's verdicts under conditional demographic disparity.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalDisparityStratum {
    /// The stratum key.
    pub stratum: GroupKey,
    /// Per-group verdicts within the stratum. Eq. (6) uses `≥`.
    pub groups: Vec<GroupDisparity>,
}

/// The conditional-demographic-disparity report (Eq. 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalDisparityReport {
    /// Per-stratum verdicts.
    pub strata: Vec<ConditionalDisparityStratum>,
}

impl ConditionalDisparityReport {
    /// Strata in which some group fails the check.
    pub fn unfair_strata(&self) -> Vec<&GroupKey> {
        self.strata
            .iter()
            .filter(|s| s.groups.iter().any(|g| !g.fair))
            .map(|s| &s.stratum)
            .collect()
    }

    /// Whether the check passes in every stratum.
    pub fn is_fair(&self) -> bool {
        self.unfair_strata().is_empty()
    }
}

/// Computes conditional demographic disparity (Eq. 6) over dataset
/// decisions, conditioning on the named stratum columns. Uses `≥` as the
/// paper's Eq. (6) states (note the deliberate difference from Eq. (5)'s
/// strict `>`).
pub fn conditional_demographic_disparity(
    ds: &Dataset,
    protected: &[&str],
    strata_cols: &[&str],
    use_labels_as_decisions: bool,
) -> Result<ConditionalDisparityReport, String> {
    if strata_cols.is_empty() {
        return Err("conditional disparity requires at least one stratum column".to_owned());
    }
    let decisions: Vec<bool> = if use_labels_as_decisions {
        ds.labels().map_err(|e| e.to_string())?.to_vec()
    } else {
        ds.predictions().map_err(|e| e.to_string())?.to_vec()
    };
    let strata_index = GroupIndex::build(ds, &GroupSpec::intersection(strata_cols.to_vec()))
        .map_err(|e| e.to_string())?;
    let group_index = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
        .map_err(|e| e.to_string())?;
    let group_keys: Vec<&GroupKey> = group_index.keys();
    let mut row_group = vec![usize::MAX; ds.n_rows()];
    for (gi, (_, rows)) in group_index.iter().enumerate() {
        for &r in rows {
            row_group[r] = gi;
        }
    }

    let mut strata = Vec::new();
    for (stratum_key, stratum_rows) in strata_index.iter() {
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); group_keys.len()];
        for &r in stratum_rows {
            buckets[row_group[r]].push(r);
        }
        let groups = group_keys
            .iter()
            .zip(&buckets)
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(key, rows)| {
                let stat = RateStat::over_rows(key, rows, |i| decisions[i]);
                GroupDisparity {
                    fair: stat.rate >= 0.5,
                    stat,
                }
            })
            .collect();
        strata.push(ConditionalDisparityStratum {
            stratum: stratum_key.clone(),
            groups,
        });
    }
    Ok(ConditionalDisparityReport { strata })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    #[test]
    fn paper_iii_e_example() {
        // "Suppose that we have 10 female applicants. The model is fair
        // towards females if it gives the outcome hire to more females
        // than it gives the outcome not-hire ... if more than 5 females
        // are rejected, then the model is unfair towards females."
        let make = |hired: usize| {
            let preds: Vec<bool> = (0..10).map(|i| i < hired).collect();
            let codes = vec![0u32; 10];
            Outcomes::from_slices(&preds, None, &codes, &["female"]).unwrap()
        };
        assert!(demographic_disparity(&make(6)).is_fair());
        // exactly 5/5 fails the strict inequality of Eq. (5)
        assert!(!demographic_disparity(&make(5)).is_fair());
        assert!(!demographic_disparity(&make(4)).is_fair());
        let report = demographic_disparity(&make(3));
        assert_eq!(report.unfair_groups().len(), 1);
    }

    /// The paper's III.F example: 100 females across 5 jobs; 40 hired
    /// overall; all accepted in the first 4 jobs (10 each), all rejected
    /// in the fifth (60 applicants).
    fn paper_iii_f_dataset() -> Dataset {
        let mut sex = Vec::new();
        let mut job = Vec::new();
        let mut hired = Vec::new();
        for j in 0..4u32 {
            for _ in 0..10 {
                sex.push(0u32);
                job.push(j);
                hired.push(true);
            }
        }
        for _ in 0..60 {
            sex.push(0);
            job.push(4);
            hired.push(false);
        }
        Dataset::builder()
            .categorical_with_role("sex", vec!["female"], sex, Role::Protected)
            .categorical_with_role(
                "job",
                vec!["job1", "job2", "job3", "job4", "job5"],
                job,
                Role::Feature,
            )
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_iii_f_conditioning_flips_verdict() {
        let ds = paper_iii_f_dataset();
        // Marginal demographic disparity: 40 hired < 60 rejected → unfair.
        let o = Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
        assert!(!demographic_disparity(&o).is_fair());

        // Conditional: fair for jobs 1–4, unfair only for job 5.
        let report = conditional_demographic_disparity(&ds, &["sex"], &["job"], true).unwrap();
        let unfair: Vec<String> = report
            .unfair_strata()
            .iter()
            .map(|k| k.levels()[0].clone())
            .collect();
        assert_eq!(unfair, vec!["job5".to_owned()]);
        assert!(!report.is_fair());
        assert_eq!(report.strata.len(), 5);
    }

    #[test]
    fn eq6_uses_weak_inequality() {
        // Exactly 50/50 within a stratum passes Eq. (6) (≥) though it
        // would fail Eq. (5) (>).
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["female"], vec![0, 0], Role::Protected)
            .categorical_strs("job", &["j", "j"])
            .boolean_with_role("hired", vec![true, false], Role::Label)
            .build()
            .unwrap();
        let cond = conditional_demographic_disparity(&ds, &["sex"], &["job"], true).unwrap();
        assert!(cond.is_fair());
        let o = Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
        assert!(!demographic_disparity(&o).is_fair());
    }

    #[test]
    fn empty_stratum_groups_are_skipped() {
        // Group "b" never appears in stratum "j2" — no verdict for it.
        let ds = Dataset::builder()
            .categorical_with_role("g", vec!["a", "b"], vec![0, 0, 1], Role::Protected)
            .categorical_with_role("s", vec!["j1", "j2"], vec![0, 1, 0], Role::Feature)
            .boolean_with_role("y", vec![true, true, true], Role::Label)
            .build()
            .unwrap();
        let report = conditional_demographic_disparity(&ds, &["g"], &["s"], true).unwrap();
        let j2 = report
            .strata
            .iter()
            .find(|s| s.stratum.levels()[0] == "j2")
            .unwrap();
        assert_eq!(j2.groups.len(), 1);
    }

    #[test]
    fn requires_stratum_column() {
        let ds = paper_iii_f_dataset();
        assert!(conditional_demographic_disparity(&ds, &["sex"], &[], true).is_err());
    }
}
