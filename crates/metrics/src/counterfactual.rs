//! Counterfactual fairness — paper Section III.G:
//!
//! > "if the value of a sensitive attribute of an individual changes,
//! > then the outcome predicted by the model should remain the same."
//!
//! The probe flips each individual's protected attribute — optionally
//! "adjusting other features to this change" as the paper's example says —
//! re-scores, and reports how often the decision flips. A decision that
//! changes under the intervention is counterfactually unfair for that
//! individual; the aggregate flip rate summarizes the model.

use fairbridge_learn::TrainedModel;
use fairbridge_tabular::{Column, Dataset, GroupKey, Role};

/// How non-protected features are adjusted when the protected attribute is
/// counterfactually changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjustStrategy {
    /// Change only the protected attribute (ceteris paribus probe). An
    /// unaware model trivially passes this; it detects *direct* use of A.
    Identity,
    /// Shift every numeric feature by the difference of group means
    /// (a linear structural-equation surrogate for the paper's "adjusting
    /// other features to this change"). This propagates the intervention
    /// through descendants of A, so proxy-using models are caught too.
    GroupMeanShift,
}

/// Per-individual counterfactual outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct IndividualCounterfactual {
    /// Row index in the audited dataset.
    pub row: usize,
    /// Original decision.
    pub factual: bool,
    /// Whether *any* counterfactual level changed the decision.
    pub flipped: bool,
    /// Largest |score difference| over the counterfactual levels.
    pub max_score_shift: f64,
}

/// The counterfactual-fairness report.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterfactualReport {
    /// Number of individuals probed.
    pub n: usize,
    /// Number whose decision flipped under some counterfactual level.
    pub flipped: usize,
    /// `flipped / n`.
    pub flip_rate: f64,
    /// Flip rate by the individual's *original* group.
    pub per_group: Vec<(GroupKey, f64)>,
    /// Mean over individuals of the largest |score shift|.
    pub mean_score_shift: f64,
    /// Per-individual details.
    pub individuals: Vec<IndividualCounterfactual>,
}

impl CounterfactualReport {
    /// Whether the model is counterfactually fair at `tolerance` flip rate.
    pub fn is_fair(&self, tolerance: f64) -> bool {
        self.flip_rate <= tolerance
    }
}

/// Runs the counterfactual probe for `model` over every row of `ds`,
/// intervening on the categorical protected column `protected`.
pub fn counterfactual_fairness(
    model: &TrainedModel,
    ds: &Dataset,
    protected: &str,
    adjust: AdjustStrategy,
) -> Result<CounterfactualReport, String> {
    let (levels, codes) = ds.categorical(protected).map_err(|e| e.to_string())?;
    let levels = levels.to_vec();
    let codes = codes.to_vec();
    let n = ds.n_rows();
    if n == 0 {
        return Err("counterfactual probe requires a non-empty dataset".to_owned());
    }
    let n_levels = levels.len();
    if n_levels < 2 {
        return Err(format!(
            "protected column `{protected}` has {n_levels} level(s); need at least 2"
        ));
    }

    // Numeric feature adjustment deltas: per feature, per (from, to) pair
    // we need mean[to] - mean[from]; precompute per-level means.
    let numeric_features: Vec<String> = ds
        .schema()
        .fields()
        .iter()
        .filter(|f| f.role == Role::Feature && f.dtype == fairbridge_tabular::DType::Numeric)
        .map(|f| f.name.clone())
        .collect();
    let mut level_means: Vec<Vec<f64>> = Vec::new(); // [feature][level]
    if adjust == AdjustStrategy::GroupMeanShift {
        for fname in &numeric_features {
            let values = ds.numeric(fname).map_err(|e| e.to_string())?;
            let mut sums = vec![0.0; n_levels];
            let mut counts = vec![0usize; n_levels];
            for (&v, &c) in values.iter().zip(&codes) {
                sums[c as usize] += v;
                counts[c as usize] += 1;
            }
            level_means.push(
                sums.iter()
                    .zip(&counts)
                    .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                    .collect(),
            );
        }
    }

    let factual_scores = model.score_dataset(ds)?;
    let threshold = model.threshold();
    let factual: Vec<bool> = factual_scores.iter().map(|&s| s >= threshold).collect();

    let mut flipped = vec![false; n];
    let mut max_shift = vec![0.0f64; n];

    // For each alternative level, build the "everyone becomes level t"
    // counterfactual dataset in one pass and score it; then only rows whose
    // original level differs from t contribute.
    for target in 0..n_levels as u32 {
        let cf_codes: Vec<u32> = vec![target; n];
        let mut cf = replace_categorical(ds, protected, &levels, cf_codes)?;
        if adjust == AdjustStrategy::GroupMeanShift {
            for (fi, fname) in numeric_features.iter().enumerate() {
                let values = ds.numeric(fname).map_err(|e| e.to_string())?;
                let shifted: Vec<f64> = values
                    .iter()
                    .zip(&codes)
                    .map(|(&v, &c)| {
                        v + level_means[fi][target as usize] - level_means[fi][c as usize]
                    })
                    .collect();
                cf = replace_numeric(&cf, fname, shifted)?;
            }
        }
        let cf_scores = model.score_dataset(&cf)?;
        for i in 0..n {
            if codes[i] == target {
                continue; // not a counterfactual for this row
            }
            let decision = cf_scores[i] >= threshold;
            if decision != factual[i] {
                flipped[i] = true;
            }
            let shift = (cf_scores[i] - factual_scores[i]).abs();
            if shift > max_shift[i] {
                max_shift[i] = shift;
            }
        }
    }

    let individuals: Vec<IndividualCounterfactual> = (0..n)
        .map(|i| IndividualCounterfactual {
            row: i,
            factual: factual[i],
            flipped: flipped[i],
            max_score_shift: max_shift[i],
        })
        .collect();
    let n_flipped = flipped.iter().filter(|&&f| f).count();

    // Per-original-group flip rates.
    let mut per_group = Vec::new();
    for (li, level) in levels.iter().enumerate() {
        let members: Vec<usize> = (0..n).filter(|&i| codes[i] as usize == li).collect();
        if members.is_empty() {
            continue;
        }
        let f = members.iter().filter(|&&i| flipped[i]).count() as f64 / members.len() as f64;
        per_group.push((GroupKey(vec![level.clone()]), f));
    }

    Ok(CounterfactualReport {
        n,
        flipped: n_flipped,
        flip_rate: n_flipped as f64 / n as f64,
        per_group,
        mean_score_shift: max_shift.iter().sum::<f64>() / n as f64,
        individuals,
    })
}

fn replace_categorical(
    ds: &Dataset,
    name: &str,
    levels: &[String],
    codes: Vec<u32>,
) -> Result<Dataset, String> {
    let role = ds.schema().field(name).map_err(|e| e.to_string())?.role;
    let col =
        Column::categorical_from_codes(levels.to_vec(), codes, name).map_err(|e| e.to_string())?;
    let dropped = ds.drop_column(name).map_err(|e| e.to_string())?;
    dropped
        .with_column(name, col, role)
        .map_err(|e| e.to_string())
}

fn replace_numeric(ds: &Dataset, name: &str, values: Vec<f64>) -> Result<Dataset, String> {
    let role = ds.schema().field(name).map_err(|e| e.to_string())?.role;
    let dropped = ds.drop_column(name).map_err(|e| e.to_string())?;
    dropped
        .with_column(name, Column::Numeric(values), role)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_learn::{EncoderConfig, FeatureEncoder, LogisticTrainer, TrainedModel};
    use fairbridge_tabular::Role;

    /// Dataset where the label equals "is male" exactly and a feature
    /// duplicates sex (a perfect proxy).
    fn proxy_dataset() -> Dataset {
        let n = 40;
        let sex: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let proxy: Vec<f64> = sex.iter().map(|&s| s as f64).collect();
        let noise: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.01).collect();
        let label: Vec<bool> = sex.iter().map(|&s| s == 0).collect();
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .numeric("proxy", proxy)
            .numeric("noise", noise)
            .boolean_with_role("hired", label, Role::Label)
            .build()
            .unwrap()
    }

    fn train(ds: &Dataset, include_protected: bool) -> TrainedModel {
        let cfg = EncoderConfig {
            include_protected,
            standardize: false,
            ..EncoderConfig::default()
        };
        let (enc, x) = FeatureEncoder::fit_transform(ds, cfg).unwrap();
        let y = ds.labels().unwrap();
        let model = LogisticTrainer {
            epochs: 3000,
            learning_rate: 1.0,
            ..LogisticTrainer::default()
        }
        .fit(&x, y);
        TrainedModel::new(enc, Box::new(model))
    }

    /// Like [`proxy_dataset`] but without the duplicated proxy feature, so
    /// an aware model must put all its weight on the sex indicator.
    fn direct_dataset() -> Dataset {
        let n = 40;
        let sex: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let noise: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.01).collect();
        let label: Vec<bool> = sex.iter().map(|&s| s == 0).collect();
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .numeric("noise", noise)
            .boolean_with_role("hired", label, Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn aware_model_fails_identity_probe() {
        let ds = direct_dataset();
        let model = train(&ds, true);
        let report = counterfactual_fairness(&model, &ds, "sex", AdjustStrategy::Identity).unwrap();
        assert!(report.flip_rate > 0.9, "flip rate {}", report.flip_rate);
        assert!(!report.is_fair(0.05));
    }

    #[test]
    fn unaware_model_passes_identity_but_fails_adjusted_probe() {
        let ds = proxy_dataset();
        let model = train(&ds, false); // sex not a feature, proxy is
        let identity =
            counterfactual_fairness(&model, &ds, "sex", AdjustStrategy::Identity).unwrap();
        // flipping only the (unused) attribute changes nothing
        assert_eq!(identity.flip_rate, 0.0);
        assert!(identity.is_fair(0.0));

        // adjusting downstream features (the proxy shifts with sex) reveals
        // the dependence — fairness through unawareness fails (IV.B).
        let adjusted =
            counterfactual_fairness(&model, &ds, "sex", AdjustStrategy::GroupMeanShift).unwrap();
        assert!(adjusted.flip_rate > 0.9, "flip rate {}", adjusted.flip_rate);
        assert!(adjusted.mean_score_shift > 0.3);
    }

    #[test]
    fn fair_model_passes_both_probes() {
        // Label depends only on noise-free merit independent of sex.
        let n = 40;
        let sex: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let merit: Vec<f64> = (0..n).map(|i| (i % 4) as f64).collect();
        let label: Vec<bool> = merit.iter().map(|&m| m >= 2.0).collect();
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .numeric("merit", merit)
            .boolean_with_role("y", label, Role::Label)
            .build()
            .unwrap();
        let model = train(&ds, false);
        for strategy in [AdjustStrategy::Identity, AdjustStrategy::GroupMeanShift] {
            let r = counterfactual_fairness(&model, &ds, "sex", strategy).unwrap();
            assert!(r.flip_rate < 0.05, "{strategy:?}: {}", r.flip_rate);
        }
    }

    #[test]
    fn per_group_rates_cover_all_groups() {
        let ds = proxy_dataset();
        let model = train(&ds, true);
        let r = counterfactual_fairness(&model, &ds, "sex", AdjustStrategy::Identity).unwrap();
        assert_eq!(r.per_group.len(), 2);
        assert_eq!(r.individuals.len(), 40);
    }

    #[test]
    fn single_level_protected_rejected() {
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["x"], vec![0, 0], Role::Protected)
            .numeric("f", vec![0.0, 1.0])
            .boolean_with_role("y", vec![true, false], Role::Label)
            .build()
            .unwrap();
        let model = train(
            &Dataset::builder()
                .numeric("f", vec![0.0, 1.0])
                .boolean_with_role("y", vec![true, false], Role::Label)
                .build()
                .unwrap(),
            false,
        );
        assert!(counterfactual_fairness(&model, &ds, "sex", AdjustStrategy::Identity).is_err());
    }
}
