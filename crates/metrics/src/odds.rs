//! Equalized odds — paper Section III.D, Eq. (4):
//!
//! > Pr(R = + | Y = y, A = a) = Pr(R = + | Y = y, A = b)
//! >   for y ∈ {+, −}, ∀ a, b ∈ A
//!
//! "More restrictive since it demands that individuals in protected and
//! unprotected groups have equal true positive rate and equal false
//! positive rate."

use crate::outcome::{GapSummary, Outcomes, RateStat};

/// The equalized-odds report: per-group TPR and FPR with separate
/// summaries; the overall gap is the max of the two.
#[derive(Debug, Clone, PartialEq)]
pub struct OddsReport {
    /// Pr(R = + | Y = +, A = a) per group.
    pub tpr: Vec<RateStat>,
    /// Pr(R = + | Y = −, A = a) per group.
    pub fpr: Vec<RateStat>,
    /// Gap summary of the TPRs.
    pub tpr_summary: GapSummary,
    /// Gap summary of the FPRs.
    pub fpr_summary: GapSummary,
}

impl OddsReport {
    /// The binding constraint: max of the TPR gap and the FPR gap.
    pub fn worst_gap(&self) -> f64 {
        match (self.tpr_summary.gap.is_nan(), self.fpr_summary.gap.is_nan()) {
            (true, true) => f64::NAN,
            (true, false) => self.fpr_summary.gap,
            (false, true) => self.tpr_summary.gap,
            (false, false) => self.tpr_summary.gap.max(self.fpr_summary.gap),
        }
    }

    /// Whether both rate pairs agree within `tolerance`.
    pub fn is_fair(&self, tolerance: f64) -> bool {
        let w = self.worst_gap();
        !w.is_nan() && w <= tolerance
    }
}

/// Computes equalized odds (Eq. 4).
///
/// `min_group_size` applies to the conditional denominators: a group needs
/// at least that many actual positives (for TPR) or actual negatives (for
/// FPR) to enter the respective summary.
pub fn equalized_odds(outcomes: &Outcomes, min_group_size: usize) -> Result<OddsReport, String> {
    let labels = outcomes.require_labels("equalized odds")?.to_vec();
    let preds = &outcomes.predictions;
    let tpr: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_conditioned_rows(key, rows, |i| labels[i], |i| preds[i]))
        .collect();
    let fpr: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_conditioned_rows(key, rows, |i| !labels[i], |i| preds[i]))
        .collect();
    let tpr_summary = GapSummary::from_rates(&tpr, min_group_size);
    let fpr_summary = GapSummary::from_rates(&fpr, min_group_size);
    Ok(OddsReport {
        tpr,
        fpr,
        tpr_summary,
        fpr_summary,
    })
}

/// Average-odds difference: mean of the TPR gap and FPR gap — a scalar
/// summary used by several toolkits for trend plots.
pub fn average_odds_difference(report: &OddsReport) -> f64 {
    0.5 * (report.tpr_summary.gap + report.fpr_summary.gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's III.D example: 12 males (6 good matches), 6 females
    /// (3 good matches); the model hires 9 and rejects 9. Fair outcome:
    /// all good matches hired, all bad matches rejected.
    fn paper_example(fair: bool) -> Outcomes {
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        // 6 good-match males — all hired
        for _ in 0..6 {
            preds.push(true);
            labels.push(true);
            codes.push(0);
        }
        // 6 bad-match males — all rejected
        for _ in 0..6 {
            preds.push(false);
            labels.push(false);
            codes.push(0);
        }
        if fair {
            // 3 good-match females hired, 3 bad-match rejected
            for _ in 0..3 {
                preds.push(true);
                labels.push(true);
                codes.push(1);
            }
            for _ in 0..3 {
                preds.push(false);
                labels.push(false);
                codes.push(1);
            }
        } else {
            // inverted for females: good matches rejected, bad hired
            for _ in 0..3 {
                preds.push(false);
                labels.push(true);
                codes.push(1);
            }
            for _ in 0..3 {
                preds.push(true);
                labels.push(false);
                codes.push(1);
            }
        }
        Outcomes::from_slices(&preds, Some(&labels), &codes, &["male", "female"]).unwrap()
    }

    #[test]
    fn paper_iii_d_fair_case() {
        // "the model should hire all the 3 females who are good matches
        // and reject all the 3 females who are bad matches" → TPR = 100%
        // and FPR = 0% for both groups.
        let report = equalized_odds(&paper_example(true), 0).unwrap();
        for r in &report.tpr {
            assert!((r.rate - 1.0).abs() < 1e-12);
        }
        for r in &report.fpr {
            assert!(r.rate.abs() < 1e-12);
        }
        assert!(report.is_fair(1e-9));
        assert_eq!(report.worst_gap(), 0.0);
        // 9 hired, 9 rejected in total, as the example stipulates
        let o = paper_example(true);
        assert_eq!(o.predictions.iter().filter(|&&p| p).count(), 9);
    }

    #[test]
    fn paper_iii_d_unfair_case() {
        let report = equalized_odds(&paper_example(false), 0).unwrap();
        assert!(!report.is_fair(0.1));
        assert!((report.tpr_summary.gap - 1.0).abs() < 1e-12);
        assert!((report.fpr_summary.gap - 1.0).abs() < 1e-12);
        assert!((average_odds_difference(&report) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tpr_fair_fpr_unfair_detected() {
        // Equal opportunity satisfied but equalized odds violated.
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        for g in 0..2u32 {
            // 4 positives per group, 2 hired → TPR 0.5 both
            for i in 0..4 {
                preds.push(i < 2);
                labels.push(true);
                codes.push(g);
            }
            // 4 negatives per group; group 0: none hired, group 1: all hired
            for _ in 0..4 {
                preds.push(g == 1);
                labels.push(false);
                codes.push(g);
            }
        }
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let eo = crate::opportunity::equal_opportunity(&o, 0).unwrap();
        assert!(eo.is_fair(1e-9));
        let odds = equalized_odds(&o, 0).unwrap();
        assert!(!odds.is_fair(0.1));
        assert!((odds.fpr_summary.gap - 1.0).abs() < 1e-12);
        assert!((odds.worst_gap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn requires_labels() {
        let o = Outcomes::from_slices(&[true], None, &[0], &["a"]).unwrap();
        assert!(equalized_odds(&o, 0).is_err());
    }

    #[test]
    fn worst_gap_handles_nan_sides() {
        // No actual negatives anywhere → FPR NaN, worst gap = TPR gap.
        let preds = vec![true, false, true, true];
        let labels = vec![true, true, true, true];
        let codes = vec![0, 0, 1, 1];
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let r = equalized_odds(&o, 0).unwrap();
        assert!(r.fpr_summary.gap.is_nan());
        assert!((r.worst_gap() - 0.5).abs() < 1e-12);
    }
}
