//! Demographic parity — paper Section III.A, Eq. (1):
//!
//! > Pr(R = + | A = a) = Pr(R = + | A = b)  ∀ a, b ∈ A
//!
//! "The proportion of each segment of a protected class should receive
//! the positive outcome at equal rates."

use crate::outcome::{GapSummary, Outcomes, RateStat};

/// The demographic-parity report: per-group selection rates plus the
/// worst-case gap/ratio summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityReport {
    /// P(R = + | A = a) for each group, in group-key order.
    pub rates: Vec<RateStat>,
    /// Gap / disparate-impact ratio across qualifying groups.
    pub summary: GapSummary,
    /// Groups below the minimum size that were excluded from the summary.
    pub skipped_small_groups: usize,
}

impl ParityReport {
    /// Whether the report satisfies parity within `tolerance` on the gap.
    pub fn is_fair(&self, tolerance: f64) -> bool {
        !self.summary.gap.is_nan() && self.summary.gap <= tolerance
    }
}

/// Computes demographic parity (Eq. 1) over an outcome view.
///
/// `min_group_size` excludes statistically meaningless groups from the
/// gap/ratio summary (they still appear in `rates`).
///
/// # Examples
///
/// The paper's III.A cohort — 20 males (10 hired), 10 females (5 hired)
/// — satisfies parity exactly:
///
/// ```
/// use fairbridge_metrics::{demographic_parity, Outcomes};
///
/// let mut preds = vec![true; 10];          // 10 males hired
/// preds.extend(vec![false; 10]);           // 10 males rejected
/// preds.extend(vec![true; 5]);             // 5 females hired
/// preds.extend(vec![false; 5]);            // 5 females rejected
/// let codes: Vec<u32> = std::iter::repeat(0).take(20)
///     .chain(std::iter::repeat(1).take(10)).collect();
/// let outcomes = Outcomes::from_slices(&preds, None, &codes,
///     &["male", "female"]).unwrap();
///
/// let report = demographic_parity(&outcomes, 0);
/// assert!(report.is_fair(1e-9));
/// assert!(report.summary.gap.abs() < 1e-12);
/// ```
pub fn demographic_parity(outcomes: &Outcomes, min_group_size: usize) -> ParityReport {
    let preds = &outcomes.predictions;
    let rates: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_rows(key, rows, |i| preds[i]))
        .collect();
    let summary = GapSummary::from_rates(&rates, min_group_size);
    let skipped = rates.iter().filter(|r| r.n < min_group_size).count();
    ParityReport {
        rates,
        summary,
        skipped_small_groups: skipped,
    }
}

/// The four-fifths (80%) rule of the EEOC's Uniform Guidelines — the
/// disparate-impact screen US enforcement practice applies (paper
/// Section II.B.4): the selection rate of any group must be at least
/// `threshold` (conventionally 0.8) of the highest group's rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FourFifthsVerdict {
    /// The observed minimum/maximum selection-rate ratio.
    pub impact_ratio: f64,
    /// The threshold applied (0.8 for the standard rule).
    pub threshold: f64,
    /// Whether the rule is satisfied.
    pub passes: bool,
}

/// Applies the four-fifths rule at a custom threshold.
pub fn disparate_impact(
    outcomes: &Outcomes,
    min_group_size: usize,
    threshold: f64,
) -> FourFifthsVerdict {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0,1]"
    );
    let report = demographic_parity(outcomes, min_group_size);
    let ratio = report.summary.ratio;
    FourFifthsVerdict {
        impact_ratio: ratio,
        threshold,
        passes: !ratio.is_nan() && ratio >= threshold,
    }
}

/// Applies the standard 80% rule.
pub fn four_fifths(outcomes: &Outcomes, min_group_size: usize) -> FourFifthsVerdict {
    disparate_impact(outcomes, min_group_size, 0.8)
}

/// How many positive outcomes group `group_idx` would need (keeping its
/// size fixed) for its rate to match the reference group's rate — the
/// "5 females should be hired" arithmetic of the paper's III.A example.
pub fn required_positives_for_parity(
    report: &ParityReport,
    group_idx: usize,
    reference_idx: usize,
) -> f64 {
    let g = &report.rates[group_idx];
    let r = &report.rates[reference_idx];
    g.n as f64 * r.rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcomes;

    /// The paper's III.A example: 20 males, 10 hired; 10 females, k hired.
    fn paper_example(female_hired: usize) -> Outcomes {
        let mut preds = Vec::new();
        let mut codes = Vec::new();
        for i in 0..20 {
            preds.push(i < 10);
            codes.push(0);
        }
        for i in 0..10 {
            preds.push(i < female_hired);
            codes.push(1);
        }
        Outcomes::from_slices(&preds, None, &codes, &["male", "female"]).unwrap()
    }

    #[test]
    fn paper_iii_a_exact_numbers() {
        // "If 10 males receive the outcome hire, then we have a 50%
        // probability of males being hired. The model is considered fair
        // if the probability of females receiving the outcome hire is also
        // 50%, meaning that 5 females should be hired."
        let fair = demographic_parity(&paper_example(5), 0);
        assert!((fair.rates[1].rate - 0.5).abs() < 1e-12); // male rate (key order: female first? check below)
        assert!(fair.is_fair(1e-9));

        // required positives for females to match males = 5
        let report = demographic_parity(&paper_example(0), 0);
        // group keys are sorted: "female" < "male"
        assert_eq!(report.rates[0].group.levels()[0], "female");
        assert_eq!(report.rates[1].group.levels()[0], "male");
        let needed = required_positives_for_parity(&report, 0, 1);
        assert!((needed - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fewer_than_five_biased_against_females() {
        let report = demographic_parity(&paper_example(3), 0);
        assert!(!report.is_fair(0.01));
        assert_eq!(
            report.summary.min_group.as_ref().unwrap().levels()[0],
            "female"
        );
        assert!((report.summary.gap - 0.2).abs() < 1e-12);
    }

    #[test]
    fn more_than_five_biased_against_males() {
        let report = demographic_parity(&paper_example(8), 0);
        assert!(!report.is_fair(0.01));
        assert_eq!(
            report.summary.min_group.as_ref().unwrap().levels()[0],
            "male"
        );
    }

    #[test]
    fn four_fifths_rule() {
        // female rate 0.4 vs male 0.5 → ratio 0.8, passes exactly
        let v = four_fifths(&paper_example(4), 0);
        assert!((v.impact_ratio - 0.8).abs() < 1e-12);
        assert!(v.passes);
        // female rate 0.3 → ratio 0.6, fails
        let v = four_fifths(&paper_example(3), 0);
        assert!(!v.passes);
    }

    #[test]
    fn min_group_size_excludes_tiny_groups() {
        let preds = vec![true, true, false, false, true];
        let codes = vec![0, 0, 0, 0, 1];
        let o = Outcomes::from_slices(&preds, None, &codes, &["big", "tiny"]).unwrap();
        let strict = demographic_parity(&o, 3);
        assert_eq!(strict.skipped_small_groups, 1);
        // only "big" qualifies → gap 0
        assert!((strict.summary.gap - 0.0).abs() < 1e-12);
        let loose = demographic_parity(&o, 0);
        assert!((loose.summary.gap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_positive_ratio_is_one() {
        let o = Outcomes::from_slices(&[true, true], None, &[0, 1], &["a", "b"]).unwrap();
        let r = demographic_parity(&o, 0);
        assert_eq!(r.summary.ratio, 1.0);
        assert!(r.is_fair(0.0));
    }

    #[test]
    fn zero_max_rate_ratio_defined_as_one() {
        let o = Outcomes::from_slices(&[false, false], None, &[0, 1], &["a", "b"]).unwrap();
        let r = demographic_parity(&o, 0);
        assert_eq!(r.summary.ratio, 1.0);
        assert!(four_fifths(&o, 0).passes);
    }
}
