//! Conditional statistical parity — paper Section III.B, Eq. (2):
//!
//! > Pr(R = + | S = s, A = a) = Pr(R = + | S = s, A = b)  ∀ a,b ∈ A, ∀ s ∈ S
//!
//! Demographic parity "only when other legitimate factors are taken into
//! account": the audit conditions on strata of one or more legitimate
//! attributes `S` and demands parity inside every stratum.

use crate::outcome::{GapSummary, Outcomes, RateStat};
use crate::parity::ParityReport;
use fairbridge_tabular::{Dataset, GroupIndex, GroupKey, GroupSpec};

/// Per-stratum parity results.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// The stratum key (levels of the legitimate factor columns).
    pub stratum: GroupKey,
    /// Rows in the stratum.
    pub n: usize,
    /// The parity report computed within the stratum.
    pub parity: ParityReport,
}

/// The conditional-statistical-parity report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalParityReport {
    /// One report per stratum, in stratum-key order.
    pub strata: Vec<StratumReport>,
    /// The largest within-stratum gap (NaN when no stratum qualifies).
    pub worst_gap: f64,
    /// Key of the stratum exhibiting the worst gap.
    pub worst_stratum: Option<GroupKey>,
}

impl ConditionalParityReport {
    /// Whether every stratum satisfies parity within `tolerance`.
    pub fn is_fair(&self, tolerance: f64) -> bool {
        !self.worst_gap.is_nan() && self.worst_gap <= tolerance
    }
}

/// Computes conditional statistical parity (Eq. 2).
///
/// * `ds` must carry a prediction column and the protected attribute(s);
/// * `legitimate` names the categorical/boolean columns defining strata
///   (bin numeric factors first, e.g. with
///   [`fairbridge_stats::descriptive::bin_codes`]);
/// * `min_group_size` applies within each stratum.
pub fn conditional_statistical_parity(
    ds: &Dataset,
    protected: &[&str],
    legitimate: &[&str],
    min_group_size: usize,
) -> Result<ConditionalParityReport, String> {
    let predictions = ds.predictions().map_err(|e| e.to_string())?.to_vec();
    conditional_parity_over(ds, protected, legitimate, &predictions, min_group_size)
}

/// Like [`conditional_statistical_parity`] but treats the dataset labels
/// as the decisions (historical-data auditing).
pub fn conditional_parity_on_labels(
    ds: &Dataset,
    protected: &[&str],
    legitimate: &[&str],
    min_group_size: usize,
) -> Result<ConditionalParityReport, String> {
    let decisions = ds.labels().map_err(|e| e.to_string())?.to_vec();
    conditional_parity_over(ds, protected, legitimate, &decisions, min_group_size)
}

fn conditional_parity_over(
    ds: &Dataset,
    protected: &[&str],
    legitimate: &[&str],
    decisions: &[bool],
    min_group_size: usize,
) -> Result<ConditionalParityReport, String> {
    if legitimate.is_empty() {
        return Err("conditional parity requires at least one legitimate factor".to_owned());
    }
    let strata_index = GroupIndex::build(ds, &GroupSpec::intersection(legitimate.to_vec()))
        .map_err(|e| e.to_string())?;
    let group_index = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
        .map_err(|e| e.to_string())?;

    // Precompute each row's protected-group key index for fast stratified
    // bucketing.
    let group_keys: Vec<&GroupKey> = group_index.keys();
    let mut row_group = vec![usize::MAX; ds.n_rows()];
    for (gi, (_, rows)) in group_index.iter().enumerate() {
        for &r in rows {
            row_group[r] = gi;
        }
    }

    let mut strata = Vec::new();
    let mut worst_gap = f64::NAN;
    let mut worst_stratum = None;
    for (stratum_key, stratum_rows) in strata_index.iter() {
        // Partition the stratum's rows by protected group.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); group_keys.len()];
        for &r in stratum_rows {
            buckets[row_group[r]].push(r);
        }
        let rates: Vec<RateStat> = group_keys
            .iter()
            .zip(&buckets)
            .map(|(key, rows)| RateStat::over_rows(key, rows, |i| decisions[i]))
            .collect();
        let summary = GapSummary::from_rates(&rates, min_group_size);
        let skipped = rates.iter().filter(|r| r.n < min_group_size).count();
        if !summary.gap.is_nan() && (worst_gap.is_nan() || summary.gap > worst_gap) {
            worst_gap = summary.gap;
            worst_stratum = Some(stratum_key.clone());
        }
        strata.push(StratumReport {
            stratum: stratum_key.clone(),
            n: stratum_rows.len(),
            parity: ParityReport {
                rates,
                summary,
                skipped_small_groups: skipped,
            },
        });
    }
    Ok(ConditionalParityReport {
        strata,
        worst_gap,
        worst_stratum,
    })
}

/// Raw-slice variant used by benches: one legitimate factor given as codes.
pub fn conditional_parity_slices(
    outcomes: &Outcomes,
    stratum_codes: &[u32],
    n_strata: usize,
    min_group_size: usize,
) -> Vec<(u32, GapSummary)> {
    assert_eq!(
        stratum_codes.len(),
        outcomes.n(),
        "stratum codes length mismatch"
    );
    let preds = &outcomes.predictions;
    (0..n_strata as u32)
        .map(|s| {
            let rates: Vec<RateStat> = outcomes
                .iter_groups()
                .map(|(key, rows)| {
                    RateStat::over_conditioned_rows(
                        key,
                        rows,
                        |i| stratum_codes[i] == s,
                        |i| preds[i],
                    )
                })
                .collect();
            (s, GapSummary::from_rates(&rates, min_group_size))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    /// The paper's III.B example: 20 male applicants (10 young), 10 female
    /// (6 young). 5 young males hired. Fair iff 3 young females hired.
    fn paper_example(young_females_hired: usize) -> Dataset {
        let mut sex = Vec::new(); // 0 male, 1 female
        let mut young = Vec::new();
        let mut hired = Vec::new();
        // 10 young males, 5 hired
        for i in 0..10 {
            sex.push(0);
            young.push(true);
            hired.push(i < 5);
        }
        // 10 older males, none hired (irrelevant to the young stratum)
        for _ in 0..10 {
            sex.push(0);
            young.push(false);
            hired.push(false);
        }
        // 6 young females, k hired
        for i in 0..6 {
            sex.push(1);
            young.push(true);
            hired.push(i < young_females_hired);
        }
        // 4 older females
        for _ in 0..4 {
            sex.push(1);
            young.push(false);
            hired.push(false);
        }
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .boolean("young", young)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_iii_b_exact_numbers() {
        // "If 5 young males receive the outcome hire ... the model is
        // considered fair if the probability of young females to receive
        // the outcome hire is also 50% meaning that 3 young females should
        // be hired."
        let ds = paper_example(3);
        let report = conditional_parity_on_labels(&ds, &["sex"], &["young"], 0).unwrap();
        let young_stratum = report
            .strata
            .iter()
            .find(|s| s.stratum.levels()[0] == "true")
            .unwrap();
        for r in &young_stratum.parity.rates {
            assert!((r.rate - 0.5).abs() < 1e-12, "{:?}", r);
        }
        assert!(young_stratum.parity.is_fair(1e-9));
    }

    #[test]
    fn fewer_than_three_is_biased() {
        let ds = paper_example(1);
        let report = conditional_parity_on_labels(&ds, &["sex"], &["young"], 0).unwrap();
        assert!(!report.is_fair(0.05));
        assert_eq!(report.worst_stratum.as_ref().unwrap().levels()[0], "true");
        // young female rate 1/6 vs male 1/2 → gap 1/3
        assert!((report.worst_gap - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_parity_can_hide_stratum_bias() {
        // Simpson-style: marginal rates equal, within-stratum rates differ.
        let mut sex = Vec::new();
        let mut senior = Vec::new();
        let mut hired = Vec::new();
        // males: 8 senior (6 hired), 2 junior (0 hired) → marginal 0.6
        for i in 0..8 {
            sex.push(0);
            senior.push(true);
            hired.push(i < 6);
        }
        for _ in 0..2 {
            sex.push(0);
            senior.push(false);
            hired.push(false);
        }
        // females: 2 senior (0 hired), 8 junior (6 hired) → marginal 0.6
        for _ in 0..2 {
            sex.push(1);
            senior.push(true);
            hired.push(false);
        }
        for i in 0..8 {
            sex.push(1);
            senior.push(false);
            hired.push(i < 6);
        }
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .boolean("senior", senior)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap();

        // Marginal: fair.
        let o = Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
        let marginal = crate::parity::demographic_parity(&o, 0);
        assert!(marginal.is_fair(1e-9));

        // Conditional: glaringly unfair in both strata.
        let cond = conditional_parity_on_labels(&ds, &["sex"], &["senior"], 0).unwrap();
        assert!(!cond.is_fair(0.1));
        assert!(cond.worst_gap > 0.7);
    }

    #[test]
    fn requires_a_legitimate_factor() {
        let ds = paper_example(3);
        assert!(conditional_parity_on_labels(&ds, &["sex"], &[], 0).is_err());
    }

    #[test]
    fn slice_variant_matches_dataset_variant() {
        let ds = paper_example(2);
        let o = Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
        let young = ds.boolean("young").unwrap();
        let codes: Vec<u32> = young.iter().map(|&b| u32::from(b)).collect();
        let by_slices = conditional_parity_slices(&o, &codes, 2, 0);
        let by_ds = conditional_parity_on_labels(&ds, &["sex"], &["young"], 0).unwrap();
        // stratum "true" is code 1 in slices, key "true" in ds variant
        let slice_gap = by_slices.iter().find(|(s, _)| *s == 1).unwrap().1.gap;
        let ds_gap = by_ds
            .strata
            .iter()
            .find(|s| s.stratum.levels()[0] == "true")
            .unwrap()
            .parity
            .summary
            .gap;
        assert!((slice_gap - ds_gap).abs() < 1e-12);
    }
}
