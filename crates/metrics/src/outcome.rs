//! The [`Outcomes`] view: predictions `R`, labels `Y` and protected
//! attribute `A` bound together in the paper's Section III notation.

use fairbridge_tabular::{Dataset, GroupIndex, GroupKey, GroupSpec};

/// A resolved view over one dataset's outcome columns.
///
/// All group-fairness metrics consume this view. `labels` is optional:
/// predicted-outcome-only definitions (demographic parity, conditional
/// statistical parity, demographic disparity) do not need `Y`, while
/// error-rate definitions (equal opportunity, equalized odds) do.
#[derive(Debug, Clone)]
pub struct Outcomes {
    /// Classifier decisions `R` per row.
    pub predictions: Vec<bool>,
    /// Ground-truth labels `Y` per row, when available.
    pub labels: Option<Vec<bool>>,
    /// The group partition induced by the protected attribute(s) `A`.
    pub groups: GroupIndex,
}

impl Outcomes {
    /// Builds the view from a dataset holding a prediction column and the
    /// named protected attribute(s). Labels are attached when present.
    pub fn from_dataset(ds: &Dataset, protected: &[&str]) -> Result<Outcomes, String> {
        let predictions = ds.predictions().map_err(|e| e.to_string())?.to_vec();
        let labels = ds.labels().ok().map(<[bool]>::to_vec);
        let spec = GroupSpec::intersection(protected.to_vec());
        let groups = GroupIndex::build(ds, &spec).map_err(|e| e.to_string())?;
        Ok(Outcomes {
            predictions,
            labels,
            groups,
        })
    }

    /// Builds the view treating the dataset's *labels* as the decisions.
    ///
    /// This is how historical data (where the recorded outcome *is* the
    /// decision, e.g. "was hired") is audited before any model exists —
    /// the setting of the paper's Section III worked examples.
    pub fn from_labels_as_decisions(ds: &Dataset, protected: &[&str]) -> Result<Outcomes, String> {
        let predictions = ds.labels().map_err(|e| e.to_string())?.to_vec();
        let spec = GroupSpec::intersection(protected.to_vec());
        let groups = GroupIndex::build(ds, &spec).map_err(|e| e.to_string())?;
        Ok(Outcomes {
            predictions,
            labels: None,
            groups,
        })
    }

    /// Builds the view from raw slices: `codes` are group codes resolved
    /// against `level_names`.
    pub fn from_slices(
        predictions: &[bool],
        labels: Option<&[bool]>,
        codes: &[u32],
        level_names: &[&str],
    ) -> Result<Outcomes, String> {
        if predictions.len() != codes.len() {
            return Err("predictions and group codes differ in length".to_owned());
        }
        if let Some(l) = labels {
            if l.len() != predictions.len() {
                return Err("labels and predictions differ in length".to_owned());
            }
        }
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= level_names.len()) {
            return Err(format!("group code {bad} out of range"));
        }
        // Reuse GroupIndex by building a one-column throwaway dataset.
        let ds = Dataset::builder()
            .categorical_with_role(
                "group",
                level_names.iter().map(|s| s.to_string()).collect(),
                codes.to_vec(),
                fairbridge_tabular::Role::Protected,
            )
            .build()
            .map_err(|e| e.to_string())?;
        let groups =
            GroupIndex::build(&ds, &GroupSpec::single("group")).map_err(|e| e.to_string())?;
        Ok(Outcomes {
            predictions: predictions.to_vec(),
            labels: labels.map(<[bool]>::to_vec),
            groups,
        })
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.predictions.len()
    }

    /// The labels, or an error naming the metric that required them.
    pub fn require_labels(&self, metric: &str) -> Result<&[bool], String> {
        self.labels
            .as_deref()
            .ok_or_else(|| format!("{metric} requires ground-truth labels (Y)"))
    }

    /// Iterates `(key, rows)` over groups.
    pub fn iter_groups(&self) -> impl Iterator<Item = (&GroupKey, &[usize])> {
        self.groups.iter()
    }
}

/// A per-group positive-rate statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct RateStat {
    /// The group key.
    pub group: GroupKey,
    /// Rows in the group (denominator).
    pub n: usize,
    /// Rows with the positive outcome (numerator).
    pub positives: usize,
    /// `positives / n`, `NaN` for empty groups.
    pub rate: f64,
}

impl RateStat {
    /// Computes the rate of `predicate` over `rows`.
    pub fn over_rows<F: Fn(usize) -> bool>(
        group: &GroupKey,
        rows: &[usize],
        predicate: F,
    ) -> RateStat {
        let positives = rows.iter().filter(|&&i| predicate(i)).count();
        RateStat {
            group: group.clone(),
            n: rows.len(),
            positives,
            rate: if rows.is_empty() {
                f64::NAN
            } else {
                positives as f64 / rows.len() as f64
            },
        }
    }

    /// Computes the rate of `predicate` over the subset of `rows` passing
    /// `condition` (the conditional definitions' denominators).
    pub fn over_conditioned_rows<C, F>(
        group: &GroupKey,
        rows: &[usize],
        condition: C,
        predicate: F,
    ) -> RateStat
    where
        C: Fn(usize) -> bool,
        F: Fn(usize) -> bool,
    {
        let eligible: Vec<usize> = rows.iter().copied().filter(|&i| condition(i)).collect();
        RateStat::over_rows(group, &eligible, predicate)
    }
}

/// Summary of per-group rates: worst-case gap and disparate-impact ratio.
///
/// Groups with fewer than `min_group_size` rows (or NaN rates) are skipped
/// when computing the gap/ratio — the Section IV.C warning about drawing
/// conclusions from tiny subgroups.
#[derive(Debug, Clone, PartialEq)]
pub struct GapSummary {
    /// Largest rate minus smallest rate across qualifying groups.
    pub gap: f64,
    /// Smallest rate divided by largest (the disparate-impact ratio);
    /// 1.0 when all rates are equal, NaN when no groups qualify.
    pub ratio: f64,
    /// Key of the most favored group.
    pub max_group: Option<GroupKey>,
    /// Key of the least favored group.
    pub min_group: Option<GroupKey>,
}

impl GapSummary {
    /// Computes the summary over rate statistics.
    pub fn from_rates(rates: &[RateStat], min_group_size: usize) -> GapSummary {
        let mut max: Option<&RateStat> = None;
        let mut min: Option<&RateStat> = None;
        for r in rates {
            if r.n < min_group_size || r.rate.is_nan() {
                continue;
            }
            if max.map_or(true, |m| r.rate > m.rate) {
                max = Some(r);
            }
            if min.map_or(true, |m| r.rate < m.rate) {
                min = Some(r);
            }
        }
        match (max, min) {
            (Some(mx), Some(mn)) => GapSummary {
                gap: mx.rate - mn.rate,
                ratio: if mx.rate > 0.0 {
                    mn.rate / mx.rate
                } else {
                    1.0
                },
                max_group: Some(mx.group.clone()),
                min_group: Some(mn.group.clone()),
            },
            _ => GapSummary {
                gap: f64::NAN,
                ratio: f64::NAN,
                max_group: None,
                min_group: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    fn ds() -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 0, 0, 0, 1, 1],
                Role::Protected,
            )
            .boolean_with_role(
                "hired",
                vec![true, true, false, false, true, false],
                Role::Label,
            )
            .boolean_with_role(
                "pred",
                vec![true, false, true, false, false, false],
                Role::Prediction,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn from_dataset_binds_everything() {
        let o = Outcomes::from_dataset(&ds(), &["sex"]).unwrap();
        assert_eq!(o.n(), 6);
        assert!(o.labels.is_some());
        assert_eq!(o.groups.n_groups(), 2);
    }

    #[test]
    fn labels_as_decisions_view() {
        let o = Outcomes::from_labels_as_decisions(&ds(), &["sex"]).unwrap();
        assert_eq!(o.predictions, vec![true, true, false, false, true, false]);
        assert!(o.labels.is_none());
        assert!(o.require_labels("equal opportunity").is_err());
    }

    #[test]
    fn from_slices_validates() {
        let o = Outcomes::from_slices(&[true, false], None, &[0, 1], &["a", "b"]).unwrap();
        assert_eq!(o.groups.n_groups(), 2);
        assert!(Outcomes::from_slices(&[true], None, &[0, 1], &["a", "b"]).is_err());
        assert!(Outcomes::from_slices(&[true], None, &[5], &["a"]).is_err());
        assert!(Outcomes::from_slices(&[true], Some(&[true, false]), &[0], &["a"]).is_err());
    }

    #[test]
    fn rate_stat_computation() {
        let key = GroupKey(vec!["g".into()]);
        let r = RateStat::over_rows(&key, &[0, 1, 2, 3], |i| i < 3);
        assert_eq!(r.positives, 3);
        assert!((r.rate - 0.75).abs() < 1e-12);
        let empty = RateStat::over_rows(&key, &[], |_| true);
        assert!(empty.rate.is_nan());
    }

    #[test]
    fn conditioned_rate_stat() {
        let key = GroupKey(vec!["g".into()]);
        // condition keeps evens; predicate keeps 0
        let r = RateStat::over_conditioned_rows(&key, &[0, 1, 2, 3], |i| i % 2 == 0, |i| i == 0);
        assert_eq!(r.n, 2);
        assert!((r.rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gap_summary_skips_small_groups() {
        let k = |s: &str| GroupKey(vec![s.into()]);
        let rates = vec![
            RateStat {
                group: k("big_hi"),
                n: 100,
                positives: 80,
                rate: 0.8,
            },
            RateStat {
                group: k("big_lo"),
                n: 100,
                positives: 40,
                rate: 0.4,
            },
            RateStat {
                group: k("tiny"),
                n: 2,
                positives: 0,
                rate: 0.0,
            },
        ];
        let s = GapSummary::from_rates(&rates, 10);
        assert!((s.gap - 0.4).abs() < 1e-12);
        assert!((s.ratio - 0.5).abs() < 1e-12);
        assert_eq!(s.max_group, Some(k("big_hi")));
        assert_eq!(s.min_group, Some(k("big_lo")));
        // with no size filter the tiny group dominates the gap
        let s2 = GapSummary::from_rates(&rates, 0);
        assert!((s2.gap - 0.8).abs() < 1e-12);
    }

    #[test]
    fn gap_summary_empty_is_nan() {
        let s = GapSummary::from_rates(&[], 0);
        assert!(s.gap.is_nan());
        assert!(s.max_group.is_none());
    }
}
