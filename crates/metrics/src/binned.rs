//! Conditional metrics over *numeric* legitimate factors, via equal-width
//! binning.
//!
//! Eq. (2) and Eq. (6) condition on strata of a legitimate factor `S`;
//! when `S` is numeric (salary band, risk score, years of experience) it
//! must be discretized first. This module wraps the binning so callers
//! audit in one call and the bin edges are reported alongside the
//! verdicts — auditors must be able to see *how* the strata were formed,
//! because gerrymandered bin edges are themselves a manipulation channel
//! (Section IV.E).

use crate::conditional::{conditional_parity_on_labels, ConditionalParityReport};
use fairbridge_stats::descriptive::bin_codes;
use fairbridge_tabular::{Column, Dataset, Role};

/// A binned conditional-parity result with its bin provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedConditionalReport {
    /// The underlying conditional-parity report (strata named `bin0`...).
    pub report: ConditionalParityReport,
    /// The numeric column that was binned.
    pub factor: String,
    /// Bin boundaries: bin `i` covers `[edges[i], edges[i+1])`.
    pub edges: Vec<f64>,
}

/// Runs conditional statistical parity (Eq. 2) over a numeric legitimate
/// factor, using `n_bins` equal-width bins of the factor's observed range.
pub fn conditional_parity_binned(
    ds: &Dataset,
    protected: &[&str],
    numeric_factor: &str,
    n_bins: usize,
    min_group_size: usize,
) -> Result<BinnedConditionalReport, String> {
    if n_bins < 2 {
        return Err("binned conditioning requires at least 2 bins".to_owned());
    }
    let values = ds.numeric(numeric_factor).map_err(|e| e.to_string())?;
    let codes = bin_codes(values, n_bins);
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = if hi > lo {
        (hi - lo) / n_bins as f64
    } else {
        1.0
    };
    let edges: Vec<f64> = (0..=n_bins).map(|i| lo + i as f64 * width).collect();

    let levels: Vec<String> = (0..n_bins).map(|i| format!("bin{i}")).collect();
    let bin_col =
        Column::categorical_from_codes(levels, codes, "__bin").map_err(|e| e.to_string())?;
    let augmented = ds
        .with_column("__factor_bin", bin_col, Role::Feature)
        .map_err(|e| e.to_string())?;
    let report =
        conditional_parity_on_labels(&augmented, protected, &["__factor_bin"], min_group_size)?;
    Ok(BinnedConditionalReport {
        report,
        factor: numeric_factor.to_owned(),
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simpson-style world: hire rates depend on experience band, and the
    /// groups occupy different bands — marginal gap without within-band
    /// gaps.
    fn simpson_world() -> Dataset {
        let mut sex = Vec::new();
        let mut exp = Vec::new();
        let mut hired = Vec::new();
        // males mostly senior (exp ~ 10), hired 80% per band
        for i in 0..100 {
            sex.push(0u32);
            let senior = i % 10 < 8;
            exp.push(if senior { 10.0 } else { 1.0 } + (i % 4) as f64 * 0.1);
            let band_rate = if senior { 8 } else { 2 };
            hired.push(i % 10 < band_rate);
        }
        // females mostly junior (exp ~ 1), same per-band rates
        for i in 0..100 {
            sex.push(1);
            let senior = i % 10 < 2;
            exp.push(if senior { 10.0 } else { 1.0 } + (i % 4) as f64 * 0.1);
            let band_rate = if senior { 8 } else { 2 };
            hired.push(i % 10 < band_rate);
        }
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .numeric("experience", exp)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn binned_conditioning_explains_marginal_gap() {
        let ds = simpson_world();
        // marginal parity fails...
        let o = crate::outcome::Outcomes::from_labels_as_decisions(&ds, &["sex"]).unwrap();
        let marginal = crate::parity::demographic_parity(&o, 0);
        assert!(
            marginal.summary.gap > 0.2,
            "marginal gap {}",
            marginal.summary.gap
        );

        // ...but conditioning on binned experience passes in every stratum.
        let binned = conditional_parity_binned(&ds, &["sex"], "experience", 2, 5).unwrap();
        assert!(
            binned.report.is_fair(0.12),
            "worst within-band gap {}",
            binned.report.worst_gap
        );
        assert_eq!(binned.edges.len(), 3);
        assert_eq!(binned.factor, "experience");
    }

    #[test]
    fn real_within_band_bias_still_detected() {
        // same bands, but females penalized WITHIN each band
        let mut sex = Vec::new();
        let mut exp = Vec::new();
        let mut hired = Vec::new();
        for i in 0..200 {
            let female = i >= 100;
            sex.push(u32::from(female));
            exp.push(if i % 2 == 0 { 10.0 } else { 1.0 });
            let base = if i % 2 == 0 { 8 } else { 4 };
            let rate = if female { base - 3 } else { base };
            hired.push((i / 2) % 10 < rate);
        }
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .numeric("experience", exp)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap();
        let binned = conditional_parity_binned(&ds, &["sex"], "experience", 2, 5).unwrap();
        assert!(!binned.report.is_fair(0.1));
        assert!(binned.report.worst_gap > 0.2);
    }

    #[test]
    fn validates_bin_count() {
        let ds = simpson_world();
        assert!(conditional_parity_binned(&ds, &["sex"], "experience", 1, 5).is_err());
    }

    #[test]
    fn edges_cover_the_observed_range() {
        let ds = simpson_world();
        let binned = conditional_parity_binned(&ds, &["sex"], "experience", 4, 1).unwrap();
        let values = ds.numeric("experience").unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((binned.edges[0] - lo).abs() < 1e-12);
        assert!((binned.edges[4] - hi).abs() < 1e-9);
    }
}
