//! Individual fairness — "fairness through awareness" (Dwork et al.,
//! the paper's reference \[4\] behind Eq. (1)).
//!
//! The original formulation: similar individuals should receive similar
//! decisions — a Lipschitz condition `d(R(x), R(x')) ≤ L·d(x, x')` on the
//! decision map. Two auditable instantiations are provided:
//!
//! * [`consistency`] — the kNN consistency score used by fairness
//!   toolkits: 1 − mean |R(x) − mean R(neighbours(x))|; 1.0 means every
//!   individual is treated like their nearest peers;
//! * [`lipschitz_violations`] — pairs of individuals whose score
//!   difference exceeds `L · distance`, with the worst offenders listed.

use fairbridge_learn::matrix::{sq_dist, Matrix};

/// The kNN consistency score ∈ \[0, 1\].
///
/// For each individual, compares their decision with the mean decision of
/// their `k` nearest neighbours in feature space (excluding themselves).
pub fn consistency(x: &Matrix, decisions: &[bool], k: usize) -> f64 {
    assert_eq!(x.n_rows(), decisions.len(), "consistency: length mismatch");
    assert!(k > 0, "consistency requires k > 0");
    let n = x.n_rows();
    assert!(n > 1, "consistency requires at least two individuals");
    let k = k.min(n - 1);
    let mut total = 0.0;
    for i in 0..n {
        // distances to all others
        let mut dists: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (sq_dist(x.row(i), x.row(j)), j))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let neighbour_mean = dists[..k]
            .iter()
            .map(|&(_, j)| if decisions[j] { 1.0 } else { 0.0 })
            .sum::<f64>()
            / k as f64;
        let own = if decisions[i] { 1.0 } else { 0.0 };
        total += (own - neighbour_mean).abs();
    }
    1.0 - total / n as f64
}

/// One Lipschitz violation: a pair treated too differently for how
/// similar they are.
#[derive(Debug, Clone, PartialEq)]
pub struct LipschitzViolation {
    /// First row index.
    pub i: usize,
    /// Second row index.
    pub j: usize,
    /// Feature-space distance.
    pub distance: f64,
    /// |score_i − score_j|.
    pub score_gap: f64,
    /// `score_gap − L·distance` (how far over the budget).
    pub excess: f64,
}

/// Lipschitz audit report.
#[derive(Debug, Clone, PartialEq)]
pub struct LipschitzReport {
    /// Number of pairs audited.
    pub n_pairs: usize,
    /// Number of violating pairs.
    pub n_violations: usize,
    /// Fraction of pairs violating.
    pub violation_rate: f64,
    /// The worst violations, by excess descending (up to the cap given).
    pub worst: Vec<LipschitzViolation>,
}

/// Audits the Lipschitz condition `|s_i − s_j| ≤ L·‖x_i − x_j‖` over all
/// pairs, reporting up to `max_reported` worst violations.
pub fn lipschitz_violations(
    x: &Matrix,
    scores: &[f64],
    lipschitz: f64,
    max_reported: usize,
) -> LipschitzReport {
    assert_eq!(x.n_rows(), scores.len(), "lipschitz: length mismatch");
    assert!(lipschitz >= 0.0, "lipschitz constant must be non-negative");
    let n = x.n_rows();
    let mut worst: Vec<LipschitzViolation> = Vec::new();
    let mut n_pairs = 0usize;
    let mut n_violations = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            n_pairs += 1;
            let distance = sq_dist(x.row(i), x.row(j)).sqrt();
            let score_gap = (scores[i] - scores[j]).abs();
            let excess = score_gap - lipschitz * distance;
            if excess > 1e-12 {
                n_violations += 1;
                worst.push(LipschitzViolation {
                    i,
                    j,
                    distance,
                    score_gap,
                    excess,
                });
            }
        }
    }
    worst.sort_by(|a, b| b.excess.partial_cmp(&a.excess).expect("NaN excess"));
    worst.truncate(max_reported);
    LipschitzReport {
        n_pairs,
        n_violations,
        violation_rate: if n_pairs > 0 {
            n_violations as f64 / n_pairs as f64
        } else {
            0.0
        },
        worst,
    }
}

/// The smallest Lipschitz constant under which the score map has no
/// violations: max over pairs of score_gap / distance (ignoring
/// zero-distance pairs with differing scores, which are reported as
/// `f64::INFINITY`).
pub fn empirical_lipschitz_constant(x: &Matrix, scores: &[f64]) -> f64 {
    assert_eq!(x.n_rows(), scores.len(), "lipschitz: length mismatch");
    let n = x.n_rows();
    let mut max_ratio = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sq_dist(x.row(i), x.row(j)).sqrt();
            let gap = (scores[i] - scores[j]).abs();
            if d <= 1e-15 {
                if gap > 1e-12 {
                    return f64::INFINITY;
                }
                continue;
            }
            max_ratio = max_ratio.max(gap / d);
        }
    }
    max_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Matrix {
        Matrix::from_rows(&(0..10).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn consistency_perfect_for_smooth_decisions() {
        // threshold rule aligned with feature order
        let x = grid();
        let decisions: Vec<bool> = (0..10).map(|i| i >= 5).collect();
        let c = consistency(&x, &decisions, 2);
        // boundary individuals disagree with one neighbour each;
        // everyone else agrees fully
        assert!(c > 0.85, "consistency {c}");
        // alternating decisions are maximally inconsistent
        let alternating: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let c_alt = consistency(&x, &alternating, 2);
        assert!(c_alt < 0.2, "alternating consistency {c_alt}");
    }

    #[test]
    fn consistency_is_one_for_constant_decisions() {
        let x = grid();
        assert!((consistency(&x, &[true; 10], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lipschitz_flags_similar_pairs_treated_differently() {
        // two identical individuals with opposite scores
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![5.0]]);
        let scores = [0.9, 0.1, 0.5];
        let report = lipschitz_violations(&x, &scores, 1.0, 10);
        assert_eq!(report.n_pairs, 3);
        assert_eq!(report.n_violations, 1);
        let v = &report.worst[0];
        assert_eq!((v.i, v.j), (0, 1));
        assert!((v.score_gap - 0.8).abs() < 1e-12);
        assert!(v.distance < 1e-12);
    }

    #[test]
    fn smooth_scores_satisfy_generous_constant() {
        let x = grid();
        let scores: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let report = lipschitz_violations(&x, &scores, 0.2, 10);
        assert_eq!(report.n_violations, 0);
        assert_eq!(report.violation_rate, 0.0);
        let l = empirical_lipschitz_constant(&x, &scores);
        assert!((l - 0.1).abs() < 1e-12, "L = {l}");
    }

    #[test]
    fn identical_inputs_different_scores_is_infinite() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        assert_eq!(empirical_lipschitz_constant(&x, &[0.2, 0.8]), f64::INFINITY);
        // same scores → no constraint from the tied pair
        assert_eq!(empirical_lipschitz_constant(&x, &[0.4, 0.4]), 0.0);
    }

    #[test]
    fn max_reported_caps_output() {
        let x = Matrix::from_rows(&(0..6).map(|_| vec![0.0]).collect::<Vec<_>>());
        let scores = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let report = lipschitz_violations(&x, &scores, 0.0, 2);
        assert!(report.n_violations > 2);
        assert_eq!(report.worst.len(), 2);
        // sorted by excess descending
        assert!(report.worst[0].excess >= report.worst[1].excess);
    }
}
