//! # fairbridge-metrics
//!
//! The algorithmic fairness definitions of the ICDE'24 paper, implemented
//! exactly as Section III states them, plus the extended canon the §V
//! discussion references (calibration, predictive parity, ...).
//!
//! | Paper section | Definition | Module |
//! |---------------|------------|--------|
//! | III.A, Eq. (1) | Demographic parity | [`parity`] |
//! | III.B, Eq. (2) | Conditional statistical parity | [`conditional`] |
//! | III.C, Eq. (3) | Equal opportunity | [`opportunity`] |
//! | III.D, Eq. (4) | Equalized odds | [`odds`] |
//! | III.E, Eq. (5) | Demographic disparity | [`disparity`] |
//! | III.F, Eq. (6) | Conditional demographic disparity | [`disparity`] |
//! | III.G | Counterfactual fairness | [`counterfactual`] |
//! | §V shortlist | Calibration, predictive parity, ... | [`extended`] |
//! | ref \[4\] (Dwork) | Individual fairness / Lipschitz | [`individual`] |
//!
//! Every group metric is computed from an [`outcome::Outcomes`] view that
//! binds predictions `R`, labels `Y` and the protected attribute `A` in
//! the paper's notation, and returns a report carrying per-group rates,
//! the worst-case gap, the disparate-impact ratio and a thresholded
//! verdict. The [`definition::Definition`] enum carries the paper's
//! taxonomy (equal treatment vs equal outcome, Section IV.A) used by the
//! criteria engine in the `fairbridge` core crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accumulator;
pub mod binned;
pub mod conditional;
pub mod counterfactual;
pub mod definition;
pub mod disparity;
pub mod extended;
pub mod individual;
pub mod odds;
pub mod opportunity;
pub mod outcome;
pub mod parity;
pub mod report;

pub use accumulator::{from_accumulator, GroupAccumulator, GroupCounts};
pub use definition::{Definition, EqualityNotion};
pub use outcome::Outcomes;
pub use parity::{demographic_parity, four_fifths, ParityReport};
pub use report::FairnessReport;
