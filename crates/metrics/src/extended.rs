//! Extended metric canon referenced by the paper's §V discussion:
//! predictive parity, calibration within groups, accuracy equality,
//! treatment equality, FPR balance and per-group confusion matrices.

use crate::outcome::{GapSummary, Outcomes, RateStat};
use fairbridge_learn::eval::{expected_calibration_error, Confusion};
use fairbridge_tabular::GroupKey;

/// Per-group confusion matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupConfusions {
    /// `(group, confusion)` pairs in group-key order.
    pub groups: Vec<(GroupKey, Confusion)>,
}

/// Builds per-group confusion matrices (requires labels).
pub fn group_confusions(outcomes: &Outcomes) -> Result<GroupConfusions, String> {
    let labels = outcomes
        .require_labels("group confusion matrices")?
        .to_vec();
    let preds = &outcomes.predictions;
    let groups = outcomes
        .iter_groups()
        .map(|(key, rows)| {
            let y: Vec<bool> = rows.iter().map(|&i| labels[i]).collect();
            let r: Vec<bool> = rows.iter().map(|&i| preds[i]).collect();
            (key.clone(), Confusion::from_predictions(&y, &r))
        })
        .collect();
    Ok(GroupConfusions { groups })
}

/// A generic per-group rate report (rate definition given by the caller).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRateReport {
    /// Per-group statistics.
    pub rates: Vec<RateStat>,
    /// Gap/ratio summary.
    pub summary: GapSummary,
}

impl GroupRateReport {
    /// Whether rates agree within `tolerance`.
    pub fn is_fair(&self, tolerance: f64) -> bool {
        !self.summary.gap.is_nan() && self.summary.gap <= tolerance
    }
}

/// Predictive parity: equal precision Pr(Y = + | R = +, A = a) per group.
pub fn predictive_parity(
    outcomes: &Outcomes,
    min_group_size: usize,
) -> Result<GroupRateReport, String> {
    let labels = outcomes.require_labels("predictive parity")?.to_vec();
    let preds = &outcomes.predictions;
    let rates: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_conditioned_rows(key, rows, |i| preds[i], |i| labels[i]))
        .collect();
    let summary = GapSummary::from_rates(&rates, min_group_size);
    Ok(GroupRateReport { rates, summary })
}

/// False-positive-rate balance: equal Pr(R = + | Y = −, A = a) per group
/// (one half of equalized odds; legally salient in punitive settings where
/// a false positive is the harm).
pub fn fpr_balance(outcomes: &Outcomes, min_group_size: usize) -> Result<GroupRateReport, String> {
    let labels = outcomes.require_labels("FPR balance")?.to_vec();
    let preds = &outcomes.predictions;
    let rates: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_conditioned_rows(key, rows, |i| !labels[i], |i| preds[i]))
        .collect();
    let summary = GapSummary::from_rates(&rates, min_group_size);
    Ok(GroupRateReport { rates, summary })
}

/// Accuracy equality: equal Pr(R = Y | A = a) per group.
pub fn accuracy_equality(
    outcomes: &Outcomes,
    min_group_size: usize,
) -> Result<GroupRateReport, String> {
    let labels = outcomes.require_labels("accuracy equality")?.to_vec();
    let preds = &outcomes.predictions;
    let rates: Vec<RateStat> = outcomes
        .iter_groups()
        .map(|(key, rows)| RateStat::over_rows(key, rows, |i| preds[i] == labels[i]))
        .collect();
    let summary = GapSummary::from_rates(&rates, min_group_size);
    Ok(GroupRateReport { rates, summary })
}

/// Treatment equality: the per-group ratio FN/FP, compared across groups.
/// Returns `(group, fn/fp)` pairs and the max−min gap (NaN-producing
/// groups with zero FPs are skipped).
#[derive(Debug, Clone, PartialEq)]
pub struct TreatmentEqualityReport {
    /// `(group, FN/FP ratio)` per group (NaN when the group has no FPs).
    pub ratios: Vec<(GroupKey, f64)>,
    /// Max − min ratio across groups with finite ratios.
    pub gap: f64,
}

/// Computes treatment equality.
pub fn treatment_equality(outcomes: &Outcomes) -> Result<TreatmentEqualityReport, String> {
    let confusions = group_confusions(outcomes)?;
    let ratios: Vec<(GroupKey, f64)> = confusions
        .groups
        .iter()
        .map(|(key, c)| {
            let ratio = if c.fp == 0 {
                f64::NAN
            } else {
                c.fn_ as f64 / c.fp as f64
            };
            (key.clone(), ratio)
        })
        .collect();
    let finite: Vec<f64> = ratios
        .iter()
        .map(|(_, r)| *r)
        .filter(|r| r.is_finite())
        .collect();
    let gap = if finite.len() < 2 {
        f64::NAN
    } else {
        finite.iter().cloned().fold(f64::MIN, f64::max)
            - finite.iter().cloned().fold(f64::MAX, f64::min)
    };
    Ok(TreatmentEqualityReport { ratios, gap })
}

/// Calibration within groups: expected calibration error per group over
/// probabilistic scores, plus the worst per-group ECE.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCalibrationReport {
    /// `(group, ECE)` pairs.
    pub ece: Vec<(GroupKey, f64)>,
    /// The largest per-group ECE.
    pub worst: f64,
}

/// Computes per-group calibration from scores (not hard decisions).
pub fn calibration_within_groups(
    outcomes: &Outcomes,
    scores: &[f64],
    n_bins: usize,
) -> Result<GroupCalibrationReport, String> {
    if scores.len() != outcomes.n() {
        return Err("scores length must match outcome count".to_owned());
    }
    let labels = outcomes
        .require_labels("calibration within groups")?
        .to_vec();
    let mut ece = Vec::new();
    let mut worst = 0.0f64;
    for (key, rows) in outcomes.iter_groups() {
        let y: Vec<bool> = rows.iter().map(|&i| labels[i]).collect();
        let s: Vec<f64> = rows.iter().map(|&i| scores[i]).collect();
        let e = expected_calibration_error(&y, &s, n_bins);
        if e.is_finite() && e > worst {
            worst = e;
        }
        ece.push((key.clone(), e));
    }
    Ok(GroupCalibrationReport { ece, worst })
}

/// Per-group ROC-AUC: whether the scores rank positives above negatives
/// equally well in every group (a ranking-quality analogue of accuracy
/// equality; large per-group AUC gaps mean the scores are differently
/// informative across groups even if thresholds are repaired).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAucReport {
    /// `(group, AUC)` pairs (NaN when a group lacks one of the classes).
    pub auc: Vec<(GroupKey, f64)>,
    /// Max − min AUC over groups with defined AUC (NaN if fewer than 2).
    pub gap: f64,
}

/// Computes per-group ROC-AUC from scores.
pub fn auc_within_groups(outcomes: &Outcomes, scores: &[f64]) -> Result<GroupAucReport, String> {
    if scores.len() != outcomes.n() {
        return Err("scores length must match outcome count".to_owned());
    }
    let labels = outcomes.require_labels("per-group AUC")?.to_vec();
    let mut auc = Vec::new();
    for (key, rows) in outcomes.iter_groups() {
        let y: Vec<bool> = rows.iter().map(|&i| labels[i]).collect();
        let s: Vec<f64> = rows.iter().map(|&i| scores[i]).collect();
        auc.push((key.clone(), fairbridge_learn::eval::roc_auc(&y, &s)));
    }
    let finite: Vec<f64> = auc
        .iter()
        .map(|(_, a)| *a)
        .filter(|a| a.is_finite())
        .collect();
    let gap = if finite.len() < 2 {
        f64::NAN
    } else {
        finite.iter().cloned().fold(f64::MIN, f64::max)
            - finite.iter().cloned().fold(f64::MAX, f64::min)
    };
    Ok(GroupAucReport { auc, gap })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Outcomes {
        // group a: y [1,1,0,0] r [1,0,1,0] → tp1 fp1 tn1 fn1
        // group b: y [1,1,1,0] r [1,1,0,0] → tp2 fn1 tn1
        let labels = vec![true, true, false, false, true, true, true, false];
        let preds = vec![true, false, true, false, true, true, false, false];
        let codes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap()
    }

    #[test]
    fn group_confusions_counts() {
        let gc = group_confusions(&outcomes()).unwrap();
        assert_eq!(gc.groups.len(), 2);
        let a = &gc.groups[0].1;
        assert_eq!((a.tp, a.fp, a.tn, a.fn_), (1, 1, 1, 1));
        let b = &gc.groups[1].1;
        assert_eq!((b.tp, b.fp, b.tn, b.fn_), (2, 0, 1, 1));
    }

    #[test]
    fn predictive_parity_rates() {
        let r = predictive_parity(&outcomes(), 0).unwrap();
        // group a precision = 1/2, group b = 2/2
        let a = r.rates.iter().find(|x| x.group.levels()[0] == "a").unwrap();
        assert!((a.rate - 0.5).abs() < 1e-12);
        let b = r.rates.iter().find(|x| x.group.levels()[0] == "b").unwrap();
        assert!((b.rate - 1.0).abs() < 1e-12);
        assert!((r.summary.gap - 0.5).abs() < 1e-12);
        assert!(!r.is_fair(0.1));
    }

    #[test]
    fn accuracy_equality_rates() {
        let r = accuracy_equality(&outcomes(), 0).unwrap();
        // a: 2/4 correct, b: 3/4 correct
        assert!((r.summary.gap - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fpr_balance_rates() {
        let r = fpr_balance(&outcomes(), 0).unwrap();
        let a = r.rates.iter().find(|x| x.group.levels()[0] == "a").unwrap();
        assert!((a.rate - 0.5).abs() < 1e-12);
        let b = r.rates.iter().find(|x| x.group.levels()[0] == "b").unwrap();
        assert!(b.rate.abs() < 1e-12);
    }

    #[test]
    fn treatment_equality_handles_zero_fp() {
        let r = treatment_equality(&outcomes()).unwrap();
        // a: fn/fp = 1/1 = 1; b: fp = 0 → NaN skipped
        let a = r.ratios.iter().find(|(k, _)| k.levels()[0] == "a").unwrap();
        assert!((a.1 - 1.0).abs() < 1e-12);
        let b = r.ratios.iter().find(|(k, _)| k.levels()[0] == "b").unwrap();
        assert!(b.1.is_nan());
        assert!(r.gap.is_nan()); // fewer than two finite ratios
    }

    #[test]
    fn calibration_within_groups_detects_group_miscalibration() {
        // group a perfectly calibrated at 0.5; group b predicted 0.9 but
        // observes 0.5.
        let labels: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let codes: Vec<u32> = (0..200).map(|i| u32::from(i >= 100)).collect();
        let preds = vec![true; 200]; // irrelevant here
        let scores: Vec<f64> = (0..200).map(|i| if i < 100 { 0.5 } else { 0.9 }).collect();
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let r = calibration_within_groups(&o, &scores, 10).unwrap();
        let a = r.ece.iter().find(|(k, _)| k.levels()[0] == "a").unwrap();
        let b = r.ece.iter().find(|(k, _)| k.levels()[0] == "b").unwrap();
        assert!(a.1 < 0.05, "group a ece {}", a.1);
        assert!((b.1 - 0.4).abs() < 0.05, "group b ece {}", b.1);
        assert!((r.worst - b.1).abs() < 1e-12);
    }

    #[test]
    fn calibration_validates_lengths() {
        let o = outcomes();
        assert!(calibration_within_groups(&o, &[0.5; 3], 10).is_err());
    }

    #[test]
    fn auc_within_groups_detects_differential_ranking_quality() {
        // group a: scores perfectly rank labels; group b: scores are
        // anti-correlated with labels.
        let labels = vec![false, false, true, true, false, false, true, true];
        let scores = vec![0.1, 0.2, 0.8, 0.9, 0.8, 0.9, 0.1, 0.2];
        let codes = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let preds = vec![false; 8];
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let r = auc_within_groups(&o, &scores).unwrap();
        let a = r.auc.iter().find(|(k, _)| k.levels()[0] == "a").unwrap().1;
        let b = r.auc.iter().find(|(k, _)| k.levels()[0] == "b").unwrap().1;
        assert!((a - 1.0).abs() < 1e-12);
        assert!(b.abs() < 1e-12);
        assert!((r.gap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_within_groups_handles_single_class_groups() {
        let labels = vec![true, true, true, false];
        let scores = vec![0.9, 0.8, 0.7, 0.2];
        let codes = vec![0, 0, 1, 1];
        let preds = vec![true; 4];
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let r = auc_within_groups(&o, &scores).unwrap();
        let a = r.auc.iter().find(|(k, _)| k.levels()[0] == "a").unwrap().1;
        assert!(a.is_nan()); // group a has positives only
        assert!(r.gap.is_nan()); // fewer than two defined AUCs
        assert!(auc_within_groups(&o, &[0.5; 2]).is_err());
    }
}
