//! The aggregate [`FairnessReport`]: every applicable definition evaluated
//! at once, rendered as a text table for auditors.

use crate::definition::Definition;
use crate::disparity::demographic_disparity;
use crate::extended::{accuracy_equality, fpr_balance, predictive_parity};
use crate::odds::equalized_odds;
use crate::opportunity::equal_opportunity;
use crate::outcome::Outcomes;
use crate::parity::{demographic_parity, four_fifths};
use std::fmt;

/// One evaluated definition inside a [`FairnessReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricLine {
    /// Which definition was evaluated.
    pub definition: Definition,
    /// The worst-case gap (definition-specific scale; NaN if unevaluable).
    pub gap: f64,
    /// Whether the definition holds at the report's tolerance.
    pub fair: Option<bool>,
    /// Short free-text detail (e.g. which group is disadvantaged).
    pub detail: String,
}

/// A one-shot fairness audit over an outcome view: all definitions that
/// the available data supports (labels present → error-rate definitions
/// too), plus the four-fifths screen.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Evaluated metric lines in paper order.
    pub lines: Vec<MetricLine>,
    /// The gap tolerance verdicts were computed at.
    pub tolerance: f64,
    /// Four-fifths-rule impact ratio.
    pub impact_ratio: f64,
    /// Whether the four-fifths rule passes.
    pub four_fifths_passes: bool,
}

impl FairnessReport {
    /// Evaluates every supported definition at `tolerance` (gap units) and
    /// `min_group_size`.
    pub fn evaluate(outcomes: &Outcomes, tolerance: f64, min_group_size: usize) -> FairnessReport {
        let mut lines = Vec::new();

        let dp = demographic_parity(outcomes, min_group_size);
        lines.push(MetricLine {
            definition: Definition::DemographicParity,
            gap: dp.summary.gap,
            fair: Some(dp.is_fair(tolerance)),
            detail: dp
                .summary
                .min_group
                .as_ref()
                .map(|g| format!("least favored: {g}"))
                .unwrap_or_default(),
        });

        let dd = demographic_disparity(outcomes);
        let n_unfair = dd.unfair_groups().len();
        lines.push(MetricLine {
            definition: Definition::DemographicDisparity,
            gap: n_unfair as f64,
            fair: Some(dd.is_fair()),
            detail: if n_unfair > 0 {
                format!("{n_unfair} group(s) receive more rejections than acceptances")
            } else {
                String::new()
            },
        });

        if outcomes.labels.is_some() {
            if let Ok(eo) = equal_opportunity(outcomes, min_group_size) {
                lines.push(MetricLine {
                    definition: Definition::EqualOpportunity,
                    gap: eo.summary.gap,
                    fair: Some(eo.is_fair(tolerance)),
                    detail: eo
                        .summary
                        .min_group
                        .as_ref()
                        .map(|g| format!("lowest TPR: {g}"))
                        .unwrap_or_default(),
                });
            }
            if let Ok(odds) = equalized_odds(outcomes, min_group_size) {
                lines.push(MetricLine {
                    definition: Definition::EqualizedOdds,
                    gap: odds.worst_gap(),
                    fair: Some(odds.is_fair(tolerance)),
                    detail: format!(
                        "TPR gap {:.3}, FPR gap {:.3}",
                        odds.tpr_summary.gap, odds.fpr_summary.gap
                    ),
                });
            }
            if let Ok(pp) = predictive_parity(outcomes, min_group_size) {
                lines.push(MetricLine {
                    definition: Definition::PredictiveParity,
                    gap: pp.summary.gap,
                    fair: Some(pp.is_fair(tolerance)),
                    detail: String::new(),
                });
            }
            if let Ok(ae) = accuracy_equality(outcomes, min_group_size) {
                lines.push(MetricLine {
                    definition: Definition::AccuracyEquality,
                    gap: ae.summary.gap,
                    fair: Some(ae.is_fair(tolerance)),
                    detail: String::new(),
                });
            }
            let _ = fpr_balance(outcomes, min_group_size); // exercised via equalized odds detail
        }

        let ff = four_fifths(outcomes, min_group_size);
        FairnessReport {
            lines,
            tolerance,
            impact_ratio: ff.impact_ratio,
            four_fifths_passes: ff.passes,
        }
    }

    /// Definitions violated at the report's tolerance.
    pub fn violations(&self) -> Vec<Definition> {
        self.lines
            .iter()
            .filter(|l| l.fair == Some(false))
            .map(|l| l.definition)
            .collect()
    }

    /// Whether every evaluated definition holds.
    pub fn all_fair(&self) -> bool {
        self.lines.iter().all(|l| l.fair != Some(false)) && self.four_fifths_passes
    }
}

impl fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<36} {:>8}  {:<7} detail",
            "definition", "gap", "verdict"
        )?;
        for line in &self.lines {
            let verdict = match line.fair {
                Some(true) => "fair",
                Some(false) => "UNFAIR",
                None => "n/a",
            };
            writeln!(
                f,
                "{:<36} {:>8.4}  {:<7} {}",
                line.definition.name(),
                line.gap,
                verdict,
                line.detail
            )?;
        }
        writeln!(
            f,
            "four-fifths rule: impact ratio {:.3} → {}",
            self.impact_ratio,
            if self.four_fifths_passes {
                "passes"
            } else {
                "FAILS"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_outcomes() -> Outcomes {
        // group a: 8/10 hired; group b: 2/10 hired; labels = merit split
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut codes = Vec::new();
        for i in 0..10 {
            preds.push(i < 8);
            labels.push(i < 5);
            codes.push(0);
        }
        for i in 0..10 {
            preds.push(i < 2);
            labels.push(i < 5);
            codes.push(1);
        }
        Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap()
    }

    #[test]
    fn report_flags_biased_data() {
        let r = FairnessReport::evaluate(&biased_outcomes(), 0.05, 0);
        assert!(!r.all_fair());
        assert!(r.violations().contains(&Definition::DemographicParity));
        assert!(!r.four_fifths_passes);
        assert!((r.impact_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_without_labels_skips_error_rate_metrics() {
        let o = Outcomes::from_slices(&[true, false], None, &[0, 1], &["a", "b"]).unwrap();
        let r = FairnessReport::evaluate(&o, 0.05, 0);
        assert!(!r
            .lines
            .iter()
            .any(|l| l.definition == Definition::EqualOpportunity));
        assert!(r
            .lines
            .iter()
            .any(|l| l.definition == Definition::DemographicParity));
    }

    #[test]
    fn display_renders_all_lines() {
        let r = FairnessReport::evaluate(&biased_outcomes(), 0.05, 0);
        let text = r.to_string();
        assert!(text.contains("demographic parity"));
        assert!(text.contains("UNFAIR"));
        assert!(text.contains("four-fifths"));
    }

    #[test]
    fn fair_data_passes_everything() {
        let preds = vec![true, false, true, false];
        let labels = vec![true, false, true, false];
        let codes = vec![0, 0, 1, 1];
        let o = Outcomes::from_slices(&preds, Some(&labels), &codes, &["a", "b"]).unwrap();
        let r = FairnessReport::evaluate(&o, 0.05, 0);
        // demographic disparity fails (rate == 0.5 is not > 0.5) — every
        // other definition passes, so restrict the check accordingly.
        let hard_violations: Vec<_> = r
            .violations()
            .into_iter()
            .filter(|d| *d != Definition::DemographicDisparity)
            .collect();
        assert!(hard_violations.is_empty(), "{hard_violations:?}");
        assert!(r.four_fifths_passes);
    }
}
