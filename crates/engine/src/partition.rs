//! Group partitions and the partition cache.
//!
//! Sharded execution needs a *row → group* map rather than the
//! *group → rows* map that [`GroupIndex`] materializes: a shard walks a
//! contiguous row range and must resolve each row's group in O(1).
//! [`Partition`] inverts the index once (preserving the sorted key order
//! every metric iterates in), and [`PartitionCache`] memoizes partitions
//! keyed by a dataset fingerprint plus the protected-attribute set, so
//! repeated audits of the same dataset skip the `GroupIndex` build.
//!
//! The cache is **bounded**: at most `capacity` partitions are retained,
//! with least-recently-used eviction, and every hit/miss/insert/eviction
//! is counted — [`PartitionCache::stats`] exposes the [`CacheStats`]
//! snapshot the telemetry layer and capacity tuning rely on.

use crate::error::EngineError;
use fairbridge_metrics::GroupAccumulator;
use fairbridge_tabular::{Column, Dataset, GroupIndex, GroupKey, GroupSpec};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A row-addressable group partition: sorted keys plus a dense
/// `row → group-id` map (ids index into [`Partition::keys`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    keys: Vec<GroupKey>,
    row_groups: Vec<u32>,
}

impl Partition {
    /// Builds the partition for the intersection of `protected` columns.
    pub fn build(ds: &Dataset, protected: &[&str]) -> Result<Partition, EngineError> {
        let spec = GroupSpec::intersection(protected.to_vec());
        let index = GroupIndex::build(ds, &spec)?;
        let keys: Vec<GroupKey> = index.iter().map(|(k, _)| k.clone()).collect();
        let mut row_groups = vec![0u32; index.n_rows()];
        for (gid, (_, rows)) in index.iter().enumerate() {
            for &r in rows {
                row_groups[r] = gid as u32;
            }
        }
        Ok(Partition { keys, row_groups })
    }

    /// The group keys, sorted (the order metrics iterate in).
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.keys.len()
    }

    /// Number of rows in the partitioned dataset.
    pub fn n_rows(&self) -> usize {
        self.row_groups.len()
    }

    /// The group id of a row (index into [`Partition::keys`]).
    pub fn group_of(&self, row: usize) -> usize {
        self.row_groups[row] as usize
    }

    /// An empty accumulator structurally compatible with this partition.
    pub fn empty_accumulator(&self, has_labels: bool) -> GroupAccumulator {
        GroupAccumulator::with_keys(self.keys.clone(), has_labels)
            // fb-lint: allow(P1): keys come from GroupIndex — sorted and unique by construction
            .expect("partition keys are sorted and unique")
    }
}

/// 64-bit FNV-1a fingerprint of the columns that determine a partition:
/// row count plus each protected column's name, kind and codes. Two
/// datasets with identical protected columns collide on purpose — they
/// induce the same partition.
pub fn dataset_fingerprint(ds: &Dataset, protected: &[&str]) -> Result<u64, EngineError> {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(ds.n_rows() as u64).to_le_bytes());
    for name in protected {
        eat(name.as_bytes());
        eat(&[0xff]);
        let col = ds.column(name)?;
        match col {
            Column::Categorical { levels, codes } => {
                eat(&[1]);
                for l in levels {
                    eat(l.as_bytes());
                    eat(&[0xff]);
                }
                for &c in codes {
                    eat(&c.to_le_bytes());
                }
            }
            Column::Boolean(v) => {
                eat(&[2]);
                for &b in v {
                    eat(&[u8::from(b)]);
                }
            }
            Column::Numeric(v) => {
                eat(&[3]);
                for &x in v {
                    eat(&x.to_bits().to_le_bytes());
                }
            }
        }
    }
    Ok(h)
}

/// Cache key: `(dataset fingerprint, protected-attribute set)`.
type CacheKey = (u64, Vec<String>);

/// The outcome of one cache lookup, as the telemetry layer records it.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLookup {
    /// The partition (served or freshly built).
    pub partition: Arc<Partition>,
    /// Whether the cache already held it.
    pub hit: bool,
    /// The dataset fingerprint that keyed the lookup.
    pub fingerprint: u64,
}

/// A point-in-time summary of the cache's effectiveness and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a partition.
    pub misses: u64,
    /// Partitions inserted (== misses, kept separate for clarity).
    pub inserts: u64,
    /// Partitions evicted to respect the capacity bound.
    pub evictions: u64,
    /// Partitions currently retained.
    pub len: usize,
    /// The configured retention bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (NaN when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }
}

/// Default retention bound: generous for realistic audit fleets, small
/// enough that a pathological caller cannot hold every dataset alive.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

struct CacheEntry {
    partition: Arc<Partition>,
    last_used: u64,
}

/// A thread-safe, bounded, LRU-evicting memo of [`Partition`]s keyed by
/// `(dataset fingerprint, protected-attribute set)`.
///
/// The entry map is a `BTreeMap`, not a `HashMap`: the cache sits inside
/// the deterministic audit engine, and an ordered map guarantees that any
/// iteration over it (today: the LRU eviction scan) visits entries in key
/// order on every run — there is no hash-seed randomness anywhere in the
/// audit path (fb-lint rule D1).
#[derive(Debug)]
pub struct PartitionCache {
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    entries: Mutex<BTreeMap<CacheKey, CacheEntry>>,
}

impl std::fmt::Debug for CacheEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("last_used", &self.last_used)
            .finish()
    }
}

impl Default for PartitionCache {
    fn default() -> Self {
        PartitionCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl PartitionCache {
    /// Creates an empty cache with the default capacity
    /// ([`DEFAULT_CACHE_CAPACITY`]).
    pub fn new() -> PartitionCache {
        PartitionCache::default()
    }

    /// Creates an empty cache retaining at most `capacity` partitions
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> PartitionCache {
        PartitionCache {
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Locks the entry map, absorbing poisoning: the map holds only
    /// memoized partitions, so a panic in another thread cannot leave it
    /// logically inconsistent — serving from it stays sound.
    fn entries(&self) -> MutexGuard<'_, BTreeMap<CacheKey, CacheEntry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up (building on miss) the partition for `(ds, protected)`
    /// and reports whether it was a hit — the traced entry point.
    pub fn fetch(&self, ds: &Dataset, protected: &[&str]) -> Result<CacheLookup, EngineError> {
        let fingerprint = dataset_fingerprint(ds, protected)?;
        let key = (
            fingerprint,
            protected
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>(),
        );
        // Stamps only need to be unique and monotone per-counter;
        // cross-thread LRU ordering is settled under the entries mutex,
        // never by the atomic itself.
        // ORDER: Relaxed — uniqueness only, no memory is published.
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(entry) = self.entries().get_mut(&key) {
            entry.last_used = stamp;
            // Readers only ever see this via a point-in-time snapshot.
            // ORDER: Relaxed — monotonic stat counter.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(CacheLookup {
                partition: Arc::clone(&entry.partition),
                hit: true,
                fingerprint,
            });
        }
        // Build outside the lock: partition construction is the
        // expensive part and must not serialize other lookups.
        let built = Arc::new(Partition::build(ds, protected)?);
        // ORDER: Relaxed — stat counter, no data is published through it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries();
        // A racing builder may have inserted meanwhile; keep the first.
        if let Some(entry) = entries.get_mut(&key) {
            entry.last_used = stamp;
            return Ok(CacheLookup {
                partition: Arc::clone(&entry.partition),
                hit: false,
                fingerprint,
            });
        }
        while entries.len() >= self.capacity {
            // Stamps are unique (fetch_add), so the LRU minimum is unique
            // too; iterating the BTreeMap visits keys in sorted order, so
            // even a hypothetical tie would break deterministically.
            let oldest = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    entries.remove(&k);
                    // The entries mutex already orders the eviction.
                    // ORDER: Relaxed — stat counter.
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        entries.insert(
            key,
            CacheEntry {
                partition: Arc::clone(&built),
                last_used: stamp,
            },
        );
        // The insert itself was ordered by the entries mutex above.
        // ORDER: Relaxed — stat counter.
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(CacheLookup {
            partition: built,
            hit: false,
            fingerprint,
        })
    }

    /// Returns the cached partition for `(ds, protected)`, building and
    /// inserting it on first use.
    pub fn get_or_build(
        &self,
        ds: &Dataset,
        protected: &[&str],
    ) -> Result<Arc<Partition>, EngineError> {
        self.fetch(ds, protected).map(|lookup| lookup.partition)
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> CacheStats {
        // A stats snapshot is advisory; the four counters need no
        // mutual consistency, only per-read atomicity.
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // ORDER: Relaxed — advisory stat
            misses: self.misses.load(Ordering::Relaxed), // ORDER: Relaxed — advisory stat
            inserts: self.inserts.load(Ordering::Relaxed), // ORDER: Relaxed — advisory stat
            evictions: self.evictions.load(Ordering::Relaxed), // ORDER: Relaxed — advisory stat
            len: self.len(),
            capacity: self.capacity,
        }
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 1, 0, 1, 1, 0],
                Role::Protected,
            )
            .boolean_with_role(
                "hired",
                vec![true, false, true, false, true, false],
                Role::Label,
            )
            .build()
            .unwrap()
    }

    /// A dataset with `n` rows whose protected column content varies
    /// with `variant`, so each variant fingerprints differently.
    fn variant(variant: u32) -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "g",
                vec!["a", "b", "c"],
                vec![0, 1, 2, variant % 3],
                Role::Protected,
            )
            .boolean_with_role("y", vec![true, false, true, false], Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn partition_inverts_the_group_index() {
        let ds = sample();
        let p = Partition::build(&ds, &["sex"]).unwrap();
        assert_eq!(p.n_groups(), 2);
        assert_eq!(p.n_rows(), 6);
        // keys are sorted: "female" < "male"
        assert_eq!(p.keys()[0], GroupKey(vec!["female".into()]));
        for (row, expected) in [(0, 1), (1, 0), (2, 1), (3, 0), (4, 0), (5, 1)] {
            assert_eq!(p.group_of(row), expected, "row {row}");
        }
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let ds = sample();
        let a = dataset_fingerprint(&ds, &["sex"]).unwrap();
        let b = dataset_fingerprint(&ds, &["sex"]).unwrap();
        assert_eq!(a, b);
        let other = Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 1, 0, 1, 1, 1], // one code differs
                Role::Protected,
            )
            .boolean_with_role(
                "hired",
                vec![true, false, true, false, true, false],
                Role::Label,
            )
            .build()
            .unwrap();
        assert_ne!(a, dataset_fingerprint(&other, &["sex"]).unwrap());
        assert_ne!(
            dataset_fingerprint(&ds, &["sex"]).unwrap(),
            dataset_fingerprint(&ds, &["hired"]).unwrap()
        );
    }

    #[test]
    fn unknown_column_is_a_typed_dataset_error() {
        let err = dataset_fingerprint(&sample(), &["nope"]).unwrap_err();
        assert!(matches!(err, EngineError::Dataset(_)), "{err:?}");
    }

    #[test]
    fn cache_hits_return_the_same_partition_and_count() {
        let ds = sample();
        let cache = PartitionCache::new();
        assert!(cache.is_empty());
        let first = cache.fetch(&ds, &["sex"]).unwrap();
        assert!(!first.hit);
        let second = cache.fetch(&ds, &["sex"]).unwrap();
        assert!(second.hit);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert!(Arc::ptr_eq(&first.partition, &second.partition));
        assert_eq!(cache.len(), 1);
        let _ = cache.get_or_build(&ds, &["hired"]).unwrap();
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 2, 2));
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.capacity, DEFAULT_CACHE_CAPACITY);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used() {
        let cache = PartitionCache::with_capacity(2);
        let (a, b, c) = (variant(0), variant(1), variant(2));
        cache.get_or_build(&a, &["g"]).unwrap();
        cache.get_or_build(&b, &["g"]).unwrap();
        // touch `a` so `b` becomes the LRU entry
        assert!(cache.fetch(&a, &["g"]).unwrap().hit);
        cache.get_or_build(&c, &["g"]).unwrap(); // evicts `b`
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.fetch(&a, &["g"]).unwrap().hit, "a survived");
        assert!(cache.fetch(&c, &["g"]).unwrap().hit, "c survived");
        assert!(!cache.fetch(&b, &["g"]).unwrap().hit, "b was evicted");
    }

    /// A dataset whose fingerprint is unique per `v` (row count differs).
    fn sized(v: usize) -> Dataset {
        let n = 4 + v;
        Dataset::builder()
            .categorical_with_role(
                "g",
                vec!["a", "b"],
                (0..n).map(|i| (i % 2) as u32).collect(),
                Role::Protected,
            )
            .boolean_with_role("y", (0..n).map(|i| i % 2 == 0).collect(), Role::Label)
            .build()
            .unwrap()
    }

    /// Regression for the D1 determinism hazard this module used to
    /// carry: the entry map is ordered (`BTreeMap`), so every observable
    /// of an identical workload — hit pattern, survivors, stats — is
    /// identical run to run, with no hash-seed state to diverge.
    #[test]
    fn cache_observables_are_iteration_order_independent() {
        let workload = [0usize, 1, 2, 0, 1, 3, 0, 4, 1];
        let run = || {
            let cache = PartitionCache::with_capacity(3);
            let hits: Vec<bool> = workload
                .iter()
                .map(|&v| cache.fetch(&sized(v), &["g"]).unwrap().hit)
                .collect();
            let evictions = cache.stats().evictions;
            let probes: Vec<bool> = (0..5)
                .map(|v| cache.fetch(&sized(v), &["g"]).unwrap().hit)
                .collect();
            (hits, probes, evictions)
        };
        let (hits, probes, evictions) = run();
        // Pinned by hand from the LRU semantics: after the workload the
        // cache holds {0, 1, 4}. The probe pass is itself a workload —
        // probe misses insert and evict — so probe 2 evicts the LRU
        // entry and by probe 4 that key is gone again. All of that is
        // part of the pinned, order-independent behaviour.
        assert_eq!(
            hits,
            [false, false, false, true, true, false, true, false, false]
        );
        assert_eq!(probes, [true, true, false, false, false]);
        assert_eq!(evictions, 3);
        // And the whole thing replays bitwise.
        assert_eq!(run(), (hits, probes, evictions));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let cache = PartitionCache::with_capacity(0);
        assert_eq!(cache.stats().capacity, 1);
        cache.get_or_build(&variant(0), &["g"]).unwrap();
        cache.get_or_build(&variant(1), &["g"]).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }
}
