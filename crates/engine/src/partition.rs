//! Group partitions and the partition cache.
//!
//! Sharded execution needs a *row → group* map rather than the
//! *group → rows* map that [`GroupIndex`] materializes: a shard walks a
//! contiguous row range and must resolve each row's group in O(1).
//! [`Partition`] inverts the index once (preserving the sorted key order
//! every metric iterates in), and [`PartitionCache`] memoizes partitions
//! keyed by a dataset fingerprint plus the protected-attribute set, so
//! repeated audits of the same dataset skip the `GroupIndex` build.

use fairbridge_metrics::GroupAccumulator;
use fairbridge_tabular::{Column, Dataset, GroupIndex, GroupKey, GroupSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A row-addressable group partition: sorted keys plus a dense
/// `row → group-id` map (ids index into [`Partition::keys`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    keys: Vec<GroupKey>,
    row_groups: Vec<u32>,
}

impl Partition {
    /// Builds the partition for the intersection of `protected` columns.
    pub fn build(ds: &Dataset, protected: &[&str]) -> Result<Partition, String> {
        let spec = GroupSpec::intersection(protected.to_vec());
        let index = GroupIndex::build(ds, &spec).map_err(|e| e.to_string())?;
        let keys: Vec<GroupKey> = index.iter().map(|(k, _)| k.clone()).collect();
        let mut row_groups = vec![0u32; index.n_rows()];
        for (gid, (_, rows)) in index.iter().enumerate() {
            for &r in rows {
                row_groups[r] = gid as u32;
            }
        }
        Ok(Partition { keys, row_groups })
    }

    /// The group keys, sorted (the order metrics iterate in).
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.keys.len()
    }

    /// Number of rows in the partitioned dataset.
    pub fn n_rows(&self) -> usize {
        self.row_groups.len()
    }

    /// The group id of a row (index into [`Partition::keys`]).
    pub fn group_of(&self, row: usize) -> usize {
        self.row_groups[row] as usize
    }

    /// An empty accumulator structurally compatible with this partition.
    pub fn empty_accumulator(&self, has_labels: bool) -> GroupAccumulator {
        GroupAccumulator::with_keys(self.keys.clone(), has_labels)
            .expect("partition keys are sorted and unique")
    }
}

/// 64-bit FNV-1a fingerprint of the columns that determine a partition:
/// row count plus each protected column's name, kind and codes. Two
/// datasets with identical protected columns collide on purpose — they
/// induce the same partition.
pub fn dataset_fingerprint(ds: &Dataset, protected: &[&str]) -> Result<u64, String> {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(ds.n_rows() as u64).to_le_bytes());
    for name in protected {
        eat(name.as_bytes());
        eat(&[0xff]);
        let col = ds.column(name).map_err(|e| e.to_string())?;
        match col {
            Column::Categorical { levels, codes } => {
                eat(&[1]);
                for l in levels {
                    eat(l.as_bytes());
                    eat(&[0xff]);
                }
                for &c in codes {
                    eat(&c.to_le_bytes());
                }
            }
            Column::Boolean(v) => {
                eat(&[2]);
                for &b in v {
                    eat(&[u8::from(b)]);
                }
            }
            Column::Numeric(v) => {
                eat(&[3]);
                for &x in v {
                    eat(&x.to_bits().to_le_bytes());
                }
            }
        }
    }
    Ok(h)
}

/// Cache key: `(dataset fingerprint, protected-attribute set)`.
type CacheKey = (u64, Vec<String>);

/// A thread-safe memo of [`Partition`]s keyed by
/// `(dataset fingerprint, protected-attribute set)`.
#[derive(Debug, Default)]
pub struct PartitionCache {
    entries: Mutex<HashMap<CacheKey, Arc<Partition>>>,
}

impl PartitionCache {
    /// Creates an empty cache.
    pub fn new() -> PartitionCache {
        PartitionCache::default()
    }

    /// Returns the cached partition for `(ds, protected)`, building and
    /// inserting it on first use.
    pub fn get_or_build(&self, ds: &Dataset, protected: &[&str]) -> Result<Arc<Partition>, String> {
        let fp = dataset_fingerprint(ds, protected)?;
        let key = (
            fp,
            protected
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>(),
        );
        if let Some(hit) = self.entries.lock().expect("cache lock").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(Partition::build(ds, protected)?);
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 1, 0, 1, 1, 0],
                Role::Protected,
            )
            .boolean_with_role(
                "hired",
                vec![true, false, true, false, true, false],
                Role::Label,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn partition_inverts_the_group_index() {
        let ds = sample();
        let p = Partition::build(&ds, &["sex"]).unwrap();
        assert_eq!(p.n_groups(), 2);
        assert_eq!(p.n_rows(), 6);
        // keys are sorted: "female" < "male"
        assert_eq!(p.keys()[0], GroupKey(vec!["female".into()]));
        for (row, expected) in [(0, 1), (1, 0), (2, 1), (3, 0), (4, 0), (5, 1)] {
            assert_eq!(p.group_of(row), expected, "row {row}");
        }
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let ds = sample();
        let a = dataset_fingerprint(&ds, &["sex"]).unwrap();
        let b = dataset_fingerprint(&ds, &["sex"]).unwrap();
        assert_eq!(a, b);
        let other = Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 1, 0, 1, 1, 1], // one code differs
                Role::Protected,
            )
            .boolean_with_role(
                "hired",
                vec![true, false, true, false, true, false],
                Role::Label,
            )
            .build()
            .unwrap();
        assert_ne!(a, dataset_fingerprint(&other, &["sex"]).unwrap());
        assert_ne!(
            dataset_fingerprint(&ds, &["sex"]).unwrap(),
            dataset_fingerprint(&ds, &["hired"]).unwrap()
        );
    }

    #[test]
    fn cache_hits_return_the_same_partition() {
        let ds = sample();
        let cache = PartitionCache::new();
        assert!(cache.is_empty());
        let first = cache.get_or_build(&ds, &["sex"]).unwrap();
        let second = cache.get_or_build(&ds, &["sex"]).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        let _ = cache.get_or_build(&ds, &["hired"]).unwrap();
        assert_eq!(cache.len(), 2);
    }
}
