//! The engine's typed error, replacing the stringly `Result<_, String>`
//! the executor used to return.
//!
//! Three failure families cover everything the engine can hit: the
//! dataset refused an access (missing column/role, type mismatch —
//! wrapped [`fairbridge_tabular::Error`] with full context), the caller
//! handed in slices whose lengths disagree with the partition, or a
//! downstream stage (accumulator merge, pipeline support stages)
//! reported a failure.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the sharded audit executor and partition cache.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The dataset rejected an access (unknown column, missing role,
    /// type mismatch, ...).
    Dataset(fairbridge_tabular::Error),
    /// Caller-supplied slices disagree in length with the partitioned
    /// dataset.
    LengthMismatch {
        /// What was mis-sized (e.g. `"decisions"`).
        what: &'static str,
        /// The length the partition requires.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// A downstream stage failed (accumulator merge, pipeline support
    /// stages, partition build).
    Stage(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Dataset(e) => write!(f, "dataset access failed: {e}"),
            EngineError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} length {got} does not match the partitioned dataset ({expected} rows)"
            ),
            EngineError::Stage(msg) => write!(f, "audit stage failed: {msg}"),
        }
    }
}

impl StdError for EngineError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            EngineError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fairbridge_tabular::Error> for EngineError {
    fn from(e: fairbridge_tabular::Error) -> EngineError {
        EngineError::Dataset(e)
    }
}

impl From<String> for EngineError {
    fn from(msg: String) -> EngineError {
        EngineError::Stage(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_each_family() {
        let d = EngineError::from(fairbridge_tabular::Error::UnknownColumn("sex".into()));
        assert!(d.to_string().contains("dataset access failed"));
        assert!(d.to_string().contains("sex"));
        assert!(StdError::source(&d).is_some());

        let l = EngineError::LengthMismatch {
            what: "decisions",
            expected: 10,
            got: 3,
        };
        assert_eq!(
            l.to_string(),
            "decisions length 3 does not match the partitioned dataset (10 rows)"
        );
        assert!(StdError::source(&l).is_none());

        let s = EngineError::from("merge failed".to_owned());
        assert_eq!(s.to_string(), "audit stage failed: merge failed");
    }
}
