//! The sharded parallel audit executor.
//!
//! [`Engine::audit`] produces the same [`AuditReport`] as
//! [`AuditPipeline::run`], but computes the Section III group metrics by
//! fanning contiguous row shards out over scoped threads. Each shard
//! fills its own [`GroupAccumulator`]; the shards are merged **in shard
//! index order**, so the merged counts — and therefore every metric —
//! are identical for any thread count (the counts are integers, and the
//! finalize divides once per group in sorted key order, exactly like the
//! sequential path).
//!
//! Shard boundaries depend only on the row count and the configured
//! shard size, never on the number of workers: determinism is structural,
//! not scheduled.

use crate::partition::{Partition, PartitionCache};
use fairbridge_audit::{AuditConfig, AuditPipeline, AuditReport};
use fairbridge_metrics::{from_accumulator, GroupAccumulator};
use fairbridge_tabular::Dataset;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Execution parameters of the [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub num_threads: usize,
    /// Rows per shard. Boundaries depend only on this and the row count,
    /// so results are identical across thread counts.
    pub shard_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_threads: 0,
            shard_size: 8192,
        }
    }
}

impl EngineConfig {
    /// A config pinned to `n` worker threads.
    pub fn with_threads(n: usize) -> EngineConfig {
        EngineConfig {
            num_threads: n,
            ..EngineConfig::default()
        }
    }
}

/// What to audit: the pipeline configuration plus the outcome binding.
#[derive(Debug, Clone)]
pub struct AuditSpec {
    /// Stage configuration (tolerance, subgroup depth, proxy threshold…).
    pub config: AuditConfig,
    /// Protected columns whose intersection defines the groups.
    pub protected: Vec<String>,
    /// Audit the historical labels (`true`) or the prediction column.
    pub use_labels: bool,
}

impl AuditSpec {
    /// A spec with the default [`AuditConfig`].
    pub fn new(protected: &[&str], use_labels: bool) -> AuditSpec {
        AuditSpec {
            config: AuditConfig::default(),
            protected: protected.iter().map(|s| (*s).to_owned()).collect(),
            use_labels,
        }
    }
}

/// The sharded audit executor with a partition cache.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: PartitionCache,
}

impl Engine {
    /// Creates an engine with the given execution config.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: PartitionCache::new(),
        }
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        if self.config.num_threads > 0 {
            self.config.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Cached partitions accumulated so far.
    pub fn cached_partitions(&self) -> usize {
        self.cache.len()
    }

    /// The partition for `(ds, protected)` — cached, building on first
    /// use. Exposed so callers can drive [`Engine::accumulate`] directly
    /// (e.g. to time the scan without the non-metric pipeline stages).
    pub fn partition(&self, ds: &Dataset, protected: &[&str]) -> Result<Arc<Partition>, String> {
        self.cache.get_or_build(ds, protected)
    }

    /// Runs the full audit, sharding the metric scan across workers.
    ///
    /// The result matches [`AuditPipeline::run`] with the same
    /// [`AuditConfig`] exactly — including bitwise-identical metric gaps —
    /// for every thread count.
    pub fn audit(&self, ds: &Dataset, spec: &AuditSpec) -> Result<AuditReport, String> {
        let protected: Vec<&str> = spec.protected.iter().map(String::as_str).collect();
        let partition = self.cache.get_or_build(ds, &protected)?;

        // Bind outcomes the way the sequential pipeline does: auditing
        // historical labels treats them as the decisions (and leaves no
        // ground truth), auditing predictions attaches labels if present.
        let (decisions, labels): (Vec<bool>, Option<Vec<bool>>) = if spec.use_labels {
            (ds.labels().map_err(|e| e.to_string())?.to_vec(), None)
        } else {
            (
                ds.predictions().map_err(|e| e.to_string())?.to_vec(),
                ds.labels().ok().map(<[bool]>::to_vec),
            )
        };

        let acc = self.accumulate(&partition, &decisions, labels.as_deref())?;
        let metrics = from_accumulator(&acc, spec.config.tolerance, spec.config.min_group_size);

        // The non-metric stages (proxy ranking, subgroup search,
        // representation audit) run sequentially through the exact
        // pipeline code path.
        let stages =
            AuditPipeline::new(spec.config.clone()).support_stages(ds, &protected, &decisions)?;
        Ok(stages.into_report(metrics))
    }

    /// Scans `decisions` (and optional `labels`) into one merged
    /// accumulator by fanning shards out over scoped worker threads.
    pub fn accumulate(
        &self,
        partition: &Arc<Partition>,
        decisions: &[bool],
        labels: Option<&[bool]>,
    ) -> Result<GroupAccumulator, String> {
        let n = decisions.len();
        if n != partition.n_rows() {
            return Err("decisions length must match the partitioned dataset".to_owned());
        }
        if labels.is_some_and(|l| l.len() != n) {
            return Err("labels length must match decisions".to_owned());
        }
        let has_labels = labels.is_some();
        let shard_size = self.config.shard_size.max(1);
        let n_shards = n.div_ceil(shard_size).max(1);
        let workers = self.threads().min(n_shards);

        let fill = |acc: &mut GroupAccumulator, range: std::ops::Range<usize>| {
            for row in range {
                acc.observe(
                    partition.group_of(row),
                    decisions[row],
                    labels.map(|l| l[row]),
                );
            }
        };

        if workers <= 1 {
            let mut acc = partition.empty_accumulator(has_labels);
            fill(&mut acc, 0..n);
            return Ok(acc);
        }

        // Workers pull shard indices from a shared counter; each returns
        // its (shard index, accumulator) pairs and the merge happens on
        // this thread in ascending shard order.
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<GroupAccumulator>> = vec![None; n_shards];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, GroupAccumulator)> = Vec::new();
                        loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            if s >= n_shards {
                                break;
                            }
                            let mut acc = partition.empty_accumulator(has_labels);
                            let start = s * shard_size;
                            let end = (start + shard_size).min(n);
                            fill(&mut acc, start..end);
                            done.push((s, acc));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (s, acc) in h.join().expect("shard worker panicked") {
                    slots[s] = Some(acc);
                }
            }
        });

        let mut merged = partition.empty_accumulator(has_labels);
        for slot in slots {
            merged.merge(&slot.expect("every shard filled"))?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_metrics::outcome::Outcomes;
    use fairbridge_tabular::Role;

    fn dataset(n: usize) -> Dataset {
        let codes: Vec<u32> = (0..n).map(|i| (i % 3 == 0) as u32).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let preds: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
        Dataset::builder()
            .categorical_with_role("g", vec!["a", "b"], codes, Role::Protected)
            .boolean_with_role("y", labels, Role::Label)
            .boolean_with_role("r", preds, Role::Prediction)
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_accumulation_matches_sequential_for_any_thread_count() {
        let ds = dataset(1003); // not a multiple of the shard size
        let outcomes = Outcomes::from_dataset(&ds, &["g"]).unwrap();
        let reference = GroupAccumulator::from_outcomes(&outcomes);
        for threads in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig {
                num_threads: threads,
                shard_size: 64,
            });
            let partition = engine.cache.get_or_build(&ds, &["g"]).unwrap();
            let labels = ds.labels().unwrap().to_vec();
            let acc = engine
                .accumulate(&partition, ds.predictions().unwrap(), Some(&labels))
                .unwrap();
            assert_eq!(acc, reference, "{threads} threads");
        }
    }

    #[test]
    fn audit_reuses_the_partition_cache() {
        let ds = dataset(200);
        let engine = Engine::new(EngineConfig::with_threads(2));
        let spec = AuditSpec::new(&["g"], false);
        engine.audit(&ds, &spec).unwrap();
        assert_eq!(engine.cached_partitions(), 1);
        engine.audit(&ds, &spec).unwrap();
        assert_eq!(engine.cached_partitions(), 1);
    }

    #[test]
    fn accumulate_validates_lengths() {
        let ds = dataset(50);
        let engine = Engine::new(EngineConfig::default());
        let partition = engine.cache.get_or_build(&ds, &["g"]).unwrap();
        assert!(engine.accumulate(&partition, &[true; 3], None).is_err());
        assert!(engine
            .accumulate(&partition, &[true; 50], Some(&[false; 3]))
            .is_err());
    }
}
