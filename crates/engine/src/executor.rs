//! The sharded parallel audit executor.
//!
//! [`Engine::audit`] produces the same [`AuditReport`] as
//! [`AuditPipeline::run`], but computes the Section III group metrics by
//! fanning contiguous row shards out over scoped threads. Each shard
//! fills its own [`GroupAccumulator`]; the shards are merged **in shard
//! index order**, so the merged counts — and therefore every metric —
//! are identical for any thread count (the counts are integers, and the
//! finalize divides once per group in sorted key order, exactly like the
//! sequential path).
//!
//! Shard boundaries depend only on the row count and the configured
//! shard size, never on the number of workers: determinism is structural,
//! not scheduled.
//!
//! The executor is **instrumented**: attach a
//! [`Telemetry`] via [`Engine::with_telemetry`]
//! and every audit leaves an evidential trail — an `audit_started` event,
//! `engine.partition` / `engine.scan` / `engine.merge` /
//! `engine.finalize` / `engine.support_stages` spans, a
//! `shard_scanned` event per shard (with per-shard wall time, emitted
//! from the worker that scanned it), and cache hit/miss events with the
//! dataset fingerprint. With the default disabled telemetry the
//! instrumentation costs one branch per record point.

use crate::error::EngineError;
use crate::partition::{CacheStats, Partition, PartitionCache};
use fairbridge_audit::{AuditConfig, AuditPipeline, AuditReport};
use fairbridge_metrics::{from_accumulator, GroupAccumulator};
use fairbridge_obs::{FairnessEvent, Telemetry};
use fairbridge_tabular::par::{ordered_parallel_map, size_aware_workers};
use fairbridge_tabular::Dataset;
use std::sync::Arc;

/// Execution parameters of the [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub num_threads: usize,
    /// Rows per shard. Boundaries depend only on this and the row count,
    /// so results are identical across thread counts.
    pub shard_size: usize,
    /// Partitions the [`PartitionCache`] retains before LRU eviction.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_threads: 0,
            shard_size: 8192,
            cache_capacity: crate::partition::DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// A config pinned to `n` worker threads.
    pub fn with_threads(n: usize) -> EngineConfig {
        EngineConfig {
            num_threads: n,
            ..EngineConfig::default()
        }
    }
}

/// What to audit: the pipeline configuration plus the outcome binding.
#[derive(Debug, Clone)]
pub struct AuditSpec {
    /// Stage configuration (tolerance, subgroup depth, proxy threshold…).
    pub config: AuditConfig,
    /// Protected columns whose intersection defines the groups.
    pub protected: Vec<String>,
    /// Audit the historical labels (`true`) or the prediction column.
    pub use_labels: bool,
}

impl AuditSpec {
    /// A spec with the default [`AuditConfig`].
    pub fn new(protected: &[&str], use_labels: bool) -> AuditSpec {
        AuditSpec {
            config: AuditConfig::default(),
            protected: protected.iter().map(|s| (*s).to_owned()).collect(),
            use_labels,
        }
    }
}

/// The sharded audit executor with a partition cache.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: PartitionCache,
    telemetry: Telemetry,
}

impl Engine {
    /// Creates an engine with the given execution config and telemetry
    /// disabled.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::with_telemetry(config, Telemetry::off())
    }

    /// Creates an engine whose audits record spans, counters and
    /// fairness events through `telemetry`.
    pub fn with_telemetry(config: EngineConfig, telemetry: Telemetry) -> Engine {
        let cache = PartitionCache::with_capacity(config.cache_capacity);
        Engine {
            config,
            cache,
            telemetry,
        }
    }

    /// The telemetry handle this engine records through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        if self.config.num_threads > 0 {
            self.config.num_threads
        } else {
            fairbridge_tabular::par::available_workers()
        }
    }

    /// Cached partitions accumulated so far.
    pub fn cached_partitions(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss/insert/eviction statistics of the partition cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The partition for `(ds, protected)` — cached, building on first
    /// use. Exposed so callers can drive [`Engine::accumulate`] directly
    /// (e.g. to time the scan without the non-metric pipeline stages).
    pub fn partition(
        &self,
        ds: &Dataset,
        protected: &[&str],
    ) -> Result<Arc<Partition>, EngineError> {
        self.partition_traced(ds, protected)
    }

    /// Cache lookup plus hit/miss telemetry.
    fn partition_traced(
        &self,
        ds: &Dataset,
        protected: &[&str],
    ) -> Result<Arc<Partition>, EngineError> {
        let _span = self.telemetry.span("engine.partition");
        let lookup = self.cache.fetch(ds, protected)?;
        if self.telemetry.is_enabled() {
            let event = if lookup.hit {
                self.telemetry.counter("engine.partition_cache.hits").incr();
                FairnessEvent::PartitionCacheHit {
                    fingerprint: lookup.fingerprint,
                }
            } else {
                self.telemetry
                    .counter("engine.partition_cache.misses")
                    .incr();
                FairnessEvent::PartitionCacheMiss {
                    fingerprint: lookup.fingerprint,
                }
            };
            self.telemetry.emit(event);
        }
        Ok(lookup.partition)
    }

    /// Runs the full audit, sharding the metric scan across workers.
    ///
    /// The result matches [`AuditPipeline::run`] with the same
    /// [`AuditConfig`] exactly — including bitwise-identical metric gaps —
    /// for every thread count.
    pub fn audit(&self, ds: &Dataset, spec: &AuditSpec) -> Result<AuditReport, EngineError> {
        let _audit_span = self.telemetry.span("engine.audit");
        if self.telemetry.is_enabled() {
            self.telemetry.emit(FairnessEvent::AuditStarted {
                rows: ds.n_rows(),
                protected: spec.protected.clone(),
                use_labels: spec.use_labels,
            });
            self.telemetry.counter("engine.audits").incr();
        }
        let protected: Vec<&str> = spec.protected.iter().map(String::as_str).collect();
        let partition = self.partition_traced(ds, &protected)?;

        // Bind outcomes the way the sequential pipeline does: auditing
        // historical labels treats them as the decisions (and leaves no
        // ground truth), auditing predictions attaches labels if present.
        let (decisions, labels): (Vec<bool>, Option<Vec<bool>>) = if spec.use_labels {
            (ds.labels()?.to_vec(), None)
        } else {
            (
                ds.predictions()?.to_vec(),
                ds.labels().ok().map(<[bool]>::to_vec),
            )
        };

        let t_scan = self.telemetry.now_ns();
        let acc = self.accumulate(&partition, &decisions, labels.as_deref())?;
        if self.telemetry.is_enabled() {
            // The scan-phase duration as a histogram, not just spans:
            // the serving layer's latency decomposition reads this back
            // out of `/metrics` without parsing the event stream.
            self.telemetry
                .histogram("engine.scan_ns")
                .record(self.telemetry.now_ns().saturating_sub(t_scan));
        }
        let metrics = {
            let _span = self.telemetry.span("engine.finalize");
            from_accumulator(&acc, spec.config.tolerance, spec.config.min_group_size)
        };

        // The non-metric stages (proxy ranking, subgroup search,
        // representation audit) run sequentially through the exact
        // pipeline code path — traced under their own span so the trail
        // shows where audit time actually goes.
        let stages = {
            let _span = self.telemetry.span("engine.support_stages");
            AuditPipeline::new(spec.config.clone())
                .with_telemetry(self.telemetry.clone())
                .support_stages(ds, &protected, &decisions)?
        };
        Ok(stages.into_report(metrics))
    }

    /// Scans `decisions` (and optional `labels`) into one merged
    /// accumulator by fanning shards out over scoped worker threads.
    pub fn accumulate(
        &self,
        partition: &Arc<Partition>,
        decisions: &[bool],
        labels: Option<&[bool]>,
    ) -> Result<GroupAccumulator, EngineError> {
        let n = decisions.len();
        if n != partition.n_rows() {
            return Err(EngineError::LengthMismatch {
                what: "decisions",
                expected: partition.n_rows(),
                got: n,
            });
        }
        if let Some(l) = labels {
            if l.len() != n {
                return Err(EngineError::LengthMismatch {
                    what: "labels",
                    expected: n,
                    got: l.len(),
                });
            }
        }
        let has_labels = labels.is_some();
        let shard_size = self.config.shard_size.max(1);
        let n_shards = n.div_ceil(shard_size).max(1);
        // Size-aware dispatch: one unit ≈ one row observed. Small
        // datasets (daemon-sized audit requests included) scan inline;
        // accumulator shapes and merge order are shard-derived either
        // way, so the result is identical for any worker count.
        let workers = size_aware_workers(
            self.threads(),
            n_shards,
            n,
            fairbridge_tabular::tune::tuned_min_units(
                "par.min_units_per_worker",
                fairbridge_tabular::par::MIN_UNITS_PER_WORKER,
            ),
        );
        let recording = self.telemetry.is_enabled();

        let scan_span = self.telemetry.span("engine.scan");
        let scan_span_id = scan_span.id();
        if recording {
            self.telemetry.counter("engine.rows_scanned").add(n as u64);
            self.telemetry
                .counter("engine.shards_scanned")
                .add(n_shards as u64);
        }

        let fill = |acc: &mut GroupAccumulator, range: std::ops::Range<usize>| {
            for row in range {
                acc.observe(
                    partition.group_of(row),
                    decisions[row],
                    labels.map(|l| l[row]),
                );
            }
        };
        // Worker-side per-shard scan with the optional `shard_scanned`
        // record; the event is attributed to the coordinator's scan span.
        let scan_shard = |s: usize, acc: &mut GroupAccumulator| {
            let start = s * shard_size;
            let end = (start + shard_size).min(n);
            if recording {
                // Timing goes through the telemetry clock, never a raw
                // `Instant::now()`: audit code stays free of wall-clock
                // reads (fb-lint rule D3) and pays nothing when disabled.
                let t0 = self.telemetry.now_ns();
                fill(acc, start..end);
                self.telemetry.emit_in_span(
                    scan_span_id,
                    FairnessEvent::ShardScanned {
                        shard: s,
                        rows: end - start,
                        elapsed_ns: self.telemetry.now_ns().saturating_sub(t0),
                    },
                );
            } else {
                fill(acc, start..end);
            }
        };

        if workers <= 1 {
            let mut acc = partition.empty_accumulator(has_labels);
            for s in 0..n_shards {
                scan_shard(s, &mut acc);
            }
            drop(scan_span);
            // Serial dispatch accumulates into one partial, so the merge
            // is trivially done — the span still opens so the evidential
            // trail keeps the same phase structure at every size.
            let _merge_span = self.telemetry.span("engine.merge");
            return Ok(acc);
        }

        // Workers pull shard indices from a shared counter and the merge
        // happens on this thread in ascending shard order — the shared
        // deterministic fan-out, same as the subgroup lattice.
        let shard_accs = ordered_parallel_map(n_shards, workers, |s| {
            let mut acc = partition.empty_accumulator(has_labels);
            scan_shard(s, &mut acc);
            acc
        });
        drop(scan_span);

        let _merge_span = self.telemetry.span("engine.merge");
        let mut merged = partition.empty_accumulator(has_labels);
        for acc in &shard_accs {
            merged.merge(acc)?;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_metrics::outcome::Outcomes;
    use fairbridge_obs::{EventKind, RingSink};
    use fairbridge_tabular::Role;

    fn dataset(n: usize) -> Dataset {
        let codes: Vec<u32> = (0..n).map(|i| (i % 3 == 0) as u32).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let preds: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
        Dataset::builder()
            .categorical_with_role("g", vec!["a", "b"], codes, Role::Protected)
            .boolean_with_role("y", labels, Role::Label)
            .boolean_with_role("r", preds, Role::Prediction)
            .build()
            .unwrap()
    }

    #[test]
    fn sharded_accumulation_matches_sequential_for_any_thread_count() {
        let ds = dataset(1003); // not a multiple of the shard size
        let outcomes = Outcomes::from_dataset(&ds, &["g"]).unwrap();
        let reference = GroupAccumulator::from_outcomes(&outcomes);
        for threads in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig {
                num_threads: threads,
                shard_size: 64,
                ..EngineConfig::default()
            });
            let partition = engine.cache.get_or_build(&ds, &["g"]).unwrap();
            let labels = ds.labels().unwrap().to_vec();
            let acc = engine
                .accumulate(&partition, ds.predictions().unwrap(), Some(&labels))
                .unwrap();
            assert_eq!(acc, reference, "{threads} threads");
        }
    }

    #[test]
    fn audit_reuses_the_partition_cache() {
        let ds = dataset(200);
        let engine = Engine::new(EngineConfig::with_threads(2));
        let spec = AuditSpec::new(&["g"], false);
        engine.audit(&ds, &spec).unwrap();
        assert_eq!(engine.cached_partitions(), 1);
        engine.audit(&ds, &spec).unwrap();
        assert_eq!(engine.cached_partitions(), 1);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn accumulate_validates_lengths_with_typed_errors() {
        let ds = dataset(50);
        let engine = Engine::new(EngineConfig::default());
        let partition = engine.cache.get_or_build(&ds, &["g"]).unwrap();
        let err = engine.accumulate(&partition, &[true; 3], None).unwrap_err();
        assert_eq!(
            err,
            EngineError::LengthMismatch {
                what: "decisions",
                expected: 50,
                got: 3
            }
        );
        let err = engine
            .accumulate(&partition, &[true; 50], Some(&[false; 3]))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::LengthMismatch {
                what: "labels",
                expected: 50,
                got: 3
            }
        );
    }

    #[test]
    fn traced_audit_emits_the_shard_trail_and_matches_untraced() {
        let ds = dataset(1000);
        let spec = AuditSpec::new(&["g"], false);
        let untraced = Engine::new(EngineConfig {
            num_threads: 2,
            shard_size: 128,
            ..EngineConfig::default()
        })
        .audit(&ds, &spec)
        .unwrap();

        let ring = Arc::new(RingSink::with_capacity(4096));
        let telemetry = Telemetry::new(ring.clone());
        let engine = Engine::with_telemetry(
            EngineConfig {
                num_threads: 2,
                shard_size: 128,
                ..EngineConfig::default()
            },
            telemetry,
        );
        let traced = engine.audit(&ds, &spec).unwrap();
        assert_eq!(
            traced.to_string(),
            untraced.to_string(),
            "telemetry must not perturb the audit"
        );

        let events = ring.events();
        let shard_events = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Fairness(FairnessEvent::ShardScanned { .. })
                )
            })
            .count();
        assert_eq!(shard_events, 1000usize.div_ceil(128), "one event per shard");
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::Fairness(FairnessEvent::AuditStarted { rows: 1000, .. })
        )));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::Fairness(FairnessEvent::PartitionCacheMiss { .. })
        )));
    }

    #[test]
    fn disabled_telemetry_emits_nothing_during_audit() {
        let ds = dataset(300);
        let engine = Engine::new(EngineConfig::with_threads(2));
        engine.audit(&ds, &AuditSpec::new(&["g"], false)).unwrap();
        assert_eq!(engine.telemetry().events_emitted(), 0);
    }
}
