//! Streaming fairness monitoring over tumbling windows.
//!
//! Deployed systems drift: the paper's Section IV.D feedback loop shows
//! how a model's own decisions reshape the applicant population until
//! disparity is self-sustaining. Post-hoc audits see this only after the
//! fact; [`StreamingMonitor`] watches the live decision stream instead.
//!
//! Decisions are ingested into the *current* tumbling window — a
//! [`GroupAccumulator`] — which is sealed every `window_size` events and
//! pushed into a bounded ring of completed windows. [`snapshot`]
//! finalizes each retained window into a full windowed
//! [`FairnessReport`] and raises a **drift flag** when the
//! demographic-parity gap stays across `drift_threshold` for at least
//! two consecutive completed windows (a sustained breach, not a
//! single-window blip).
//!
//! [`snapshot`]: StreamingMonitor::snapshot

use fairbridge_metrics::outcome::GapSummary;
use fairbridge_metrics::{from_accumulator, FairnessReport, GroupAccumulator};
use fairbridge_obs::{FairnessEvent, Telemetry};
use fairbridge_tabular::GroupKey;
use std::collections::VecDeque;

/// Windowing and verdict parameters of the [`StreamingMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Events per tumbling window.
    pub window_size: usize,
    /// Completed windows retained in the ring (oldest dropped first).
    pub retained_windows: usize,
    /// Gap tolerance for per-window fairness verdicts.
    pub tolerance: f64,
    /// Minimum group size entering per-window gap summaries.
    pub min_group_size: usize,
    /// Demographic-parity gap level that counts as a breach; two
    /// consecutive breached windows raise the drift flag.
    pub drift_threshold: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_size: 500,
            retained_windows: 8,
            tolerance: 0.05,
            min_group_size: 10,
            drift_threshold: 0.10,
        }
    }
}

/// One finalized tumbling window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Position in the stream (0 = first window ever sealed).
    pub index: usize,
    /// Events in the window.
    pub n: u64,
    /// Demographic-parity gap of the window.
    pub parity_gap: f64,
    /// The full windowed metric evaluation.
    pub report: FairnessReport,
}

/// The monitor's view of the stream at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// Retained windows, oldest first.
    pub windows: Vec<WindowSummary>,
    /// Whether the parity gap breached the threshold in ≥2 consecutive
    /// retained windows.
    pub drift: bool,
    /// Events accumulated in the still-open window.
    pub current_fill: u64,
}

impl MonitorSnapshot {
    /// Parity gap of the most recent completed window (NaN when none).
    pub fn latest_gap(&self) -> f64 {
        self.windows.last().map_or(f64::NAN, |w| w.parity_gap)
    }
}

/// A streaming fairness monitor over tumbling windows.
#[derive(Debug)]
pub struct StreamingMonitor {
    config: MonitorConfig,
    keys: Vec<GroupKey>,
    has_labels: bool,
    completed: VecDeque<(usize, GroupAccumulator)>,
    current: GroupAccumulator,
    sealed: usize,
    /// Maps an ingested group *code* to its index in the sorted `keys`
    /// (identity for [`StreamingMonitor::new`]; a permutation for
    /// [`StreamingMonitor::over_levels`], whose levels arrive in code
    /// order, not sorted order).
    code_map: Vec<usize>,
    telemetry: Telemetry,
    /// Consecutive just-sealed windows whose gap breached the threshold
    /// (drives the live `drift_flagged` event).
    breach_run: usize,
    /// Whether the drift flag has already been raised for the current
    /// breach run (the alarm fires once per sustained episode).
    in_drift: bool,
}

impl StreamingMonitor {
    /// Creates a monitor over the given (sorted, unique) group keys.
    /// `has_labels` fixes whether events carry ground truth.
    pub fn new(
        keys: Vec<GroupKey>,
        has_labels: bool,
        config: MonitorConfig,
    ) -> Result<StreamingMonitor, String> {
        if config.window_size == 0 {
            return Err("window_size must be positive".to_owned());
        }
        if config.retained_windows == 0 {
            return Err("retained_windows must be positive".to_owned());
        }
        let current = GroupAccumulator::with_keys(keys.clone(), has_labels)?;
        let code_map = (0..keys.len()).collect();
        Ok(StreamingMonitor {
            config,
            keys,
            has_labels,
            completed: VecDeque::new(),
            current,
            sealed: 0,
            code_map,
            telemetry: Telemetry::off(),
            breach_run: 0,
            in_drift: false,
        })
    }

    /// Emits a `window_closed` event per sealed window and a
    /// `drift_flagged` event the moment a breach is sustained for two
    /// consecutive windows, through `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> StreamingMonitor {
        self.telemetry = telemetry;
        self
    }

    /// Convenience: a monitor whose groups are the level names of a
    /// single categorical attribute, **in code order** — so group code
    /// `i` streamed to [`StreamingMonitor::ingest_batch`] means
    /// `levels[i]`, matching e.g. the Section IV.D feedback-loop
    /// simulator's codes. Level names must be distinct.
    pub fn over_levels(
        levels: &[&str],
        has_labels: bool,
        config: MonitorConfig,
    ) -> Result<StreamingMonitor, String> {
        let mut keys: Vec<GroupKey> = levels
            .iter()
            .map(|l| GroupKey(vec![(*l).to_owned()]))
            .collect();
        keys.sort();
        let mut monitor = StreamingMonitor::new(keys, has_labels, config)?;
        monitor.code_map = levels
            .iter()
            .map(|l| {
                monitor
                    .keys
                    .binary_search(&GroupKey(vec![(*l).to_owned()]))
                    .expect("level present by construction")
            })
            .collect();
        Ok(monitor)
    }

    /// The monitored group keys, sorted.
    pub fn keys(&self) -> &[GroupKey] {
        &self.keys
    }

    /// Completed windows currently retained.
    pub fn retained(&self) -> usize {
        self.completed.len()
    }

    /// Events in the still-open window.
    pub fn current_fill(&self) -> u64 {
        self.current.total()
    }

    /// Total windows sealed since the stream began.
    pub fn windows_sealed(&self) -> usize {
        self.sealed
    }

    /// Ingests one decision event for the group with key `group`.
    pub fn ingest(
        &mut self,
        group: &GroupKey,
        prediction: bool,
        label: Option<bool>,
    ) -> Result<(), String> {
        let idx = self
            .keys
            .binary_search(group)
            .map_err(|_| format!("unknown group {group}"))?;
        self.ingest_indexed(idx, prediction, label);
        Ok(())
    }

    /// Ingests one decision event by group index (position in
    /// [`StreamingMonitor::keys`]).
    pub fn ingest_indexed(&mut self, group: usize, prediction: bool, label: Option<bool>) {
        self.current.observe(group, prediction, label);
        self.roll();
    }

    /// Ingests a batch of coded events, sealing windows as they fill.
    /// Codes index the constructor's level order: `levels[code]` for
    /// [`StreamingMonitor::over_levels`], `keys[code]` for
    /// [`StreamingMonitor::new`].
    pub fn ingest_batch(
        &mut self,
        codes: &[u32],
        predictions: &[bool],
        labels: Option<&[bool]>,
    ) -> Result<(), String> {
        if codes.len() != predictions.len() {
            return Err("codes and predictions differ in length".to_owned());
        }
        if labels.is_some_and(|l| l.len() != codes.len()) {
            return Err("labels and predictions differ in length".to_owned());
        }
        for i in 0..codes.len() {
            let g = codes[i] as usize;
            if g >= self.code_map.len() {
                return Err(format!("group code {g} out of range"));
            }
            self.ingest_indexed(self.code_map[g], predictions[i], labels.map(|l| l[i]));
        }
        Ok(())
    }

    fn roll(&mut self) {
        if self.current.total() as usize >= self.config.window_size {
            let fresh = GroupAccumulator::with_keys(self.keys.clone(), self.has_labels)
                .expect("keys validated at construction");
            let full = std::mem::replace(&mut self.current, fresh);
            if self.telemetry.is_enabled() {
                // The gap is recomputed in `snapshot` anyway; paying it
                // here only when recording keeps the untraced ingest path
                // byte-for-byte what it was.
                let gap =
                    GapSummary::from_rates(&full.selection_rates(), self.config.min_group_size).gap;
                self.telemetry.emit(FairnessEvent::WindowClosed {
                    window: self.sealed,
                    n: full.total(),
                    parity_gap: gap,
                });
                if gap > self.config.drift_threshold {
                    self.breach_run += 1;
                    if self.breach_run >= 2 && !self.in_drift {
                        self.in_drift = true;
                        self.telemetry.emit(FairnessEvent::DriftFlagged {
                            window: self.sealed,
                            parity_gap: gap,
                            threshold: self.config.drift_threshold,
                        });
                    }
                } else {
                    self.breach_run = 0;
                    self.in_drift = false;
                }
                self.telemetry.counter("monitor.windows_sealed").incr();
            }
            self.completed.push_back((self.sealed, full));
            self.sealed += 1;
            while self.completed.len() > self.config.retained_windows {
                self.completed.pop_front();
            }
        }
    }

    /// Finalizes every retained window into metrics and evaluates the
    /// drift flag.
    pub fn snapshot(&self) -> MonitorSnapshot {
        let windows: Vec<WindowSummary> = self
            .completed
            .iter()
            .map(|(index, acc)| {
                let gap =
                    GapSummary::from_rates(&acc.selection_rates(), self.config.min_group_size).gap;
                WindowSummary {
                    index: *index,
                    n: acc.total(),
                    parity_gap: gap,
                    report: from_accumulator(
                        acc,
                        self.config.tolerance,
                        self.config.min_group_size,
                    ),
                }
            })
            .collect();
        let drift = windows.windows(2).any(|pair| match pair {
            [prev, curr] => {
                prev.parity_gap > self.config.drift_threshold
                    && curr.parity_gap > self.config.drift_threshold
            }
            _ => false,
        });
        MonitorSnapshot {
            windows,
            drift,
            current_fill: self.current.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(window: usize, retained: usize) -> StreamingMonitor {
        StreamingMonitor::over_levels(
            &["a", "b"],
            false,
            MonitorConfig {
                window_size: window,
                retained_windows: retained,
                ..MonitorConfig::default()
            },
        )
        .unwrap()
    }

    /// Streams one window where group 0 is accepted at `rate_a` and group
    /// 1 at `rate_b` (window size must be even).
    fn stream_window(m: &mut StreamingMonitor, rate_a: f64, rate_b: f64) {
        let per_group = m.config.window_size / 2;
        for i in 0..per_group {
            let t = i as f64 / per_group as f64;
            m.ingest_indexed(0, t < rate_a, None);
            m.ingest_indexed(1, t < rate_b, None);
        }
    }

    #[test]
    fn windows_tumble_and_the_ring_is_bounded() {
        let mut m = monitor(40, 3);
        for _ in 0..5 {
            stream_window(&mut m, 0.5, 0.5);
        }
        assert_eq!(m.windows_sealed(), 5);
        assert_eq!(m.retained(), 3);
        let snap = m.snapshot();
        assert_eq!(snap.windows.len(), 3);
        // oldest retained window is #2: the ring dropped #0 and #1
        assert_eq!(snap.windows[0].index, 2);
        assert_eq!(snap.current_fill, 0);
    }

    #[test]
    fn fair_stream_raises_no_drift() {
        let mut m = monitor(40, 4);
        for _ in 0..4 {
            stream_window(&mut m, 0.6, 0.6);
        }
        let snap = m.snapshot();
        assert!(!snap.drift);
        assert!(snap.latest_gap() < 1e-9);
        assert!(snap.windows.iter().all(|w| w.n == 40));
    }

    #[test]
    fn sustained_disparity_raises_drift_but_a_blip_does_not() {
        // one breached window between fair ones: no drift
        let mut blip = monitor(40, 4);
        stream_window(&mut blip, 0.5, 0.5);
        stream_window(&mut blip, 0.8, 0.2);
        stream_window(&mut blip, 0.5, 0.5);
        assert!(!blip.snapshot().drift);

        // two consecutive breached windows: drift
        let mut drifted = monitor(40, 4);
        stream_window(&mut drifted, 0.5, 0.5);
        stream_window(&mut drifted, 0.8, 0.2);
        stream_window(&mut drifted, 0.8, 0.3);
        let snap = drifted.snapshot();
        assert!(snap.drift);
        assert!((snap.latest_gap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn keyed_and_batch_ingestion() {
        let mut m = monitor(4, 2);
        m.ingest(&GroupKey(vec!["a".into()]), true, None).unwrap();
        assert!(m.ingest(&GroupKey(vec!["zzz".into()]), true, None).is_err());
        m.ingest_batch(&[0, 1, 1], &[true, false, true], None)
            .unwrap();
        assert_eq!(m.windows_sealed(), 1);
        assert!(m.ingest_batch(&[9], &[true], None).is_err());
        assert!(m.ingest_batch(&[0, 1], &[true], None).is_err());
    }

    #[test]
    fn labeled_windows_evaluate_error_rate_metrics() {
        let mut m = StreamingMonitor::over_levels(
            &["a", "b"],
            true,
            MonitorConfig {
                window_size: 8,
                retained_windows: 2,
                min_group_size: 0,
                ..MonitorConfig::default()
            },
        )
        .unwrap();
        m.ingest_batch(
            &[0, 0, 0, 0, 1, 1, 1, 1],
            &[true, true, false, false, true, false, true, false],
            Some(&[true, false, true, false, true, true, false, false]),
        )
        .unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.windows.len(), 1);
        // labels present → all six definitions evaluated
        assert_eq!(snap.windows[0].report.lines.len(), 6);
    }

    #[test]
    fn over_levels_preserves_code_order_when_levels_are_unsorted() {
        // "male" < "female" in code order, but not alphabetically: code 0
        // must still mean "male" after the keys are sorted internally.
        let mut m = StreamingMonitor::over_levels(
            &["male", "female"],
            false,
            MonitorConfig {
                window_size: 4,
                retained_windows: 2,
                min_group_size: 0,
                ..MonitorConfig::default()
            },
        )
        .unwrap();
        m.ingest_batch(&[0, 1, 0, 1], &[true, false, true, false], None)
            .unwrap();
        let snap = m.snapshot();
        assert!(
            snap.windows[0].report.lines[0]
                .detail
                .contains("least favored: female"),
            "detail: {}",
            snap.windows[0].report.lines[0].detail
        );
    }

    #[test]
    fn telemetry_records_window_seals_and_flags_sustained_drift_once() {
        use fairbridge_obs::{EventKind, RingSink, Telemetry};
        use std::sync::Arc;

        let ring = Arc::new(RingSink::with_capacity(256));
        let mut m = monitor(40, 4).with_telemetry(Telemetry::new(ring.clone()));
        stream_window(&mut m, 0.5, 0.5);
        stream_window(&mut m, 0.8, 0.2); // breach 1
        stream_window(&mut m, 0.8, 0.3); // breach 2 → drift fires here
        stream_window(&mut m, 0.9, 0.2); // still breached → no second alarm
        stream_window(&mut m, 0.5, 0.5); // recovery resets the alarm

        let events = ring.events();
        let closed: Vec<usize> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Fairness(FairnessEvent::WindowClosed { window, .. }) => Some(*window),
                _ => None,
            })
            .collect();
        assert_eq!(closed, vec![0, 1, 2, 3, 4]);
        let drift: Vec<usize> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Fairness(FairnessEvent::DriftFlagged {
                    window, threshold, ..
                }) => {
                    assert!((threshold - 0.10).abs() < 1e-12);
                    Some(*window)
                }
                _ => None,
            })
            .collect();
        assert_eq!(drift, vec![2], "alarm fires once, at the second breach");
    }

    #[test]
    fn telemetry_ignores_a_single_window_blip() {
        use fairbridge_obs::{EventKind, RingSink, Telemetry};
        use std::sync::Arc;

        let ring = Arc::new(RingSink::with_capacity(64));
        let mut m = monitor(40, 4).with_telemetry(Telemetry::new(ring.clone()));
        stream_window(&mut m, 0.5, 0.5);
        stream_window(&mut m, 0.8, 0.2); // isolated breach
        stream_window(&mut m, 0.5, 0.5);
        assert!(!ring.events().iter().any(|e| matches!(
            e.kind,
            EventKind::Fairness(FairnessEvent::DriftFlagged { .. })
        )));
    }

    #[test]
    fn config_is_validated() {
        let cfg = |w, r| MonitorConfig {
            window_size: w,
            retained_windows: r,
            ..MonitorConfig::default()
        };
        assert!(StreamingMonitor::over_levels(&["a"], false, cfg(0, 2)).is_err());
        assert!(StreamingMonitor::over_levels(&["a"], false, cfg(5, 0)).is_err());
        assert!(StreamingMonitor::over_levels(&["a", "a"], false, cfg(5, 2)).is_err());
    }
}
