//! # fairbridge-engine
//!
//! The execution engine: how fairness audits *run* at scale, and how they
//! keep running after deployment.
//!
//! The Section III definitions are all ratios of per-group integer counts,
//! so an audit decomposes into an embarrassingly parallel scan plus a tiny
//! finalize. This crate exploits that structure twice:
//!
//! * [`executor`] — [`Engine::audit`] shards the row scan over scoped
//!   worker threads (`std::thread` only, no external runtime), merges the
//!   per-shard [`GroupAccumulator`]s in deterministic shard order and
//!   finalizes the exact same `AuditReport` the sequential
//!   `fairbridge-audit` pipeline produces — bitwise-identical metric gaps
//!   for any thread count. A [`PartitionCache`] memoizes the row → group
//!   map per (dataset fingerprint, protected set);
//! * [`monitor`] — [`StreamingMonitor`] ingests live decision events into
//!   tumbling windowed accumulators and flags drift when windowed
//!   disparity stays across a threshold in consecutive windows — the
//!   runtime counterpart to the paper's Section IV.D feedback-loop
//!   warning;
//! * [`partition`] — the shared row-addressable group partition behind a
//!   bounded, LRU-evicting, statistics-counting [`PartitionCache`];
//! * [`error`] — the typed [`EngineError`] every fallible engine entry
//!   point returns.
//!
//! The engine is fully instrumented through `fairbridge-obs`: construct
//! with [`Engine::with_telemetry`] (or
//! [`StreamingMonitor::with_telemetry`]) and audits emit spans for each
//! phase, per-shard scan events, partition-cache hit/miss events and
//! windowed drift alarms — an evidential trail a compliance review can
//! replay. The default telemetry is disabled and costs one branch per
//! record point.
//!
//! The mergeable accumulator itself lives in `fairbridge-metrics`
//! ([`GroupAccumulator`]), next to the definitions it summarizes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod executor;
pub mod monitor;
pub mod partition;

pub use error::EngineError;
pub use executor::{AuditSpec, Engine, EngineConfig};
pub use fairbridge_metrics::{from_accumulator, GroupAccumulator, GroupCounts};
pub use monitor::{MonitorConfig, MonitorSnapshot, StreamingMonitor, WindowSummary};
pub use partition::{
    dataset_fingerprint, CacheLookup, CacheStats, Partition, PartitionCache, DEFAULT_CACHE_CAPACITY,
};
