//! Property-based tests for the statistics substrate: metric axioms,
//! bounds and identities.

use fairbridge_stats::correlation::{pearson, ranks, spearman};
use fairbridge_stats::descriptive::{mean, quantile_sorted, std_dev};
use fairbridge_stats::distribution::{Discrete, Empirical};
use fairbridge_stats::hypothesis::{two_proportion_z, wilson_interval};
use fairbridge_stats::special::{normal_cdf, normal_quantile, reg_gamma_p, reg_gamma_q};
use fairbridge_stats::{
    energy_distance, hellinger, js_divergence, mmd_rbf, total_variation, wasserstein_1d,
};
use proptest::prelude::*;

/// Two distributions over the SAME support size.
fn discrete_pair() -> impl Strategy<Value = (Discrete, Discrete)> {
    (2usize..6).prop_flat_map(|k| {
        let one = move || {
            proptest::collection::vec(0.01f64..1.0, k).prop_map(|raw| {
                let total: f64 = raw.iter().sum();
                Discrete::new(raw.iter().map(|x| x / total).collect()).unwrap()
            })
        };
        (one(), one())
    })
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 1..50)
}

proptest! {
    /// TV and Hellinger are metrics bounded by [0,1]: identity, symmetry,
    /// triangle inequality.
    #[test]
    fn tv_hellinger_metric_axioms((p, q) in discrete_pair(), r_raw in proptest::collection::vec(0.01f64..1.0, 2..6)) {
        // Build r on the same support as p/q by truncation or padding.
        let k = p.k();
        let mut raw = r_raw;
        raw.resize(k, 0.05);
        let total: f64 = raw.iter().sum();
        let r = Discrete::new(raw.iter().map(|x| x / total).collect()).unwrap();

        for d in [total_variation, hellinger] {
            let dpq = d(&p, &q);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&dpq));
            prop_assert!((d(&p, &p)).abs() < 1e-12);
            prop_assert!((dpq - d(&q, &p)).abs() < 1e-12);
            prop_assert!(d(&p, &r) <= dpq + d(&q, &r) + 1e-9, "triangle violated");
        }
    }

    /// Hellinger² ≤ TV ≤ √2·Hellinger (standard inequalities).
    #[test]
    fn hellinger_tv_sandwich((p, q) in discrete_pair()) {
        let h = hellinger(&p, &q);
        let tv = total_variation(&p, &q);
        prop_assert!(h * h <= tv + 1e-9);
        prop_assert!(tv <= std::f64::consts::SQRT_2 * h + 1e-9);
    }

    /// JS divergence is symmetric, bounded by ln 2, zero iff equal.
    #[test]
    fn js_properties((p, q) in discrete_pair()) {
        let js = js_divergence(&p, &q);
        prop_assert!(js >= -1e-12);
        prop_assert!(js <= std::f64::consts::LN_2 + 1e-9);
        prop_assert!((js - js_divergence(&q, &p)).abs() < 1e-12);
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    /// Wasserstein-1: non-negative, symmetric, zero on identical samples,
    /// translation-covariant.
    #[test]
    fn wasserstein_axioms(xs in samples(), ys in samples(), shift in -50.0f64..50.0) {
        let ex = Empirical::new(xs.clone()).unwrap();
        let ey = Empirical::new(ys.clone()).unwrap();
        let w = wasserstein_1d(&ex, &ey);
        prop_assert!(w >= 0.0);
        prop_assert!((w - wasserstein_1d(&ey, &ex)).abs() < 1e-9);
        prop_assert!(wasserstein_1d(&ex, &ex).abs() < 1e-12);
        // W1(X + c, X) = |c|
        let shifted = Empirical::new(xs.iter().map(|v| v + shift).collect()).unwrap();
        prop_assert!((wasserstein_1d(&ex, &shifted) - shift.abs()).abs() < 1e-7);
    }

    /// MMD² and energy distance: non-negative, zero on identical samples.
    #[test]
    fn mmd_energy_nonneg(xs in proptest::collection::vec(-10f64..10.0, 2..25),
                         ys in proptest::collection::vec(-10f64..10.0, 2..25)) {
        prop_assert!(mmd_rbf(&xs, &ys, 1.0) >= 0.0);
        prop_assert!(mmd_rbf(&xs, &xs, 1.0).abs() < 1e-10);
        prop_assert!(energy_distance(&xs, &ys) >= 0.0);
        prop_assert!(energy_distance(&xs, &xs).abs() < 1e-9);
    }

    /// Quantiles of sorted data are monotone in q and bounded by extremes.
    #[test]
    fn quantile_monotone(mut xs in samples(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_sorted(&xs, lo);
        let b = quantile_sorted(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= xs[0] - 1e-12);
        prop_assert!(b <= xs[xs.len() - 1] + 1e-12);
    }

    /// Pearson is bounded and scale/shift invariant.
    #[test]
    fn pearson_invariances(xs in proptest::collection::vec(-100f64..100.0, 3..30),
                           scale in 0.1f64..10.0, shift in -50f64..50.0) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson(&xs, &ys);
        prop_assert!(r.abs() <= 1.0 + 1e-12);
        // invariance under positive affine transform of one side
        let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r2 = pearson(&xs2, &ys);
        prop_assert!((r - r2).abs() < 1e-6, "r={r} r2={r2}");
    }

    /// ranks() produce a permutation-weighted sum: Σ ranks = n(n+1)/2.
    #[test]
    fn ranks_sum_invariant(xs in samples()) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        let total: f64 = r.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariance(pairs in proptest::collection::vec(
        (-20f64..20.0, -20f64..20.0), 3..30)) {
        let (xs, ys): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let s1 = spearman(&xs, &ys);
        let xs_t: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        let s2 = spearman(&xs_t, &ys);
        if s1.is_nan() {
            prop_assert!(s2.is_nan());
        } else {
            prop_assert!((s1 - s2).abs() < 1e-9);
        }
    }

    /// normal_quantile inverts normal_cdf across the open interval.
    #[test]
    fn normal_quantile_inverse(p in 0.001f64..0.999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-9);
    }

    /// Incomplete gamma halves sum to one.
    #[test]
    fn gamma_pq_complement(a in 0.1f64..20.0, x in 0.0f64..40.0) {
        prop_assert!((reg_gamma_p(a, x) + reg_gamma_q(a, x) - 1.0).abs() < 1e-10);
    }

    /// Wilson interval contains the point estimate and stays in [0,1].
    #[test]
    fn wilson_contains_estimate(successes in 0u64..100, extra in 1u64..100) {
        let n = successes + extra;
        let (lo, hi) = wilson_interval(successes, n, 0.95);
        let p = successes as f64 / n as f64;
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
    }

    /// Two-proportion z-test p-values are valid probabilities and the
    /// test is symmetric in its arguments.
    #[test]
    fn z_test_symmetry(x1 in 0u64..50, n1e in 1u64..50, x2 in 0u64..50, n2e in 1u64..50) {
        let n1 = x1 + n1e;
        let n2 = x2 + n2e;
        let a = two_proportion_z(x1, n1, x2, n2);
        let b = two_proportion_z(x2, n2, x1, n1);
        prop_assert!((0.0..=1.0).contains(&a.p_value));
        prop_assert!((a.p_value - b.p_value).abs() < 1e-12);
        prop_assert!((a.statistic + b.statistic).abs() < 1e-12);
    }

    /// mean/std on constant-shifted data behave linearly.
    #[test]
    fn mean_std_shift(xs in proptest::collection::vec(-100f64..100.0, 2..40), c in -50f64..50.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - (mean(&xs) + c)).abs() < 1e-8);
        prop_assert!((std_dev(&shifted) - std_dev(&xs)).abs() < 1e-8);
    }

    /// Discrete::from_codes matches manual counting.
    #[test]
    fn from_codes_counts(codes in proptest::collection::vec(0u32..4, 1..60)) {
        let d = Discrete::from_codes(&codes, 4).unwrap();
        for cat in 0..4u32 {
            let expected = codes.iter().filter(|&&c| c == cat).count() as f64 / codes.len() as f64;
            prop_assert!((d.p(cat as usize) - expected).abs() < 1e-12);
        }
    }
}

use fairbridge_stats::sinkhorn::{ordinal_cost, sinkhorn};

proptest! {
    /// Sinkhorn plans are non-negative, total mass 1, marginal-consistent,
    /// and the entropic cost upper-bounds the exact ordinal OT cost (the
    /// entropy term biases toward more diffuse, costlier plans).
    #[test]
    fn sinkhorn_plan_properties(raw_p in proptest::collection::vec(0.05f64..1.0, 2..5),
                                raw_q in proptest::collection::vec(0.05f64..1.0, 2..5)) {
        let norm = |raw: &[f64]| {
            let t: f64 = raw.iter().sum();
            Discrete::new(raw.iter().map(|x| x / t).collect()).unwrap()
        };
        let p = norm(&raw_p);
        let q = norm(&raw_q);
        let cost = ordinal_cost(p.k(), q.k());
        // moderate regularization: Sinkhorn's linear convergence rate
        // degrades as exp(-osc(C)/eps), so tiny eps needs huge iteration
        // counts — this is the documented trade-off, not a bug.
        let result = sinkhorn(&p, &q, &cost, 0.25, 5000).unwrap();
        prop_assert!(result.plan.iter().all(|&x| x >= 0.0));
        let total: f64 = result.plan.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        prop_assert!(result.marginal_error < 1e-3, "marginal error {}", result.marginal_error);
        // cost >= exact ordinal OT (up to solver tolerance), when supports match
        if p.k() == q.k() {
            let exact = fairbridge_stats::distance::wasserstein_discrete(&p, &q);
            prop_assert!(result.cost >= exact - 0.05, "sinkhorn {} < exact {}", result.cost, exact);
        }
    }
}

use fairbridge_stats::hypothesis::ks_two_sample;

proptest! {
    /// The KS statistic is a valid distance-like quantity: in [0,1],
    /// symmetric, zero on identical samples; p-values are probabilities.
    #[test]
    fn ks_axioms(xs in proptest::collection::vec(-50f64..50.0, 2..60),
                 ys in proptest::collection::vec(-50f64..50.0, 2..60)) {
        let r = ks_two_sample(&xs, &ys);
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        let r2 = ks_two_sample(&ys, &xs);
        prop_assert!((r.statistic - r2.statistic).abs() < 1e-12);
        prop_assert!((r.p_value - r2.p_value).abs() < 1e-12);
        let same = ks_two_sample(&xs, &xs.clone());
        prop_assert!(same.statistic.abs() < 1e-12);
    }
}
