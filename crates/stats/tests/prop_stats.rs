//! Randomized property tests for the statistics substrate: metric axioms,
//! bounds and identities, driven by the workspace's deterministic PRNG
//! (no proptest: the build is offline).

use fairbridge_stats::correlation::{pearson, ranks, spearman};
use fairbridge_stats::descriptive::{mean, quantile_sorted, std_dev};
use fairbridge_stats::distribution::{Discrete, Empirical};
use fairbridge_stats::hypothesis::{ks_two_sample, two_proportion_z, wilson_interval};
use fairbridge_stats::rng::{Rng, StdRng};
use fairbridge_stats::sinkhorn::{ordinal_cost, sinkhorn};
use fairbridge_stats::special::{normal_cdf, normal_quantile, reg_gamma_p, reg_gamma_q};
use fairbridge_stats::{
    energy_distance, hellinger, js_divergence, mmd_rbf, total_variation, wasserstein_1d,
};

const CASES: usize = 48;

/// A random discrete distribution over `k` categories.
fn discrete<R: Rng>(rng: &mut R, k: usize) -> Discrete {
    let raw: Vec<f64> = (0..k).map(|_| rng.gen_range(0.01..1.0)).collect();
    let total: f64 = raw.iter().sum();
    Discrete::new(raw.iter().map(|x| x / total).collect()).unwrap()
}

/// Two random distributions over the SAME support size.
fn discrete_pair<R: Rng>(rng: &mut R) -> (Discrete, Discrete) {
    let k = rng.gen_range(2..6usize);
    (discrete(rng, k), discrete(rng, k))
}

fn samples<R: Rng>(rng: &mut R, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// TV and Hellinger are metrics bounded by [0,1]: identity, symmetry,
/// triangle inequality.
#[test]
fn tv_hellinger_metric_axioms() {
    let mut rng = StdRng::seed_from_u64(0x57_01);
    for _ in 0..CASES {
        let (p, q) = discrete_pair(&mut rng);
        let r = discrete(&mut rng, p.k());
        for d in [total_variation, hellinger] {
            let dpq = d(&p, &q);
            assert!((0.0..=1.0 + 1e-12).contains(&dpq));
            assert!((d(&p, &p)).abs() < 1e-12);
            assert!((dpq - d(&q, &p)).abs() < 1e-12);
            assert!(d(&p, &r) <= dpq + d(&q, &r) + 1e-9, "triangle violated");
        }
    }
}

/// Hellinger² ≤ TV ≤ √2·Hellinger (standard inequalities).
#[test]
fn hellinger_tv_sandwich() {
    let mut rng = StdRng::seed_from_u64(0x57_02);
    for _ in 0..CASES {
        let (p, q) = discrete_pair(&mut rng);
        let h = hellinger(&p, &q);
        let tv = total_variation(&p, &q);
        assert!(h * h <= tv + 1e-9);
        assert!(tv <= std::f64::consts::SQRT_2 * h + 1e-9);
    }
}

/// JS divergence is symmetric, bounded by ln 2, zero iff equal.
#[test]
fn js_properties() {
    let mut rng = StdRng::seed_from_u64(0x57_03);
    for _ in 0..CASES {
        let (p, q) = discrete_pair(&mut rng);
        let js = js_divergence(&p, &q);
        assert!(js >= -1e-12);
        assert!(js <= std::f64::consts::LN_2 + 1e-9);
        assert!((js - js_divergence(&q, &p)).abs() < 1e-12);
        assert!(js_divergence(&p, &p).abs() < 1e-12);
    }
}

/// Wasserstein-1: non-negative, symmetric, zero on identical samples,
/// translation-covariant.
#[test]
fn wasserstein_axioms() {
    let mut rng = StdRng::seed_from_u64(0x57_04);
    for _ in 0..CASES {
        let xs = samples(&mut rng, -100.0, 100.0, 1, 50);
        let ys = samples(&mut rng, -100.0, 100.0, 1, 50);
        let shift = rng.gen_range(-50.0..50.0);
        let ex = Empirical::new(xs.clone()).unwrap();
        let ey = Empirical::new(ys).unwrap();
        let w = wasserstein_1d(&ex, &ey);
        assert!(w >= 0.0);
        assert!((w - wasserstein_1d(&ey, &ex)).abs() < 1e-9);
        assert!(wasserstein_1d(&ex, &ex).abs() < 1e-12);
        // W1(X + c, X) = |c|
        let shifted = Empirical::new(xs.iter().map(|v| v + shift).collect()).unwrap();
        assert!((wasserstein_1d(&ex, &shifted) - shift.abs()).abs() < 1e-7);
    }
}

/// MMD² and energy distance: non-negative, zero on identical samples.
#[test]
fn mmd_energy_nonneg() {
    let mut rng = StdRng::seed_from_u64(0x57_05);
    for _ in 0..CASES {
        let xs = samples(&mut rng, -10.0, 10.0, 2, 25);
        let ys = samples(&mut rng, -10.0, 10.0, 2, 25);
        assert!(mmd_rbf(&xs, &ys, 1.0) >= 0.0);
        assert!(mmd_rbf(&xs, &xs, 1.0).abs() < 1e-10);
        assert!(energy_distance(&xs, &ys) >= 0.0);
        assert!(energy_distance(&xs, &xs).abs() < 1e-9);
    }
}

/// Quantiles of sorted data are monotone in q and bounded by extremes.
#[test]
fn quantile_monotone() {
    let mut rng = StdRng::seed_from_u64(0x57_06);
    for _ in 0..CASES {
        let mut xs = samples(&mut rng, -100.0, 100.0, 1, 50);
        let q1 = rng.gen_range(0.0..1.0);
        let q2 = rng.gen_range(0.0..1.0);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_sorted(&xs, lo);
        let b = quantile_sorted(&xs, hi);
        assert!(a <= b + 1e-12);
        assert!(a >= xs[0] - 1e-12);
        assert!(b <= xs[xs.len() - 1] + 1e-12);
    }
}

/// Pearson is bounded and scale/shift invariant.
#[test]
fn pearson_invariances() {
    let mut rng = StdRng::seed_from_u64(0x57_07);
    for _ in 0..CASES {
        let xs = samples(&mut rng, -100.0, 100.0, 3, 30);
        let scale = rng.gen_range(0.1..10.0);
        let shift = rng.gen_range(-50.0..50.0);
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson(&xs, &ys);
        assert!(r.abs() <= 1.0 + 1e-12);
        // invariance under positive affine transform of one side
        let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r2 = pearson(&xs2, &ys);
        assert!((r - r2).abs() < 1e-6, "r={r} r2={r2}");
    }
}

/// ranks() produce a permutation-weighted sum: Σ ranks = n(n+1)/2.
#[test]
fn ranks_sum_invariant() {
    let mut rng = StdRng::seed_from_u64(0x57_08);
    for _ in 0..CASES {
        let xs = samples(&mut rng, -100.0, 100.0, 1, 50);
        let r = ranks(&xs);
        let n = xs.len() as f64;
        let total: f64 = r.iter().sum();
        assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }
}

/// Spearman is invariant under strictly monotone transforms.
#[test]
fn spearman_monotone_invariance() {
    let mut rng = StdRng::seed_from_u64(0x57_09);
    for _ in 0..CASES {
        let n = rng.gen_range(3..30usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-20.0..20.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-20.0..20.0)).collect();
        let s1 = spearman(&xs, &ys);
        let xs_t: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        let s2 = spearman(&xs_t, &ys);
        if s1.is_nan() {
            assert!(s2.is_nan());
        } else {
            assert!((s1 - s2).abs() < 1e-9);
        }
    }
}

/// normal_quantile inverts normal_cdf across the open interval.
#[test]
fn normal_quantile_inverse() {
    let mut rng = StdRng::seed_from_u64(0x57_0A);
    for _ in 0..CASES {
        let p = rng.gen_range(0.001..0.999);
        let z = normal_quantile(p);
        assert!((normal_cdf(z) - p).abs() < 1e-9);
    }
}

/// Incomplete gamma halves sum to one.
#[test]
fn gamma_pq_complement() {
    let mut rng = StdRng::seed_from_u64(0x57_0B);
    for _ in 0..CASES {
        let a = rng.gen_range(0.1..20.0);
        let x = rng.gen_range(0.0..40.0);
        assert!((reg_gamma_p(a, x) + reg_gamma_q(a, x) - 1.0).abs() < 1e-10);
    }
}

/// Wilson interval contains the point estimate and stays in [0,1].
#[test]
fn wilson_contains_estimate() {
    let mut rng = StdRng::seed_from_u64(0x57_0C);
    for _ in 0..CASES {
        let successes = rng.gen_range(0..100u64);
        let n = successes + rng.gen_range(1..100u64);
        let (lo, hi) = wilson_interval(successes, n, 0.95);
        let p = successes as f64 / n as f64;
        assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
    }
}

/// Two-proportion z-test p-values are valid probabilities and the
/// test is symmetric in its arguments.
#[test]
fn z_test_symmetry() {
    let mut rng = StdRng::seed_from_u64(0x57_0D);
    for _ in 0..CASES {
        let x1 = rng.gen_range(0..50u64);
        let n1 = x1 + rng.gen_range(1..50u64);
        let x2 = rng.gen_range(0..50u64);
        let n2 = x2 + rng.gen_range(1..50u64);
        let a = two_proportion_z(x1, n1, x2, n2);
        let b = two_proportion_z(x2, n2, x1, n1);
        assert!((0.0..=1.0).contains(&a.p_value));
        assert!((a.p_value - b.p_value).abs() < 1e-12);
        assert!((a.statistic + b.statistic).abs() < 1e-12);
    }
}

/// mean/std on constant-shifted data behave linearly.
#[test]
fn mean_std_shift() {
    let mut rng = StdRng::seed_from_u64(0x57_0E);
    for _ in 0..CASES {
        let xs = samples(&mut rng, -100.0, 100.0, 2, 40);
        let c = rng.gen_range(-50.0..50.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        assert!((mean(&shifted) - (mean(&xs) + c)).abs() < 1e-8);
        assert!((std_dev(&shifted) - std_dev(&xs)).abs() < 1e-8);
    }
}

/// Discrete::from_codes matches manual counting.
#[test]
fn from_codes_counts() {
    let mut rng = StdRng::seed_from_u64(0x57_0F);
    for _ in 0..CASES {
        let n = rng.gen_range(1..60usize);
        let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4usize) as u32).collect();
        let d = Discrete::from_codes(&codes, 4).unwrap();
        for cat in 0..4u32 {
            let expected = codes.iter().filter(|&&c| c == cat).count() as f64 / codes.len() as f64;
            assert!((d.p(cat as usize) - expected).abs() < 1e-12);
        }
    }
}

/// Sinkhorn plans are non-negative, total mass 1, marginal-consistent,
/// and the entropic cost upper-bounds the exact ordinal OT cost (the
/// entropy term biases toward more diffuse, costlier plans).
#[test]
fn sinkhorn_plan_properties() {
    let mut rng = StdRng::seed_from_u64(0x57_10);
    for _ in 0..24 {
        let kp = rng.gen_range(2..5usize);
        let p = discrete(&mut rng, kp);
        let kq = rng.gen_range(2..5usize);
        let q = discrete(&mut rng, kq);
        let cost = ordinal_cost(p.k(), q.k());
        // moderate regularization: Sinkhorn's linear convergence rate
        // degrades as exp(-osc(C)/eps), so tiny eps needs huge iteration
        // counts — this is the documented trade-off, not a bug.
        let result = sinkhorn(&p, &q, &cost, 0.25, 5000).unwrap();
        assert!(result.plan.iter().all(|&x| x >= 0.0));
        let total: f64 = result.plan.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
        assert!(
            result.marginal_error < 1e-3,
            "marginal error {}",
            result.marginal_error
        );
        // cost >= exact ordinal OT (up to solver tolerance), when supports match
        if p.k() == q.k() {
            let exact = fairbridge_stats::distance::wasserstein_discrete(&p, &q);
            assert!(
                result.cost >= exact - 0.05,
                "sinkhorn {} < exact {}",
                result.cost,
                exact
            );
        }
    }
}

/// The KS statistic is a valid distance-like quantity: in [0,1],
/// symmetric, zero on identical samples; p-values are probabilities.
#[test]
fn ks_axioms() {
    let mut rng = StdRng::seed_from_u64(0x57_11);
    for _ in 0..CASES {
        let xs = samples(&mut rng, -50.0, 50.0, 2, 60);
        let ys = samples(&mut rng, -50.0, 50.0, 2, 60);
        let r = ks_two_sample(&xs, &ys);
        assert!((0.0..=1.0).contains(&r.statistic));
        assert!((0.0..=1.0).contains(&r.p_value));
        let r2 = ks_two_sample(&ys, &xs);
        assert!((r.statistic - r2.statistic).abs() < 1e-12);
        assert!((r.p_value - r2.p_value).abs() < 1e-12);
        let same = ks_two_sample(&xs, &xs.clone());
        assert!(same.statistic.abs() < 1e-12);
    }
}
