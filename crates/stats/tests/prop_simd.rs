//! Property suite for the SIMD dispatch contract (DESIGN.md §14): the
//! public `kernel::{dot, sum, axpy, gemv}` dispatchers must be
//! **bitwise-identical** to their pinned `*_fused` references on every
//! input — including the adversarial corners where "approximately
//! equal" reductions diverge: NaNs (with payloads), ±∞, subnormals,
//! signed zeros and magnitude cliffs that force catastrophic
//! cancellation.
//!
//! Run with and without `--features simd`: without the feature the
//! dispatchers *are* the fused path and the suite is a tautology check;
//! with it (on AVX2 hardware) it pins the vector kernels to the scalar
//! bits. CI runs both configurations.
//!
//! One deliberate carve-out: when **both** results are NaN they are
//! accepted regardless of payload bits. Which operand's NaN payload
//! survives an add/mul is unspecified at every layer — IEEE 754 leaves
//! it implementation-defined, LLVM freely commutes scalar `fadd`/`fmul`
//! (so `addsd a, b` vs `addsd b, a` pick different winners between
//! builds), and SSE/AVX pick the first source operand. The fused scalar
//! reference is therefore not payload-stable against *itself* across
//! compiles; the contract pins every representable value and NaN-ness,
//! not the 51 free payload bits.

use fairbridge_stats::distribution::Discrete;
use fairbridge_stats::kernel::{
    axpy, axpy_fused, div_into, div_into_fused, dot, dot_fused, gemv, gemv_fused, mul_into,
    mul_into_fused, scale_into, scale_into_fused, simd_active, sum, sum_fused,
};
use fairbridge_stats::rng::{Rng, StdRng};
use fairbridge_stats::sinkhorn::{par_sinkhorn, par_sinkhorn_pinned_fused};

/// Draws one f64 from a mixture that covers ordinary magnitudes and
/// every adversarial class: NaN (quiet, with varied payload bits), ±∞,
/// subnormals, signed zeros, and huge/tiny magnitudes.
fn adversarial(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..12u64) {
        0 => f64::NAN,
        // NaN with a non-default payload: propagation must not
        // canonicalize differently between scalar and vector units.
        1 => f64::from_bits(f64::NAN.to_bits() | (rng.gen_range(1..0xFFFFu64))),
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        // subnormal range
        4 => f64::from_bits(rng.gen_range(1..1u64 << 52)),
        5 => -f64::from_bits(rng.gen_range(1..1u64 << 52)),
        6 => 0.0,
        7 => -0.0,
        8 => rng.gen_range(-1e300..1e300),
        9 => rng.gen_range(-1e-300..1e-300),
        _ => rng.gen_range(-1e3..1e3),
    }
}

fn adversarial_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| adversarial(rng)).collect()
}

/// Bitwise equality with the NaN-payload carve-out described in the
/// module docs: two NaNs compare equal whatever their payloads.
fn same_bits_or_both_nan(p: f64, q: f64) -> bool {
    p.to_bits() == q.to_bits() || (p.is_nan() && q.is_nan())
}

#[test]
fn report_dispatch_path() {
    // Not an assertion — documents in the test log which path this run
    // actually exercised.
    eprintln!("prop_simd: simd_active = {}", simd_active());
}

#[test]
fn dot_dispatch_is_bitwise_fused_on_adversarial_vectors() {
    let mut rng = StdRng::seed_from_u64(0x51AD_0001);
    for case in 0..200 {
        let len = rng.gen_range(0..300usize);
        let a = adversarial_vec(&mut rng, len);
        let b = adversarial_vec(&mut rng, len);
        let d = dot(&a, &b);
        let f = dot_fused(&a, &b);
        assert!(
            same_bits_or_both_nan(d, f),
            "case {case} len {len}: dispatch {d:?} vs fused {f:?}"
        );
    }
}

#[test]
fn sum_dispatch_is_bitwise_fused_on_adversarial_vectors() {
    let mut rng = StdRng::seed_from_u64(0x51AD_0002);
    for case in 0..200 {
        let len = rng.gen_range(0..300usize);
        let a = adversarial_vec(&mut rng, len);
        let s = sum(&a);
        let f = sum_fused(&a);
        assert!(
            same_bits_or_both_nan(s, f),
            "case {case} len {len}: dispatch {s:?} vs fused {f:?}"
        );
    }
}

#[test]
fn axpy_dispatch_is_bitwise_fused_on_adversarial_vectors() {
    let mut rng = StdRng::seed_from_u64(0x51AD_0003);
    for case in 0..200 {
        let len = rng.gen_range(0..300usize);
        let alpha = adversarial(&mut rng);
        let x = adversarial_vec(&mut rng, len);
        let y0 = adversarial_vec(&mut rng, len);
        let mut yd = y0.clone();
        let mut yf = y0.clone();
        axpy(alpha, &x, &mut yd);
        axpy_fused(alpha, &x, &mut yf);
        for (i, (&p, &q)) in yd.iter().zip(&yf).enumerate() {
            assert!(
                same_bits_or_both_nan(p, q),
                "case {case} len {len} slot {i}: {p:?} vs {q:?}"
            );
        }
    }
}

#[test]
fn gemv_dispatch_is_bitwise_fused_on_adversarial_matrices() {
    let mut rng = StdRng::seed_from_u64(0x51AD_0004);
    for case in 0..60 {
        // Shapes straddling the 4-row block and 8-column chunk edges.
        let n = rng.gen_range(0..23usize);
        let d = rng.gen_range(0..41usize);
        let data = adversarial_vec(&mut rng, n * d);
        let w = adversarial_vec(&mut rng, d);
        let mut out_d = vec![0.0; n];
        let mut out_f = vec![0.0; n];
        gemv(&data, d, &w, &mut out_d);
        gemv_fused(&data, d, &w, &mut out_f);
        for (i, (&p, &q)) in out_d.iter().zip(&out_f).enumerate() {
            assert!(
                same_bits_or_both_nan(p, q),
                "case {case} shape {n}x{d} row {i}: {p:?} vs {q:?}"
            );
        }
    }
}

#[test]
fn dispatch_replays_bitwise_within_a_process() {
    // The same input must give the same bits on every call — the
    // dispatcher must never flap between paths mid-process.
    let mut rng = StdRng::seed_from_u64(0x51AD_0005);
    let a = adversarial_vec(&mut rng, 257);
    let b = adversarial_vec(&mut rng, 257);
    let first = dot(&a, &b);
    for _ in 0..10 {
        assert_eq!(dot(&a, &b).to_bits(), first.to_bits());
    }
}

#[test]
fn mul_into_dispatch_is_bitwise_fused_on_adversarial_vectors() {
    let mut rng = StdRng::seed_from_u64(0x51AD_0006);
    for case in 0..200 {
        let len = rng.gen_range(0..300usize);
        let a = adversarial_vec(&mut rng, len);
        let b = adversarial_vec(&mut rng, len);
        let mut out_d = vec![0.0; len];
        let mut out_f = vec![0.0; len];
        mul_into(&a, &b, &mut out_d);
        mul_into_fused(&a, &b, &mut out_f);
        for (i, (&p, &q)) in out_d.iter().zip(&out_f).enumerate() {
            assert!(
                same_bits_or_both_nan(p, q),
                "case {case} len {len} slot {i}: {p:?} vs {q:?}"
            );
        }
    }
}

#[test]
fn div_into_dispatch_is_bitwise_fused_on_adversarial_vectors() {
    // Division is the adversarial-corner magnet: 0/0 and ∞/∞ make NaN,
    // finite/0 makes signed ∞, subnormal/huge underflows to ±0. The
    // dispatcher must hand back the same bits for all of them — the
    // epsilon-floor policy lives in the *callers* (sinkhorn), not here.
    let mut rng = StdRng::seed_from_u64(0x51AD_0007);
    for case in 0..200 {
        let len = rng.gen_range(0..300usize);
        let a = adversarial_vec(&mut rng, len);
        let b = adversarial_vec(&mut rng, len);
        let mut out_d = vec![0.0; len];
        let mut out_f = vec![0.0; len];
        div_into(&a, &b, &mut out_d);
        div_into_fused(&a, &b, &mut out_f);
        for (i, (&p, &q)) in out_d.iter().zip(&out_f).enumerate() {
            assert!(
                same_bits_or_both_nan(p, q),
                "case {case} len {len} slot {i}: {p:?} vs {q:?}"
            );
        }
    }
}

#[test]
fn scale_into_dispatch_is_bitwise_fused_on_adversarial_vectors() {
    let mut rng = StdRng::seed_from_u64(0x51AD_0008);
    for case in 0..200 {
        let len = rng.gen_range(0..300usize);
        let alpha = adversarial(&mut rng);
        let a = adversarial_vec(&mut rng, len);
        let mut out_d = a.clone();
        let mut out_f = a.clone();
        scale_into(alpha, &mut out_d);
        scale_into_fused(alpha, &mut out_f);
        for (i, (&p, &q)) in out_d.iter().zip(&out_f).enumerate() {
            assert!(
                same_bits_or_both_nan(p, q),
                "case {case} len {len} slot {i}: {p:?} vs {q:?}"
            );
        }
    }
}

#[test]
fn full_sinkhorn_dispatch_is_bitwise_identical_to_pinned_fused() {
    // End-to-end pin for the mitigation hot path: the whole Sinkhorn
    // solve — scalar-exp Gibbs kernel, u/v scaling through
    // gemv/div_into/mul_into, plan materialization, marginal-error
    // reduction — must produce bitwise-identical transport plans and
    // costs whether kernels are dispatched (possibly AVX2) or pinned to
    // the fused scalar reference, at every worker count.
    let mut rng = StdRng::seed_from_u64(0x51AD_0009);
    let n = 67;
    let m = 41;
    let p_raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
    let q_raw: Vec<f64> = (0..m).map(|_| rng.gen_range(0.05..1.0)).collect();
    let p_sum: f64 = p_raw.iter().sum();
    let q_sum: f64 = q_raw.iter().sum();
    let p = Discrete::new(p_raw.iter().map(|v| v / p_sum).collect()).unwrap();
    let q = Discrete::new(q_raw.iter().map(|v| v / q_sum).collect()).unwrap();
    let cost: Vec<f64> = (0..n * m)
        .map(|ij| {
            let (i, j) = (ij / m, ij % m);
            ((i as f64 / n as f64) - (j as f64 / m as f64)).abs()
        })
        .collect();

    let reference = par_sinkhorn_pinned_fused(&p, &q, &cost, 0.08, 60, 1).unwrap();
    for workers in [1usize, 2, 8] {
        let dispatched = par_sinkhorn(&p, &q, &cost, 0.08, 60, workers).unwrap();
        let fused = par_sinkhorn_pinned_fused(&p, &q, &cost, 0.08, 60, workers).unwrap();
        for (label, got) in [("dispatched", &dispatched), ("pinned-fused", &fused)] {
            assert_eq!(
                got.cost.to_bits(),
                reference.cost.to_bits(),
                "{label} workers={workers}: transport cost bits"
            );
            assert_eq!(
                got.iterations, reference.iterations,
                "{label} workers={workers}: iteration count"
            );
            assert_eq!(got.plan.len(), reference.plan.len());
            for (k, (a, b)) in got.plan.iter().zip(&reference.plan).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label} workers={workers}: plan slot {k}"
                );
            }
        }
    }
}

#[test]
fn cancellation_cliffs_stay_bitwise_equal() {
    // 1e16 + 1 − 1e16 style sequences: the classic case where any
    // change in summation order changes the result. The dispatcher must
    // reproduce the fused order exactly, not merely be "close".
    let mut v = Vec::new();
    for k in 0..64 {
        v.push(1e16 * if k % 2 == 0 { 1.0 } else { -1.0 });
        v.push(f64::from(k));
    }
    assert_eq!(sum(&v).to_bits(), sum_fused(&v).to_bits());
    let w: Vec<f64> = v.iter().rev().copied().collect();
    assert_eq!(dot(&v, &w).to_bits(), dot_fused(&v, &w).to_bits());
}
