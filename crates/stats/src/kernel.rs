//! The workspace's numeric kernels: fused, unroll-friendly inner loops
//! shared by the matrix layer in `fairbridge-learn` (which re-exports
//! them) and the resampling/OT solvers in this crate, plus the explicit
//! AVX2 widening of those loops in `simd`.
//!
//! Each fused kernel keeps eight independent accumulator lanes over the
//! aligned body of the slice so the compiler can break the one-add-per-
//! FPU-latency dependency chain of a naive left-to-right sum (and pack
//! the lanes into vector ops), then combines the lanes pairwise and
//! adds the scalar tail. That combination order is **fixed**: the same
//! slices always produce the same bits, which is the foundation of the
//! bitwise determinism contract the parallel bootstrap, Sinkhorn and
//! trainer paths promise. The parallel callers therefore always hand
//! *whole* logical units (matrix rows, kernel rows) to these functions
//! and never split one unit across workers.
//!
//! The reductions above are joined by three *elementwise* kernels —
//! [`mul_into`], [`div_into`], [`scale_into`] — pure IEEE mul/div with
//! one independent output per slot, so for them lane order is the only
//! contract and bitwise equality across paths is structural. They are
//! the building blocks of the Sinkhorn scaling updates and plan
//! materialization and the trainer's residual weighting. The
//! [`KernelSet`] table packages all seven entry points so those
//! algorithms can run either dispatched ([`DISPATCH_KERNELS`]) or
//! pinned to the references ([`FUSED_KERNELS`]).
//!
//! The public [`dot`]/[`sum`]/[`axpy`] entry points are *dispatchers*:
//! when the `simd` cargo feature is enabled on x86_64 and the CPU
//! reports AVX2, they route to `simd`, whose two 4×f64 registers hold
//! the same eight logical lanes and perform the identical
//! mul-then-add per lane and the identical lane-combine order — so the
//! result bits never depend on which path ran (asserted by the
//! `prop_simd` suite, including NaN/∞/subnormal inputs). On every other
//! build or machine the fused scalar path below is the universal
//! fallback. The `*_fused` functions stay public as the reference the
//! equivalence suites and `bench_kernels` pin the SIMD path against.
//!
//! The single-accumulator reference implementations ([`dot_scalar`])
//! stay in-tree as the baseline `bench_kernels` measures against.

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;

/// Whether kernel calls in this process are running on the explicit
/// AVX2 path (the `simd` feature is compiled in *and* the CPU reports
/// AVX2). Purely informational: results are bitwise-identical either
/// way. Benchmarks record it so a baseline says which path it measured.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd::avx2_available()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Dot product: eight logical accumulator lanes, lanes combined
/// pairwise in the fixed order
/// `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`. Dispatches to the
/// AVX2 kernel when available (bitwise-identical), else runs
/// [`dot_fused`].
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        return simd::dot_avx2(a, b);
    }
    dot_fused(a, b)
}

/// Sum reduction with the same fixed eight-lane combine order as
/// [`dot`]. This is the sanctioned reduction primitive the D4 lint
/// points at: new cross-path float reductions should call `kernel::sum`
/// rather than `.sum::<f64>()`, so the combination order — and
/// therefore the result bits — is pinned by one function instead of
/// re-derived at every call site. Dispatches to AVX2 when available.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        return simd::sum_avx2(a);
    }
    sum_fused(a)
}

/// `y += alpha · x`, eight-wide. Each output slot is an independent
/// accumulator, so the result is bitwise-identical to the naive
/// per-element loop on every path. Dispatches to AVX2 when available.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        simd::axpy_avx2(alpha, x, y);
        return;
    }
    axpy_fused(alpha, x, y);
}

/// Matrix–vector product over row-major `data` (`out.len()` rows of
/// `n_cols` elements each): `out[i] = row_i · w`. Dispatches to the
/// row-blocked AVX2 kernel when available — four rows advance in
/// lockstep, which quadruples the independent accumulator chains
/// without touching any single row's arithmetic — else runs
/// [`gemv_fused`]. Bitwise-identical either way.
#[inline]
pub fn gemv(data: &[f64], n_cols: usize, w: &[f64], out: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        simd::gemv_avx2(data, n_cols, w, out);
        return;
    }
    gemv_fused(data, n_cols, w, out);
}

/// Elementwise product `out[i] = a[i] · b[i]`. Pure IEEE multiplies —
/// every output slot is independent, so lane order is the *only*
/// contract and any vectorization is trivially bitwise-identical to
/// the scalar loop. Dispatches to AVX2 when available.
#[inline]
pub fn mul_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        simd::mul_into_avx2(a, b, out);
        return;
    }
    mul_into_fused(a, b, out);
}

/// Elementwise quotient `out[i] = num[i] / den[i]`. Pure IEEE divides
/// (slot-independent, same contract as [`mul_into`]); callers that need
/// a zero-divisor guard apply it to the *output* afterwards so the
/// kernel itself stays branch-free. Dispatches to AVX2 when available.
#[inline]
pub fn div_into(num: &[f64], den: &[f64], out: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        simd::div_into_avx2(num, den, out);
        return;
    }
    div_into_fused(num, den, out);
}

/// In-place scaling `out[i] *= alpha`. Pure IEEE multiplies,
/// slot-independent. Dispatches to AVX2 when available.
#[inline]
pub fn scale_into(alpha: f64, out: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::avx2_available() {
        simd::scale_into_avx2(alpha, out);
        return;
    }
    scale_into_fused(alpha, out);
}

/// [`mul_into`] pinned to the scalar loop. The universal fallback and
/// the bitwise reference for `simd::mul_into_avx2`.
#[inline]
pub fn mul_into_fused(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x * y;
    }
}

/// [`div_into`] pinned to the scalar loop. The universal fallback and
/// the bitwise reference for `simd::div_into_avx2`.
#[inline]
pub fn div_into_fused(num: &[f64], den: &[f64], out: &mut [f64]) {
    debug_assert_eq!(num.len(), den.len());
    debug_assert_eq!(num.len(), out.len());
    for (o, (x, y)) in out.iter_mut().zip(num.iter().zip(den)) {
        *o = x / y;
    }
}

/// [`scale_into`] pinned to the scalar loop. The universal fallback and
/// the bitwise reference for `simd::scale_into_avx2`.
#[inline]
pub fn scale_into_fused(alpha: f64, out: &mut [f64]) {
    for o in out.iter_mut() {
        *o *= alpha;
    }
}

/// A table of the seven kernel entry points, so a multi-kernel
/// algorithm (Sinkhorn, the logistic trainer) can be written once and
/// run either on the runtime dispatchers ([`DISPATCH_KERNELS`]) or
/// pinned to the fused-scalar references ([`FUSED_KERNELS`]). The two
/// tables are bitwise-interchangeable by the kernel contract; the
/// pinned table exists so benches can measure the gap and the
/// equivalence suites can assert it is exactly zero bits.
#[derive(Clone, Copy, Debug)]
pub struct KernelSet {
    /// Dot product (eight-lane fixed combine order).
    pub dot: fn(&[f64], &[f64]) -> f64,
    /// Sum reduction (same combine order as `dot`).
    pub sum: fn(&[f64]) -> f64,
    /// `y += alpha · x` (slot-independent).
    pub axpy: fn(f64, &[f64], &mut [f64]),
    /// Row-major matrix–vector product (one `dot` per row).
    pub gemv: fn(&[f64], usize, &[f64], &mut [f64]),
    /// Elementwise product (slot-independent).
    pub mul_into: fn(&[f64], &[f64], &mut [f64]),
    /// Elementwise quotient (slot-independent).
    pub div_into: fn(&[f64], &[f64], &mut [f64]),
    /// In-place scalar multiply (slot-independent).
    pub scale_into: fn(f64, &mut [f64]),
}

/// The runtime-dispatching kernel table: AVX2 when the `simd` feature
/// is compiled in and the CPU reports it, fused-scalar otherwise.
pub const DISPATCH_KERNELS: KernelSet = KernelSet {
    dot,
    sum,
    axpy,
    gemv,
    mul_into,
    div_into,
    scale_into,
};

/// The kernel table pinned to the fused-scalar references — the
/// bitwise baseline arm for `bench_kernels` and the simd equivalence
/// suites.
pub const FUSED_KERNELS: KernelSet = KernelSet {
    dot: dot_fused,
    sum: sum_fused,
    axpy: axpy_fused,
    gemv: gemv_fused,
    mul_into: mul_into_fused,
    div_into: div_into_fused,
    scale_into: scale_into_fused,
};

/// [`gemv`] pinned to the fused-scalar kernel: one [`dot_fused`] per
/// row. The universal fallback and the bitwise reference for
/// `simd::gemv_avx2`.
#[inline]
pub fn gemv_fused(data: &[f64], n_cols: usize, w: &[f64], out: &mut [f64]) {
    debug_assert_eq!(data.len(), n_cols * out.len());
    debug_assert_eq!(w.len(), n_cols);
    if n_cols == 0 {
        out.fill(0.0);
        return;
    }
    for (o, row) in out.iter_mut().zip(data.chunks_exact(n_cols)) {
        *o = dot_fused(row, w);
    }
}

/// Fused dot product: eight independent accumulator lanes over the
/// aligned body, a scalar pass over the tail, lanes combined pairwise
/// in the fixed order `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`.
/// The universal fallback and the bitwise reference for
/// `simd::dot_avx2`.
#[inline]
pub fn dot_fused(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % 8;
    let mut s = [0.0f64; 8];
    for (ca, cb) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        // Fixed-size views let the backend pack the eight independent
        // lanes into vector ops; per-lane arithmetic (and therefore the
        // result bits) is unchanged.
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let ca: &[f64; 8] = ca.try_into().expect("chunks_exact(8)");
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let cb: &[f64; 8] = cb.try_into().expect("chunks_exact(8)");
        for k in 0..8 {
            s[k] += ca[k] * cb[k];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        tail += x * y;
    }
    let [s0, s1, s2, s3, s4, s5, s6, s7] = s;
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// Fused sum: eight independent accumulator lanes over the aligned
/// body, a scalar pass over the tail, lanes combined pairwise in the
/// fixed order `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`. The
/// universal fallback and the bitwise reference for `simd::sum_avx2`.
#[inline]
pub fn sum_fused(a: &[f64]) -> f64 {
    let split = a.len() - a.len() % 8;
    let mut s = [0.0f64; 8];
    for chunk in a[..split].chunks_exact(8) {
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let chunk: &[f64; 8] = chunk.try_into().expect("chunks_exact(8)");
        for k in 0..8 {
            s[k] += chunk[k];
        }
    }
    let mut tail = 0.0;
    for x in &a[split..] {
        tail += x;
    }
    let [s0, s1, s2, s3, s4, s5, s6, s7] = s;
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// Scalar reference sum (one accumulator, strict left-to-right). The
/// baseline [`sum`] is tolerance-checked against.
#[inline]
pub fn sum_scalar(a: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in a {
        acc += x;
    }
    acc
}

/// Scalar reference dot product (one accumulator, strict left-to-right
/// summation). The baseline for `bench_kernels` and tolerance
/// cross-checks; hot paths use the dispatching [`dot`].
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fused `y += alpha · x`, unrolled eight-wide. Each output slot is an
/// independent accumulator, so the result is bitwise-identical to the
/// naive per-element loop. The universal fallback and the bitwise
/// reference for `simd::axpy_avx2`.
#[inline]
pub fn axpy_fused(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let split = x.len() - x.len() % 8;
    for (cx, cy) in x[..split]
        .chunks_exact(8)
        .zip(y[..split].chunks_exact_mut(8))
    {
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let cx: &[f64; 8] = cx.try_into().expect("chunks_exact(8)");
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let cy: &mut [f64; 8] = cy.try_into().expect("chunks_exact(8)");
        for k in 0..8 {
            cy[k] += alpha * cx[k];
        }
    }
    for (vx, vy) in x[split..].iter().zip(&mut y[split..]) {
        *vy += alpha * vx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_dot_matches_scalar_within_rounding() {
        for len in [0, 1, 3, 4, 7, 8, 11, 64, 129] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos()).collect();
            let f = dot(&a, &b);
            let s = dot_scalar(&a, &b);
            assert!(
                (f - s).abs() < 1e-12 * (1.0 + s.abs()),
                "len {len}: {f} vs {s}"
            );
        }
    }

    #[test]
    fn fused_sum_matches_scalar_within_rounding_and_is_deterministic() {
        for len in [0, 1, 3, 7, 8, 9, 16, 64, 129] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
            let f = sum(&a);
            let s = sum_scalar(&a);
            assert!(
                (f - s).abs() < 1e-9 * (1.0 + s.abs()),
                "len {len}: {f} vs {s}"
            );
            assert_eq!(sum(&a).to_bits(), f.to_bits(), "len {len} replays bitwise");
        }
    }

    #[test]
    fn dispatch_matches_fused_bitwise() {
        // Whatever path `dot`/`sum`/`axpy` dispatch to must be
        // bit-identical to the fused reference (the deeper property
        // suite with NaN/∞/subnormal inputs lives in tests/prop_simd.rs).
        for len in [0, 1, 7, 8, 9, 31, 32, 100, 257] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.61).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.23).cos() * 2.0).collect();
            assert_eq!(dot(&a, &b).to_bits(), dot_fused(&a, &b).to_bits());
            assert_eq!(sum(&a).to_bits(), sum_fused(&a).to_bits());
            let mut y1 = b.clone();
            let mut y2 = b.clone();
            axpy(1.3, &a, &mut y1);
            axpy_fused(1.3, &a, &mut y2);
            for (p, q) in y1.iter().zip(&y2) {
                assert_eq!(p.to_bits(), q.to_bits(), "axpy len {len}");
            }
        }
    }

    #[test]
    fn elementwise_dispatch_matches_fused_bitwise() {
        // The elementwise kernels are slot-independent pure IEEE ops;
        // dispatch must agree with the pinned references bit for bit on
        // every length class (the adversarial-input suite lives in
        // tests/prop_simd.rs).
        for len in [0usize, 1, 3, 4, 7, 8, 9, 31, 32, 100, 257] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.61).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len)
                .map(|i| (i as f64 * 0.23).cos() * 2.0 + 0.5)
                .collect();
            let mut o1 = vec![0.0; len];
            let mut o2 = vec![0.0; len];
            mul_into(&a, &b, &mut o1);
            mul_into_fused(&a, &b, &mut o2);
            for (p, q) in o1.iter().zip(&o2) {
                assert_eq!(p.to_bits(), q.to_bits(), "mul len {len}");
            }
            div_into(&a, &b, &mut o1);
            div_into_fused(&a, &b, &mut o2);
            for (p, q) in o1.iter().zip(&o2) {
                assert_eq!(p.to_bits(), q.to_bits(), "div len {len}");
            }
            let mut s1 = a.clone();
            let mut s2 = a.clone();
            scale_into(1.37, &mut s1);
            scale_into_fused(1.37, &mut s2);
            for (p, q) in s1.iter().zip(&s2) {
                assert_eq!(p.to_bits(), q.to_bits(), "scale len {len}");
            }
        }
    }

    #[test]
    fn kernel_sets_agree_bitwise() {
        // The two tables must be interchangeable: same bits from every
        // entry point on the same input.
        let a: Vec<f64> = (0..97).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let b: Vec<f64> = (0..97).map(|i| (i as f64 * 1.1).cos() + 2.0).collect();
        assert_eq!(
            (DISPATCH_KERNELS.dot)(&a, &b).to_bits(),
            (FUSED_KERNELS.dot)(&a, &b).to_bits()
        );
        assert_eq!(
            (DISPATCH_KERNELS.sum)(&a).to_bits(),
            (FUSED_KERNELS.sum)(&a).to_bits()
        );
        let mut o1 = vec![0.0; 97];
        let mut o2 = vec![0.0; 97];
        (DISPATCH_KERNELS.div_into)(&a, &b, &mut o1);
        (FUSED_KERNELS.div_into)(&a, &b, &mut o2);
        for (p, q) in o1.iter().zip(&o2) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn dot_is_deterministic_per_call_shape() {
        let a: Vec<f64> = (0..101).map(|i| (i as f64).sqrt()).collect();
        let b: Vec<f64> = (0..101).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_is_bitwise_equal_to_naive_loop() {
        let x: Vec<f64> = (0..37).map(|i| (i as f64 * 0.11).tan()).collect();
        let mut fused = vec![0.25; 37];
        let mut naive = fused.clone();
        axpy(1.75, &x, &mut fused);
        for (n, v) in naive.iter_mut().zip(&x) {
            *n += 1.75 * v;
        }
        for (a, b) in fused.iter().zip(&naive) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
