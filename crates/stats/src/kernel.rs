//! The workspace's scalar numeric kernels: fused, unroll-friendly inner
//! loops shared by the matrix layer in `fairbridge-learn` (which
//! re-exports them) and the resampling/OT solvers in this crate.
//!
//! Each fused kernel keeps eight independent accumulator lanes over the
//! aligned body of the slice so the compiler can break the one-add-per-
//! FPU-latency dependency chain of a naive left-to-right sum (and pack
//! the lanes into vector ops), then combines the lanes pairwise and
//! adds the scalar tail. That combination order is **fixed**: the same
//! slices always produce the same bits, which is the foundation of the
//! bitwise determinism contract the parallel bootstrap, Sinkhorn and
//! trainer paths promise. The parallel callers therefore always hand
//! *whole* logical units (matrix rows, kernel rows) to these functions
//! and never split one unit across workers.
//!
//! The single-accumulator reference implementations ([`dot_scalar`])
//! stay in-tree as the baseline `bench_kernels` measures against.

/// Fused dot product: eight independent accumulator lanes over the
/// aligned body, a scalar pass over the tail, lanes combined pairwise
/// in the fixed order `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % 8;
    let mut s = [0.0f64; 8];
    for (ca, cb) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        // Fixed-size views let the backend pack the eight independent
        // lanes into vector ops; per-lane arithmetic (and therefore the
        // result bits) is unchanged.
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let ca: &[f64; 8] = ca.try_into().expect("chunks_exact(8)");
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let cb: &[f64; 8] = cb.try_into().expect("chunks_exact(8)");
        for k in 0..8 {
            s[k] += ca[k] * cb[k];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        tail += x * y;
    }
    let [s0, s1, s2, s3, s4, s5, s6, s7] = s;
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// Fused sum: eight independent accumulator lanes over the aligned
/// body, a scalar pass over the tail, lanes combined pairwise in the
/// fixed order `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`.
///
/// This is the sanctioned reduction primitive the D4 lint points at:
/// new cross-path float reductions should call `kernel::sum` rather
/// than `.sum::<f64>()`, so the combination order — and therefore the
/// result bits — is pinned by one function instead of re-derived at
/// every call site.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    let split = a.len() - a.len() % 8;
    let mut s = [0.0f64; 8];
    for chunk in a[..split].chunks_exact(8) {
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let chunk: &[f64; 8] = chunk.try_into().expect("chunks_exact(8)");
        for k in 0..8 {
            s[k] += chunk[k];
        }
    }
    let mut tail = 0.0;
    for x in &a[split..] {
        tail += x;
    }
    let [s0, s1, s2, s3, s4, s5, s6, s7] = s;
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

/// Scalar reference sum (one accumulator, strict left-to-right). The
/// baseline [`sum`] is tolerance-checked against.
#[inline]
pub fn sum_scalar(a: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in a {
        acc += x;
    }
    acc
}

/// Scalar reference dot product (one accumulator, strict left-to-right
/// summation). The baseline for `bench_kernels` and tolerance
/// cross-checks; hot paths use the fused [`dot`].
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fused `y += alpha · x`, unrolled eight-wide. Each output slot is an
/// independent accumulator, so the result is bitwise-identical to the
/// naive per-element loop.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let split = x.len() - x.len() % 8;
    for (cx, cy) in x[..split]
        .chunks_exact(8)
        .zip(y[..split].chunks_exact_mut(8))
    {
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let cx: &[f64; 8] = cx.try_into().expect("chunks_exact(8)");
        // fb-lint: allow(P1): chunks_exact(8) yields exactly 8-element slices
        let cy: &mut [f64; 8] = cy.try_into().expect("chunks_exact(8)");
        for k in 0..8 {
            cy[k] += alpha * cx[k];
        }
    }
    for (vx, vy) in x[split..].iter().zip(&mut y[split..]) {
        *vy += alpha * vx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_dot_matches_scalar_within_rounding() {
        for len in [0, 1, 3, 4, 7, 8, 11, 64, 129] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos()).collect();
            let f = dot(&a, &b);
            let s = dot_scalar(&a, &b);
            assert!(
                (f - s).abs() < 1e-12 * (1.0 + s.abs()),
                "len {len}: {f} vs {s}"
            );
        }
    }

    #[test]
    fn fused_sum_matches_scalar_within_rounding_and_is_deterministic() {
        for len in [0, 1, 3, 7, 8, 9, 16, 64, 129] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
            let f = sum(&a);
            let s = sum_scalar(&a);
            assert!(
                (f - s).abs() < 1e-9 * (1.0 + s.abs()),
                "len {len}: {f} vs {s}"
            );
            assert_eq!(sum(&a).to_bits(), f.to_bits(), "len {len} replays bitwise");
        }
    }

    #[test]
    fn dot_is_deterministic_per_call_shape() {
        let a: Vec<f64> = (0..101).map(|i| (i as f64).sqrt()).collect();
        let b: Vec<f64> = (0..101).map(|i| 1.0 / (1.0 + i as f64)).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_is_bitwise_equal_to_naive_loop() {
        let x: Vec<f64> = (0..37).map(|i| (i as f64 * 0.11).tan()).collect();
        let mut fused = vec![0.25; 37];
        let mut naive = fused.clone();
        axpy(1.75, &x, &mut fused);
        for (n, v) in naive.iter_mut().zip(&x) {
            *n += 1.75 * v;
        }
        for (a, b) in fused.iter().zip(&naive) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
