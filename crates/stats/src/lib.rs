//! # fairbridge-stats
//!
//! Statistics substrate for the fairbridge fairness toolkit.
//!
//! Section IV.F of the ICDE'24 paper ("Sampling requirements") frames bias
//! detection as *distance estimation between probability distributions* —
//! comparing the distribution of a protected attribute in the population
//! against its distribution in training data — and names Hellinger, Total
//! Variation, Wasserstein and Maximum Mean Discrepancy explicitly. This
//! crate implements those distances plus the supporting machinery every
//! audit needs:
//!
//! * [`descriptive`] — means, variances, quantiles, weighted statistics;
//! * [`distribution`] — discrete and empirical distributions;
//! * [`distance`] — TV, Hellinger, KL, JS, χ², Wasserstein-1, energy, MMD;
//! * [`correlation`] — Pearson, Spearman, point-biserial, Cramér's V,
//!   mutual information (proxy-discrimination detection, Section IV.B);
//! * [`hypothesis`] — two-proportion z, χ² independence, Fisher exact,
//!   permutation tests (significance of subgroup findings, Section IV.C);
//! * [`bootstrap`] — percentile bootstrap confidence intervals, serial
//!   and deterministically parallel;
//! * [`kernel`] — fused dot/axpy inner loops shared with the matrix
//!   layer (the numeric kernel substrate);
//! * [`sampling`] — empirical sample-complexity studies of bias detection
//!   (Section IV.F / experiment E13);
//! * [`sinkhorn`] — entropic optimal transport on discrete supports;
//! * [`special`] — erf, ln-gamma, incomplete gamma/beta, normal CDF;
//! * [`rng`] — deterministic SplitMix64/xoshiro256++ generators and the
//!   normal/log-normal samplers the synthetic cohorts draw from (the
//!   workspace builds offline, so it vendors its own PRNG).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bootstrap;
pub mod correlation;
pub mod descriptive;
pub mod distance;
pub mod distribution;
pub mod hypothesis;
pub mod kernel;
pub mod rng;
pub mod sampling;
pub mod sinkhorn;
pub mod special;

pub use distance::{
    chi_square_distance, energy_distance, hellinger, js_divergence, kl_divergence, mmd_rbf,
    total_variation, wasserstein_1d,
};
pub use distribution::{Discrete, Empirical};
