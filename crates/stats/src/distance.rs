//! Distances between probability distributions.
//!
//! Section IV.F names Hellinger, Total Variation, Wasserstein (optimal
//! transport) and Maximum Mean Discrepancy as the instruments for
//! quantifying how far a training sample drifts from the population.
//! Discrete distances operate on [`Discrete`]; Wasserstein-1, energy
//! distance and MMD operate on raw real-valued samples.

use crate::distribution::{Discrete, Empirical};

fn check_same_support(p: &Discrete, q: &Discrete) {
    assert_eq!(
        p.k(),
        q.k(),
        "distributions must share support: {} vs {} categories",
        p.k(),
        q.k()
    );
}

/// Total variation distance: ½ Σ|pᵢ − qᵢ| ∈ \[0, 1\].
pub fn total_variation(p: &Discrete, q: &Discrete) -> f64 {
    check_same_support(p, q);
    0.5 * p
        .probs()
        .iter()
        .zip(q.probs())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Hellinger distance: (1/√2)·‖√p − √q‖₂ ∈ \[0, 1\].
pub fn hellinger(p: &Discrete, q: &Discrete) -> f64 {
    check_same_support(p, q);
    let s: f64 = p
        .probs()
        .iter()
        .zip(q.probs())
        .map(|(a, b)| (a.sqrt() - b.sqrt()).powi(2))
        .sum();
    (s / 2.0).sqrt().min(1.0)
}

/// Kullback–Leibler divergence KL(p‖q) in nats. Infinite when p puts mass
/// where q has none.
pub fn kl_divergence(p: &Discrete, q: &Discrete) -> f64 {
    check_same_support(p, q);
    p.probs()
        .iter()
        .zip(q.probs())
        .map(|(&a, &b)| {
            if a == 0.0 {
                0.0
            } else if b == 0.0 {
                f64::INFINITY
            } else {
                a * (a / b).ln()
            }
        })
        .sum()
}

/// Jensen–Shannon divergence (symmetrized, bounded KL) in nats ∈ [0, ln 2].
pub fn js_divergence(p: &Discrete, q: &Discrete) -> f64 {
    check_same_support(p, q);
    let m: Vec<f64> = p
        .probs()
        .iter()
        .zip(q.probs())
        .map(|(a, b)| 0.5 * (a + b))
        .collect();
    let m = Discrete::new(m).expect("midpoint is a valid distribution");
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Pearson χ² distance Σ (pᵢ−qᵢ)²/qᵢ, treating 0/0 terms as 0.
pub fn chi_square_distance(p: &Discrete, q: &Discrete) -> f64 {
    check_same_support(p, q);
    p.probs()
        .iter()
        .zip(q.probs())
        .map(|(&a, &b)| {
            if b == 0.0 {
                if a == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (a - b).powi(2) / b
            }
        })
        .sum()
}

/// Exact 1-D Wasserstein-1 (earth mover's) distance between two empirical
/// distributions, via the quantile-function integral
/// W₁ = ∫₀¹ |F⁻¹(t) − G⁻¹(t)| dt, computed exactly on the merged grid of
/// sample CDF jump points.
pub fn wasserstein_1d(x: &Empirical, y: &Empirical) -> f64 {
    let xs = x.sorted();
    let ys = y.sorted();
    let n = xs.len();
    let m = ys.len();
    // Walk both quantile functions over the merged partition of [0,1].
    let mut total = 0.0;
    let mut t = 0.0f64;
    let mut i = 0usize; // xs[i] is the current x-quantile segment value
    let mut j = 0usize;
    while t < 1.0 - 1e-15 {
        let next_x = (i + 1) as f64 / n as f64;
        let next_y = (j + 1) as f64 / m as f64;
        let next_t = next_x.min(next_y).min(1.0);
        total += (next_t - t) * (xs[i] - ys[j]).abs();
        t = next_t;
        if (next_x - t).abs() < 1e-15 && i + 1 < n {
            i += 1;
        }
        if (next_y - t).abs() < 1e-15 && j + 1 < m {
            j += 1;
        }
    }
    total
}

/// Energy distance between two samples:
/// 2·E|X−Y| − E|X−X′| − E|Y−Y′| (non-negative, 0 iff same distribution).
pub fn energy_distance(x: &[f64], y: &[f64]) -> f64 {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "energy_distance: empty sample"
    );
    let exy = mean_abs_cross(x, y);
    let exx = mean_abs_cross(x, x);
    let eyy = mean_abs_cross(y, y);
    (2.0 * exy - exx - eyy).max(0.0)
}

fn mean_abs_cross(a: &[f64], b: &[f64]) -> f64 {
    let mut s = 0.0;
    for &ai in a {
        for &bi in b {
            s += (ai - bi).abs();
        }
    }
    s / (a.len() * b.len()) as f64
}

/// Squared Maximum Mean Discrepancy with an RBF kernel of bandwidth `sigma`
/// (biased V-statistic estimator, always ≥ 0).
///
/// MMD²(X,Y) = E k(x,x′) + E k(y,y′) − 2 E k(x,y),
/// k(a,b) = exp(−(a−b)²/(2σ²)).
pub fn mmd_rbf(x: &[f64], y: &[f64], sigma: f64) -> f64 {
    assert!(sigma > 0.0, "mmd_rbf requires sigma > 0");
    assert!(!x.is_empty() && !y.is_empty(), "mmd_rbf: empty sample");
    let k = |a: f64, b: f64| (-(a - b).powi(2) / (2.0 * sigma * sigma)).exp();
    let mean_k = |a: &[f64], b: &[f64]| {
        let mut s = 0.0;
        for &ai in a {
            for &bi in b {
                s += k(ai, bi);
            }
        }
        s / (a.len() * b.len()) as f64
    };
    (mean_k(x, x) + mean_k(y, y) - 2.0 * mean_k(x, y)).max(0.0)
}

/// Median-heuristic bandwidth for [`mmd_rbf`]: the median pairwise absolute
/// difference across the pooled sample (positive fallback of 1.0 when the
/// pooled sample is constant).
pub fn mmd_median_bandwidth(x: &[f64], y: &[f64]) -> f64 {
    let pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let mut dists = Vec::with_capacity(pooled.len() * (pooled.len() - 1) / 2);
    for i in 0..pooled.len() {
        for j in (i + 1)..pooled.len() {
            dists.push((pooled[i] - pooled[j]).abs());
        }
    }
    let m = crate::descriptive::median(&dists);
    if m.is_nan() || m <= 0.0 {
        1.0
    } else {
        m
    }
}

/// Wasserstein-1 between two discrete distributions on the ordered support
/// `0..k`: Σᵢ |CDF_p(i) − CDF_q(i)| (unit spacing between categories).
pub fn wasserstein_discrete(p: &Discrete, q: &Discrete) -> f64 {
    check_same_support(p, q);
    let mut cp = 0.0;
    let mut cq = 0.0;
    let mut total = 0.0;
    for i in 0..p.k() - 1 {
        cp += p.p(i);
        cq += q.p(i);
        total += (cp - cq).abs();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(p: &[f64]) -> Discrete {
        Discrete::new(p.to_vec()).unwrap()
    }

    #[test]
    fn tv_reference() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.8, 0.2]);
        assert!((total_variation(&p, &q) - 0.3).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
        // disjoint support → 1
        let a = d(&[1.0, 0.0]);
        let b = d(&[0.0, 1.0]);
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_reference() {
        let a = d(&[1.0, 0.0]);
        let b = d(&[0.0, 1.0]);
        assert!((hellinger(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(hellinger(&a, &a), 0.0);
        // hellinger^2 <= TV (standard inequality)
        let p = d(&[0.3, 0.7]);
        let q = d(&[0.6, 0.4]);
        assert!(hellinger(&p, &q).powi(2) <= total_variation(&p, &q) + 1e-12);
    }

    #[test]
    fn kl_properties() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.9, 0.1]);
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let point = d(&[1.0, 0.0]);
        let other = d(&[0.0, 1.0]);
        assert!(kl_divergence(&point, &other).is_infinite());
    }

    #[test]
    fn js_bounded_and_symmetric() {
        let p = d(&[1.0, 0.0]);
        let q = d(&[0.0, 1.0]);
        assert!((js_divergence(&p, &q) - 2.0_f64.ln().min(1.0)).abs() < 1e-9);
        let a = d(&[0.3, 0.7]);
        let b = d(&[0.5, 0.5]);
        assert!((js_divergence(&a, &b) - js_divergence(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn chi_square_reference() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.25, 0.75]);
        // (0.25)^2/0.25 + (0.25)^2/0.75 = 0.25 + 0.0833...
        assert!((chi_square_distance(&p, &q) - (0.25 + 0.0625 / 0.75)).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_1d_translation() {
        // W1 between X and X+c is exactly |c|
        let x = Empirical::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let y = Empirical::new(vec![1.5, 2.5, 3.5, 4.5]).unwrap();
        assert!((wasserstein_1d(&x, &y) - 1.5).abs() < 1e-12);
        assert_eq!(wasserstein_1d(&x, &x), 0.0);
    }

    #[test]
    fn wasserstein_1d_unequal_sizes() {
        // X = {0, 1}, Y = {0, 0, 1, 1} have identical empirical CDFs at the
        // quantile level → W1 = 0.
        let x = Empirical::new(vec![0.0, 1.0]).unwrap();
        let y = Empirical::new(vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        assert!(wasserstein_1d(&x, &y).abs() < 1e-12);
        // X = {0}, Y = {0, 1}: quantile functions differ on t ∈ (0.5, 1] by 1.
        let x = Empirical::new(vec![0.0]).unwrap();
        let y = Empirical::new(vec![0.0, 1.0]).unwrap();
        assert!((wasserstein_1d(&x, &y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_1d_brute_force_cross_check() {
        // For equal-size samples W1 = (1/n) Σ |x_(i) − y_(i)|.
        let xs = vec![0.3, -1.2, 4.0, 2.2, 0.0];
        let ys = vec![1.0, 1.5, -0.5, 3.0, 2.0];
        let x = Empirical::new(xs.clone()).unwrap();
        let y = Empirical::new(ys.clone()).unwrap();
        let mut xs_s = xs;
        let mut ys_s = ys;
        xs_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ys_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let brute: f64 = xs_s
            .iter()
            .zip(&ys_s)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / xs_s.len() as f64;
        assert!((wasserstein_1d(&x, &y) - brute).abs() < 1e-12);
    }

    #[test]
    fn energy_distance_properties() {
        let x = [0.0, 1.0, 2.0];
        let y = [10.0, 11.0, 12.0];
        assert!(energy_distance(&x, &y) > 0.0);
        assert!(energy_distance(&x, &x).abs() < 1e-12);
    }

    #[test]
    fn mmd_properties() {
        let x = [0.0, 0.5, 1.0, 0.2];
        let y = [5.0, 5.5, 6.0, 5.2];
        let sigma = mmd_median_bandwidth(&x, &y);
        assert!(sigma > 0.0);
        assert!(mmd_rbf(&x, &y, sigma) > 0.1);
        assert!(mmd_rbf(&x, &x, sigma).abs() < 1e-12);
    }

    #[test]
    fn mmd_median_bandwidth_constant_fallback() {
        assert_eq!(mmd_median_bandwidth(&[1.0, 1.0], &[1.0]), 1.0);
    }

    #[test]
    fn wasserstein_discrete_cdf_formula() {
        let p = d(&[1.0, 0.0, 0.0]);
        let q = d(&[0.0, 0.0, 1.0]);
        // moving all mass across 2 unit steps
        assert!((wasserstein_discrete(&p, &q) - 2.0).abs() < 1e-12);
        assert_eq!(wasserstein_discrete(&p, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "must share support")]
    fn mismatched_support_panics() {
        total_variation(&d(&[1.0]), &d(&[0.5, 0.5]));
    }
}
