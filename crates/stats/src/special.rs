//! Special functions: erf, ln-gamma, regularized incomplete gamma and beta,
//! normal CDF/quantile.
//!
//! Implemented from the classical Numerical-Recipes-style series and
//! continued-fraction expansions; accuracy is more than sufficient for the
//! p-values and tail probabilities fairness auditing needs (absolute error
//! well below 1e-8 over the tested ranges).

/// The error function erf(x), via the Abramowitz–Stegun 7.1.26-style
/// rational approximation refined with one Newton correction using the
/// exact derivative. Max absolute error < 1e-10 on |x| ≤ 6.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x > 6.0 {
        return 1.0;
    }
    // Series for small x, continued fraction (via gammp) for large x.
    if x < 2.0 {
        // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0usize;
        while term.abs() > 1e-17 * sum.abs() && n < 200 {
            n += 1;
            term *= -x2 / n as f64;
            sum += term / (2 * n + 1) as f64;
        }
        2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // erf(x) = P(1/2, x^2), the regularized lower incomplete gamma.
        reg_gamma_p(0.5, x * x)
    }
}

/// The complementary error function erfc(x) = 1 − erf(x).
pub fn erfc(x: f64) -> f64 {
    if x < 2.0 {
        1.0 - erf(x)
    } else {
        reg_gamma_q(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal survival function 1 − Φ(z), computed without
/// cancellation for large z.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function Φ⁻¹(p), via Acklam's rational
/// approximation polished with one Newton step. Accurate to ~1e-12.
#[allow(clippy::excessive_precision)] // published Acklam coefficients kept verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    // Destructured once so the Horner ladders below are plain named
    // loads — no indexing, nothing that can panic.
    let [a0, a1, a2, a3, a4, a5] = A;
    let [b0, b1, b2, b3, b4] = B;
    let [c0, c1, c2, c3, c4, c5] = C;
    let [d0, d1, d2, d3] = D;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5)
            / ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((a0 * r + a1) * r + a2) * r + a3) * r + a4) * r + a5) * q
            / (((((b0 * r + b1) * r + b2) * r + b3) * r + b4) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5)
            / ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0)
    };
    // One Newton polish: x -= (Φ(x) − p) / φ(x).
    let e = normal_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    x - e / pdf
}

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
#[allow(clippy::excessive_precision)] // published Lanczos coefficients kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let [coef0, ..] = COEF;
    let mut a = coef0;
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a).
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_p requires a>0, x>=0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_q requires a>0, x>=0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Chi-square survival function: P(X > x) for X ~ χ²(k).
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi_square_sf requires k > 0");
    if x <= 0.0 {
        return 1.0;
    }
    reg_gamma_q(k / 2.0, x / 2.0)
}

/// Regularized incomplete beta function I_x(a, b), via the continued
/// fraction expansion (Numerical Recipes `betai`).
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_beta requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "reg_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_contfrac(a, b, x) / a
    } else {
        1.0 - front * beta_contfrac(b, a, 1.0 - x) / b
    }
}

fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// log of the binomial coefficient C(n, k).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-8;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < TOL);
        assert!((erf(0.5) - 0.520_499_877_813_046_5).abs() < TOL);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < TOL);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < TOL);
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < TOL);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < TOL);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[0.0, 0.3, 1.0, 1.7, 2.5, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < TOL);
        assert!((normal_cdf(1.96) - 0.975_002_104_851_780_2).abs() < 1e-7);
        assert!((normal_cdf(-1.644_853_626_951_472) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.05, 0.25, 0.5, 0.8, 0.95, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "normal_quantile requires p in (0,1)")]
    fn normal_quantile_rejects_boundary() {
        normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // recurrence Γ(x+1) = xΓ(x)
        for &x in &[0.3, 1.7, 6.2] {
            assert!((ln_gamma(x + 1.0) - (ln_gamma(x) + x.ln())).abs() < 1e-10);
        }
    }

    #[test]
    fn incomplete_gamma_p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                assert!((reg_gamma_p(a, x) + reg_gamma_q(a, x) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // Well-known critical values: P(χ²₁ > 3.841) ≈ 0.05
        assert!((chi_square_sf(3.841_458_820_694_124, 1.0) - 0.05).abs() < 1e-9);
        // P(χ²₂ > 5.991) ≈ 0.05; χ²₂ has closed-form exp(-x/2)
        assert!((chi_square_sf(5.0, 2.0) - (-2.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn reg_beta_reference_values() {
        // I_x(1,1) = x
        for &x in &[0.0, 0.2, 0.5, 0.9, 1.0] {
            assert!((reg_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // symmetry: I_x(a,b) = 1 − I_{1−x}(b,a)
        assert!((reg_beta(2.5, 1.5, 0.3) - (1.0 - reg_beta(1.5, 2.5, 0.7))).abs() < 1e-12);
        // I_x(2,2) = x^2 (3 − 2x)
        let x: f64 = 0.4;
        assert!((reg_beta(2.0, 2.0, x) - x * x * (3.0 - 2.0 * x)).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_matches_small_cases() {
        assert!((ln_choose(5, 2) - 10.0_f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 0)).abs() < 1e-10);
        assert!((ln_choose(52, 5) - 2_598_960.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn erf_large_argument_saturates() {
        assert_eq!(erf(7.0), 1.0);
        assert!(normal_sf(8.0) > 0.0);
        assert!(normal_sf(8.0) < 1e-14);
    }
}
