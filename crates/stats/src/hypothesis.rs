//! Hypothesis tests for bias findings.
//!
//! Section IV.C warns that subgroup findings from sparse data can be
//! statistically questionable ("the significance of the findings can be
//! questionable"). These tests attach p-values to rate-gap findings:
//! the two-proportion z-test and Fisher's exact test for a single
//! group-vs-group comparison, the χ² independence test for full
//! attribute-vs-outcome tables, and a generic permutation test.

use crate::correlation::{ln_hypergeometric_prob, Contingency};
use crate::rng::Rng;
use crate::special::{chi_square_sf, normal_sf};

/// Result of a significance test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Value of the test statistic.
    pub statistic: f64,
    /// Two-sided p-value (one-sided where documented).
    pub p_value: f64,
    /// Degrees of freedom where applicable.
    pub dof: Option<f64>,
}

impl TestResult {
    /// Whether the null is rejected at significance level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-proportion z-test (two-sided), pooled standard error.
///
/// Tests H₀: p₁ = p₂ given `x1` successes of `n1` trials vs `x2` of `n2`.
/// This is the canonical test for a demographic-parity gap.
pub fn two_proportion_z(x1: u64, n1: u64, x2: u64, n2: u64) -> TestResult {
    assert!(n1 > 0 && n2 > 0, "two_proportion_z requires positive n");
    assert!(x1 <= n1 && x2 <= n2, "successes exceed trials");
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    if se == 0.0 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
            dof: None,
        };
    }
    let z = (p1 - p2) / se;
    TestResult {
        statistic: z,
        p_value: (2.0 * normal_sf(z.abs())).min(1.0),
        dof: None,
    }
}

/// Pearson χ² test of independence on a contingency table (two-sided).
pub fn chi_square_independence(table: &Contingency) -> TestResult {
    let stat = table.chi_square_stat();
    let dof = table.dof();
    let p = if dof <= 0.0 {
        1.0
    } else {
        chi_square_sf(stat, dof)
    };
    TestResult {
        statistic: stat,
        p_value: p,
        dof: Some(dof),
    }
}

/// Fisher's exact test on a 2×2 table `[[a, b], [c, d]]` (two-sided, by the
/// standard "sum of probabilities ≤ observed" rule).
pub fn fisher_exact(a: u64, b: u64, c: u64, d: u64) -> TestResult {
    let p_obs = ln_hypergeometric_prob(a, b, c, d).exp();
    let row1 = a + b;
    let col1 = a + c;
    let n = a + b + c + d;
    let a_min = col1.saturating_sub(n - row1);
    let a_max = row1.min(col1);
    let mut p_total = 0.0;
    for aa in a_min..=a_max {
        let bb = row1 - aa;
        let cc = col1 - aa;
        let dd = n - row1 - cc;
        let p = ln_hypergeometric_prob(aa, bb, cc, dd).exp();
        if p <= p_obs * (1.0 + 1e-9) {
            p_total += p;
        }
    }
    TestResult {
        statistic: p_obs,
        p_value: p_total.min(1.0),
        dof: None,
    }
}

/// Two-sided permutation test for a difference in means between two
/// samples, with `n_perm` random label permutations.
pub fn permutation_mean_diff<R: Rng>(
    x: &[f64],
    y: &[f64],
    n_perm: usize,
    rng: &mut R,
) -> TestResult {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "permutation test: empty sample"
    );
    assert!(n_perm > 0, "permutation test requires n_perm > 0");
    let observed = x.iter().sum::<f64>() / x.len() as f64 - y.iter().sum::<f64>() / y.len() as f64;
    let pooled: Vec<f64> = x.iter().chain(y.iter()).copied().collect();
    let nx = x.len();
    let mut extreme = 0usize;
    let mut buf = pooled.clone();
    for _ in 0..n_perm {
        // Fisher–Yates shuffle of the pooled sample.
        for i in (1..buf.len()).rev() {
            let j = rng.gen_range(0..=i);
            buf.swap(i, j);
        }
        let mx = buf[..nx].iter().sum::<f64>() / nx as f64;
        let my = buf[nx..].iter().sum::<f64>() / (buf.len() - nx) as f64;
        if (mx - my).abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    // Add-one smoothing keeps the p-value strictly positive.
    let p = (extreme + 1) as f64 / (n_perm + 1) as f64;
    TestResult {
        statistic: observed,
        p_value: p.min(1.0),
        dof: None,
    }
}

/// Odds ratio of a 2×2 outcome table with its Woolf (log-normal)
/// confidence interval — the effect size US discrimination litigation
/// reports alongside the four-fifths screen.
///
/// Table layout: group 1 has `x1` positives of `n1`; group 2 has `x2` of
/// `n2`. Returns `(odds_ratio, lo, hi)` at the given confidence. Uses the
/// Haldane–Anscombe 0.5 correction when any cell is zero.
pub fn odds_ratio(x1: u64, n1: u64, x2: u64, n2: u64, confidence: f64) -> (f64, f64, f64) {
    assert!(x1 <= n1 && x2 <= n2, "successes exceed trials");
    assert!(n1 > 0 && n2 > 0, "odds_ratio requires positive n");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let (mut a, mut b) = (x1 as f64, (n1 - x1) as f64);
    let (mut c, mut d) = (x2 as f64, (n2 - x2) as f64);
    if a == 0.0 || b == 0.0 || c == 0.0 || d == 0.0 {
        a += 0.5;
        b += 0.5;
        c += 0.5;
        d += 0.5;
    }
    let or = (a * d) / (b * c);
    let se = (1.0 / a + 1.0 / b + 1.0 / c + 1.0 / d).sqrt();
    let z = crate::special::normal_quantile(0.5 + confidence / 2.0);
    let lo = (or.ln() - z * se).exp();
    let hi = (or.ln() + z * se).exp();
    (or, lo, hi)
}

/// Wilson score confidence interval for a binomial proportion.
///
/// Preferable to the Wald interval for the small subgroup counts that
/// intersectional audits produce.
pub fn wilson_interval(successes: u64, n: u64, confidence: f64) -> (f64, f64) {
    assert!(n > 0, "wilson_interval requires n > 0");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0,1)"
    );
    let z = crate::special::normal_quantile(0.5 + confidence / 2.0);
    let n = n as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Two-sample Kolmogorov–Smirnov test: compares the empirical CDFs of two
/// real-valued samples (the continuous-feature drift check that
/// complements the discrete representation audit of Section IV.F).
///
/// The p-value uses the asymptotic Kolmogorov distribution
/// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}; accurate for n, m ≳ 25.
pub fn ks_two_sample(x: &[f64], y: &[f64]) -> TestResult {
    assert!(!x.is_empty() && !y.is_empty(), "ks test: empty sample");
    let mut xs = x.to_vec();
    let mut ys = y.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n, m) = (xs.len(), ys.len());
    // Walk the merged order tracking the CDF gap.
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n && j < m {
        let xv = xs[i];
        let yv = ys[j];
        if xv <= yv {
            i += 1;
        }
        if yv <= xv {
            j += 1;
        }
        let gap = (i as f64 / n as f64 - j as f64 / m as f64).abs();
        if gap > d {
            d = gap;
        }
    }
    // Asymptotic p-value.
    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p_value = kolmogorov_sf(lambda);
    TestResult {
        statistic: d,
        p_value,
        dof: None,
    }
}

/// Kolmogorov survival function Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn two_proportion_z_reference() {
        // Classic example: 60/100 vs 40/100 → z ≈ 2.828, p ≈ 0.0047
        let r = two_proportion_z(60, 100, 40, 100);
        assert!((r.statistic - 2.828_427).abs() < 1e-3);
        assert!((r.p_value - 0.004_678).abs() < 1e-4);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn two_proportion_z_equal_rates() {
        let r = two_proportion_z(50, 100, 50, 100);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        // degenerate all-success case
        let r = two_proportion_z(10, 10, 10, 10);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn chi_square_independence_reference() {
        // Independent table → p ≈ 1
        let indep = Contingency::from_counts(vec![vec![25.0, 25.0], vec![25.0, 25.0]]);
        let r = chi_square_independence(&indep);
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
        // Strong association → tiny p
        let dep = Contingency::from_counts(vec![vec![45.0, 5.0], vec![5.0, 45.0]]);
        let r = chi_square_independence(&dep);
        assert!(r.p_value < 1e-10);
        assert_eq!(r.dof, Some(1.0));
    }

    #[test]
    fn fisher_exact_reference() {
        // Fisher's tea-tasting: [[3,1],[1,3]] → two-sided p ≈ 0.4857
        let r = fisher_exact(3, 1, 1, 3);
        assert!((r.p_value - 0.485_714_285).abs() < 1e-6);
        // Extreme table
        let r = fisher_exact(10, 0, 0, 10);
        assert!(r.p_value < 1e-4);
    }

    #[test]
    fn fisher_agrees_with_chi_square_on_large_tables() {
        let r_f = fisher_exact(300, 200, 200, 300);
        let t = Contingency::from_counts(vec![vec![300.0, 200.0], vec![200.0, 300.0]]);
        let r_c = chi_square_independence(&t);
        assert!(r_f.p_value < 0.01 && r_c.p_value < 0.01);
    }

    #[test]
    fn permutation_test_detects_shift() {
        let mut rng = StdRng::seed_from_u64(7);
        let x: Vec<f64> = (0..40).map(|i| i as f64 * 0.01).collect();
        let y: Vec<f64> = (0..40).map(|i| 3.0 + i as f64 * 0.01).collect();
        let r = permutation_mean_diff(&x, &y, 500, &mut rng);
        assert!(r.p_value < 0.01);
        // identical samples → not significant
        let r0 = permutation_mean_diff(&x, &x.clone(), 200, &mut rng);
        assert!(r0.p_value > 0.5);
    }

    #[test]
    fn ks_identical_samples_not_significant() {
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin()).collect();
        let r = ks_two_sample(&x, &x.clone());
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn ks_detects_location_shift() {
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let y: Vec<f64> = (0..200).map(|i| 0.3 + i as f64 / 200.0).collect();
        let r = ks_two_sample(&x, &y);
        assert!((r.statistic - 0.3).abs() < 0.02, "D = {}", r.statistic);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn ks_same_distribution_different_draws() {
        // interleaved halves of the same grid — tiny D, large p
        let x: Vec<f64> = (0..100).map(|i| (2 * i) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| (2 * i + 1) as f64).collect();
        let r = ks_two_sample(&x, &y);
        assert!(r.statistic < 0.05);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn ks_unequal_sizes() {
        let x: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..300).map(|i| i as f64 / 5.0).collect();
        let r = ks_two_sample(&x, &y);
        assert!((0.0..=1.0).contains(&r.p_value));
        assert!(r.statistic < 0.15);
    }

    #[test]
    fn odds_ratio_reference_values() {
        // equal rates → OR 1, CI straddles 1
        let (or, lo, hi) = odds_ratio(30, 100, 30, 100, 0.95);
        assert!((or - 1.0).abs() < 1e-12);
        assert!(lo < 1.0 && 1.0 < hi);
        // strong effect: 80/100 vs 20/100 → OR = (80·80)/(20·20) = 16
        let (or, lo, _) = odds_ratio(80, 100, 20, 100, 0.95);
        assert!((or - 16.0).abs() < 1e-9);
        assert!(lo > 1.0, "CI should exclude 1, lo = {lo}");
    }

    #[test]
    fn odds_ratio_zero_cells_use_correction() {
        let (or, lo, hi) = odds_ratio(10, 10, 0, 10, 0.95);
        assert!(or.is_finite() && or > 1.0);
        assert!(lo.is_finite() && hi.is_finite());
        // symmetric case flips the ratio
        let (or2, _, _) = odds_ratio(0, 10, 10, 10, 0.95);
        assert!((or * or2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn odds_ratio_widens_with_confidence() {
        let (_, lo95, hi95) = odds_ratio(40, 100, 25, 100, 0.95);
        let (_, lo99, hi99) = odds_ratio(40, 100, 25, 100, 0.99);
        assert!(lo99 < lo95);
        assert!(hi99 > hi95);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(30, 100, 0.95);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(lo > 0.2 && hi < 0.41);
        // extremes stay in [0,1]
        let (lo, hi) = wilson_interval(0, 5, 0.95);
        assert!(lo.abs() < 1e-12);
        assert!(hi > 0.0 && hi < 1.0);
    }
}
