//! Sample complexity of bias detection (paper Section IV.F).
//!
//! "The relationship between the number of samples, and the error in
//! estimating the bias is known as the sample complexity of bias
//! detection." This module runs that study empirically: draw `n` samples
//! from a known ground-truth distribution, estimate a distance against the
//! known population distribution, and record how the estimation error
//! shrinks with `n`. The classical plug-in rates are O(√(k/n)) for TV and
//! Hellinger on `k` categories and O(n^{−1/2}) for MMD; the empirical
//! log–log slope should be ≈ −1/2.

use crate::distance::{hellinger, mmd_rbf, total_variation, wasserstein_1d};
use crate::distribution::{Discrete, Empirical};
use crate::rng::Rng;

/// Which distance a convergence study estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceKind {
    /// Total variation on discrete support.
    TotalVariation,
    /// Hellinger on discrete support.
    Hellinger,
    /// 1-D Wasserstein on samples.
    Wasserstein1,
    /// RBF-kernel MMD on samples (unit bandwidth).
    MmdRbf,
}

impl DistanceKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DistanceKind::TotalVariation => "TV",
            DistanceKind::Hellinger => "Hellinger",
            DistanceKind::Wasserstein1 => "Wasserstein-1",
            DistanceKind::MmdRbf => "MMD(RBF)",
        }
    }
}

/// One row of a convergence study: error statistics at a sample size.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceRow {
    /// Number of samples drawn per trial.
    pub n: usize,
    /// Mean absolute estimation error over the trials.
    pub mean_abs_error: f64,
    /// Standard deviation of the absolute error over the trials.
    pub std_abs_error: f64,
}

/// The outcome of a convergence study for one distance.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceStudy {
    /// Which distance was studied.
    pub kind: DistanceKind,
    /// The true distance between the two ground-truth distributions.
    pub true_value: f64,
    /// Per-sample-size error rows, in increasing `n`.
    pub rows: Vec<ConvergenceRow>,
}

impl ConvergenceStudy {
    /// Fits the empirical convergence rate: the slope of
    /// log(error) ~ log(n) by least squares. A plug-in estimator obeying a
    /// n^(−1/2) rate yields a slope near −0.5.
    pub fn loglog_slope(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .rows
            .iter()
            .filter(|r| r.mean_abs_error > 0.0)
            .map(|r| ((r.n as f64).ln(), r.mean_abs_error.ln()))
            .collect();
        if pts.len() < 2 {
            return f64::NAN;
        }
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
        if sxx == 0.0 {
            f64::NAN
        } else {
            sxy / sxx
        }
    }
}

/// Draws `n` category codes from a discrete distribution.
pub fn sample_discrete<R: Rng>(dist: &Discrete, n: usize, rng: &mut R) -> Vec<u32> {
    // Build the CDF once, then binary-search per draw.
    let mut cdf = Vec::with_capacity(dist.k());
    let mut acc = 0.0;
    for &p in dist.probs() {
        acc += p;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(dist.k() - 1) as u32
        })
        .collect()
}

/// Runs a convergence study for a *discrete* distance (TV or Hellinger):
/// the population is `p`, the sampled data come from `q`, the true value is
/// d(q, p), and the per-trial estimate is d(q̂ₙ, p).
pub fn discrete_convergence<R: Rng>(
    kind: DistanceKind,
    p: &Discrete,
    q: &Discrete,
    sample_sizes: &[usize],
    trials: usize,
    rng: &mut R,
) -> ConvergenceStudy {
    assert!(trials > 0, "discrete_convergence requires trials > 0");
    let dist_fn = |a: &Discrete, b: &Discrete| match kind {
        DistanceKind::TotalVariation => total_variation(a, b),
        DistanceKind::Hellinger => hellinger(a, b),
        // fb-lint: allow(P1): documented API contract, pinned by a should_panic test
        _ => panic!("discrete_convergence supports only TV/Hellinger"),
    };
    let true_value = dist_fn(q, p);
    let rows = sample_sizes
        .iter()
        .map(|&n| {
            let errs: Vec<f64> = (0..trials)
                .map(|_| {
                    let codes = sample_discrete(q, n, rng);
                    // A degenerate draw (e.g. n = 0) yields no empirical
                    // distribution; NaN flows into the row honestly and
                    // loglog_slope's `> 0` filter drops it.
                    Discrete::from_codes(&codes, q.k())
                        .map(|q_hat| (dist_fn(&q_hat, p) - true_value).abs())
                        .unwrap_or(f64::NAN)
                })
                .collect();
            ConvergenceRow {
                n,
                mean_abs_error: crate::descriptive::mean(&errs),
                std_abs_error: crate::descriptive::std_dev(&errs),
            }
        })
        .collect();
    ConvergenceStudy {
        kind,
        true_value,
        rows,
    }
}

/// Runs a convergence study for a *continuous* distance (Wasserstein-1 or
/// MMD) between two samplers given as closures producing i.i.d. draws.
///
/// The "true" value is computed once from large reference samples
/// (`reference_n` draws each).
pub fn continuous_convergence<R, FX, FY>(
    kind: DistanceKind,
    mut sample_x: FX,
    mut sample_y: FY,
    sample_sizes: &[usize],
    trials: usize,
    reference_n: usize,
    rng: &mut R,
) -> ConvergenceStudy
where
    R: Rng,
    FX: FnMut(&mut R) -> f64,
    FY: FnMut(&mut R) -> f64,
{
    assert!(trials > 0 && reference_n > 1, "invalid study parameters");
    let dist_fn = |xs: &[f64], ys: &[f64]| match kind {
        DistanceKind::Wasserstein1 => {
            // An empty sample (n = 0 in `sample_sizes`) has no empirical
            // CDF; NaN propagates into the row instead of panicking and
            // is dropped by loglog_slope's `> 0` filter.
            match (Empirical::new(xs.to_vec()), Empirical::new(ys.to_vec())) {
                (Ok(ex), Ok(ey)) => wasserstein_1d(&ex, &ey),
                _ => f64::NAN,
            }
        }
        DistanceKind::MmdRbf => mmd_rbf(xs, ys, 1.0),
        // fb-lint: allow(P1): documented API contract mirroring discrete_convergence
        _ => panic!("continuous_convergence supports only W1/MMD"),
    };
    let ref_x: Vec<f64> = (0..reference_n).map(|_| sample_x(rng)).collect();
    let ref_y: Vec<f64> = (0..reference_n).map(|_| sample_y(rng)).collect();
    let true_value = dist_fn(&ref_x, &ref_y);
    let rows = sample_sizes
        .iter()
        .map(|&n| {
            let errs: Vec<f64> = (0..trials)
                .map(|_| {
                    let xs: Vec<f64> = (0..n).map(|_| sample_x(rng)).collect();
                    let ys: Vec<f64> = (0..n).map(|_| sample_y(rng)).collect();
                    (dist_fn(&xs, &ys) - true_value).abs()
                })
                .collect();
            ConvergenceRow {
                n,
                mean_abs_error: crate::descriptive::mean(&errs),
                std_abs_error: crate::descriptive::std_dev(&errs),
            }
        })
        .collect();
    ConvergenceStudy {
        kind,
        true_value,
        rows,
    }
}

/// The theoretical plug-in error bound √(k / n) for TV on `k` categories
/// (up to constants) — plotted next to empirical errors in experiment E13.
pub fn tv_plugin_bound(k: usize, n: usize) -> f64 {
    (k as f64 / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn sample_discrete_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Discrete::new(vec![0.2, 0.8]).unwrap();
        let codes = sample_discrete(&d, 20_000, &mut rng);
        let ones = codes.iter().filter(|&&c| c == 1).count() as f64 / 20_000.0;
        assert!((ones - 0.8).abs() < 0.02);
        assert!(codes.iter().all(|&c| c < 2));
    }

    #[test]
    fn discrete_convergence_error_shrinks() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Discrete::new(vec![0.5, 0.5]).unwrap();
        let q = Discrete::new(vec![0.7, 0.3]).unwrap();
        let study = discrete_convergence(
            DistanceKind::TotalVariation,
            &p,
            &q,
            &[50, 500, 5000],
            30,
            &mut rng,
        );
        assert!((study.true_value - 0.2).abs() < 1e-12);
        assert!(study.rows[0].mean_abs_error > study.rows[2].mean_abs_error);
        let slope = study.loglog_slope();
        assert!(
            slope < -0.3 && slope > -0.8,
            "expected ~ -1/2 rate, got {slope}"
        );
    }

    #[test]
    fn continuous_convergence_w1() {
        let mut rng = StdRng::seed_from_u64(9);
        // Uniform(0,1) vs Uniform(0.5, 1.5): true W1 = 0.5
        let study = continuous_convergence(
            DistanceKind::Wasserstein1,
            |r: &mut StdRng| r.gen::<f64>(),
            |r: &mut StdRng| 0.5 + r.gen::<f64>(),
            &[20, 200],
            20,
            20_000,
            &mut rng,
        );
        assert!((study.true_value - 0.5).abs() < 0.02);
        assert!(study.rows[0].mean_abs_error > study.rows[1].mean_abs_error);
    }

    #[test]
    fn tv_plugin_bound_shape() {
        assert!((tv_plugin_bound(2, 200) - 0.1).abs() < 1e-12);
        assert!(tv_plugin_bound(4, 100) > tv_plugin_bound(2, 100));
        assert!(tv_plugin_bound(2, 400) < tv_plugin_bound(2, 100));
    }

    #[test]
    #[should_panic(expected = "supports only TV/Hellinger")]
    fn discrete_study_rejects_continuous_kind() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Discrete::uniform(2);
        discrete_convergence(DistanceKind::MmdRbf, &p, &p, &[10], 1, &mut rng);
    }
}
