//! Probability distribution representations.

/// A discrete probability distribution over `k` categories.
///
/// This is the object Section IV.F compares: "the distribution of a
/// protected attribute in the general population against the distribution
/// of the protected attribute in the training data".
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    probs: Vec<f64>,
}

impl Discrete {
    /// Creates a distribution from probabilities, validating that they are
    /// non-negative and sum to 1 (within 1e-9).
    pub fn new(probs: Vec<f64>) -> Result<Discrete, String> {
        if probs.is_empty() {
            return Err("distribution must have at least one category".to_owned());
        }
        if probs.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) {
            return Err("probabilities must be in [0,1]".to_owned());
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("probabilities sum to {total}, expected 1"));
        }
        Ok(Discrete { probs })
    }

    /// Creates a distribution from raw counts, normalizing them.
    pub fn from_counts(counts: &[usize]) -> Result<Discrete, String> {
        let total: usize = counts.iter().sum();
        if counts.is_empty() || total == 0 {
            return Err("counts must be non-empty with positive total".to_owned());
        }
        Ok(Discrete {
            probs: counts.iter().map(|&c| c as f64 / total as f64).collect(),
        })
    }

    /// Creates the empirical distribution of categorical codes over
    /// `n_categories` categories (codes ≥ n_categories are rejected).
    pub fn from_codes(codes: &[u32], n_categories: usize) -> Result<Discrete, String> {
        if codes.is_empty() || n_categories == 0 {
            return Err("from_codes requires non-empty codes and categories".to_owned());
        }
        let mut counts = vec![0usize; n_categories];
        for &c in codes {
            let c = c as usize;
            if c >= n_categories {
                return Err(format!(
                    "code {c} out of range for {n_categories} categories"
                ));
            }
            counts[c] += 1;
        }
        Discrete::from_counts(&counts)
    }

    /// Uniform distribution over `k` categories.
    pub fn uniform(k: usize) -> Discrete {
        assert!(k > 0, "uniform requires k > 0");
        Discrete {
            probs: vec![1.0 / k as f64; k],
        }
    }

    /// The probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of categories.
    pub fn k(&self) -> usize {
        self.probs.len()
    }

    /// Probability of category `i` (0 if out of range).
    pub fn p(&self, i: usize) -> f64 {
        self.probs.get(i).copied().unwrap_or(0.0)
    }

    /// Shannon entropy in nats.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }
}

/// An empirical distribution of real-valued samples, stored sorted.
///
/// Supports CDF/quantile evaluation and is the input to 1-D Wasserstein
/// distance and quantile-based repair (Section IV.F).
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from samples (NaNs rejected).
    pub fn new(mut samples: Vec<f64>) -> Result<Empirical, String> {
        if samples.is_empty() {
            return Err("empirical distribution requires at least one sample".to_owned());
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err("samples must not contain NaN".to_owned());
        }
        samples.sort_by(f64::total_cmp);
        Ok(Empirical { sorted: samples })
    }

    /// The sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Number of samples.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Empirical CDF: fraction of samples ≤ x.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x on a sorted slice.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (type-7 interpolation).
    pub fn quantile(&self, q: f64) -> f64 {
        crate::descriptive::quantile_sorted(&self.sorted, q)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        crate::descriptive::mean(&self.sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_validation() {
        assert!(Discrete::new(vec![0.5, 0.5]).is_ok());
        assert!(Discrete::new(vec![0.6, 0.6]).is_err());
        assert!(Discrete::new(vec![-0.1, 1.1]).is_err());
        assert!(Discrete::new(vec![]).is_err());
    }

    #[test]
    fn from_counts_normalizes() {
        let d = Discrete::from_counts(&[3, 1]).unwrap();
        assert_eq!(d.probs(), &[0.75, 0.25]);
        assert!(Discrete::from_counts(&[0, 0]).is_err());
    }

    #[test]
    fn from_codes_counts() {
        let d = Discrete::from_codes(&[0, 1, 1, 1], 2).unwrap();
        assert_eq!(d.probs(), &[0.25, 0.75]);
        assert!(Discrete::from_codes(&[2], 2).is_err());
    }

    #[test]
    fn uniform_and_entropy() {
        let u = Discrete::uniform(4);
        assert!((u.entropy() - 4.0_f64.ln()).abs() < 1e-12);
        let point = Discrete::new(vec![1.0, 0.0]).unwrap();
        assert_eq!(point.entropy(), 0.0);
        assert_eq!(u.p(3), 0.25);
        assert_eq!(u.p(4), 0.0);
    }

    #[test]
    fn empirical_cdf_and_quantile() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.sorted(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(2.0), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
        assert!((e.quantile(0.5) - 2.5).abs() < 1e-12);
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_rejects_bad_input() {
        assert!(Empirical::new(vec![]).is_err());
        assert!(Empirical::new(vec![1.0, f64::NAN]).is_err());
    }
}
