//! Percentile bootstrap confidence intervals.
//!
//! Fairness gaps measured on finite audit samples are point estimates;
//! Section IV.C/IV.F call for quantified uncertainty. The percentile
//! bootstrap is the distribution-free workhorse used here.
//!
//! Two execution regimes share the same estimator:
//!
//! * the serial entry points ([`bootstrap_ci`],
//!   [`bootstrap_ci_two_sample`]) draw from a caller-provided [`Rng`]
//!   and reuse one resample buffer across replicates — their stream
//!   consumption is frozen (audit reports cite these intervals);
//! * the parallel entry points ([`par_bootstrap_ci`],
//!   [`par_bootstrap_ci_two_sample`]) split the replicates into
//!   fixed-shape chunks of [`RESAMPLE_CHUNK`], derive one SplitMix64
//!   substream seed per chunk from the caller's seed, and reduce chunk
//!   results in chunk order — so the interval is **bitwise-identical
//!   for any worker count**, including the inline `workers <= 1` path.

use crate::rng::{Rng, SplitMix64, StdRng};
use fairbridge_obs::Telemetry;
use fairbridge_tabular::par::{ordered_parallel_map, size_aware_workers};
use fairbridge_tabular::tune::tuned_min_units;

/// Replicates per parallel bootstrap chunk. Fixed — never derived from
/// the worker count — so the replicate stream (and the resulting CI) is
/// a function of the seed alone.
pub const RESAMPLE_CHUNK: usize = 64;

/// Fallback work-unit floor per bootstrap worker, where one unit is one
/// resampled element (`n_resamples × sample_len` total). The
/// conservative default when no `tune_profile.json` is present (key
/// `bootstrap.min_units_per_worker`): `bootstrap_par8` (400 × 1500 =
/// 600k units) lost to the fused serial path — resampling is RNG/memory
/// bound, so a unit is cheaper to compute inline than to ship to
/// another core until well past the benchmark size. Since
/// [`ordered_parallel_map`] is bitwise-identical for any worker count,
/// the clamp is scheduling only.
pub const BOOTSTRAP_MIN_UNITS_PER_WORKER: usize = 1 << 19;

/// A bootstrap estimate with its confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapEstimate {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// Number of resamples drawn.
    pub n_resamples: usize,
}

impl BootstrapEstimate {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the interval excludes `value` (e.g. 0 for "no gap").
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lower || value > self.upper
    }
}

/// Percentile bootstrap CI for `statistic` over one sample.
pub fn bootstrap_ci<R, F>(
    data: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> BootstrapEstimate
where
    R: Rng,
    F: Fn(&[f64]) -> f64,
{
    assert!(!data.is_empty(), "bootstrap_ci: empty data");
    assert!(n_resamples > 1, "bootstrap_ci requires n_resamples > 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let point = statistic(data);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut buf = vec![0.0; data.len()];
    for _ in 0..n_resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    let lower = crate::descriptive::quantile_sorted(&stats, alpha / 2.0);
    let upper = crate::descriptive::quantile_sorted(&stats, 1.0 - alpha / 2.0);
    BootstrapEstimate {
        point,
        lower,
        upper,
        n_resamples,
    }
}

/// Percentile bootstrap CI for a two-sample statistic (resampling each
/// sample independently), e.g. a rate difference between groups.
pub fn bootstrap_ci_two_sample<R, F>(
    a: &[f64],
    b: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> BootstrapEstimate
where
    R: Rng,
    F: Fn(&[f64], &[f64]) -> f64,
{
    assert!(!a.is_empty() && !b.is_empty(), "bootstrap: empty sample");
    assert!(n_resamples > 1, "bootstrap requires n_resamples > 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let point = statistic(a, b);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut ba = vec![0.0; a.len()];
    let mut bb = vec![0.0; b.len()];
    for _ in 0..n_resamples {
        for slot in ba.iter_mut() {
            *slot = a[rng.gen_range(0..a.len())];
        }
        for slot in bb.iter_mut() {
            *slot = b[rng.gen_range(0..b.len())];
        }
        stats.push(statistic(&ba, &bb));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    BootstrapEstimate {
        point,
        lower: crate::descriptive::quantile_sorted(&stats, alpha / 2.0),
        upper: crate::descriptive::quantile_sorted(&stats, 1.0 - alpha / 2.0),
        n_resamples,
    }
}

/// Sorts replicate statistics and reads off the percentile interval.
fn percentile_interval(
    point: f64,
    mut stats: Vec<f64>,
    confidence: f64,
    n_resamples: usize,
) -> BootstrapEstimate {
    stats.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    BootstrapEstimate {
        point,
        lower: crate::descriptive::quantile_sorted(&stats, alpha / 2.0),
        upper: crate::descriptive::quantile_sorted(&stats, 1.0 - alpha / 2.0),
        n_resamples,
    }
}

/// One SplitMix64-derived substream seed per fixed-size chunk: the
/// replicate stream depends only on `seed` and the chunk index, never on
/// which worker runs the chunk.
fn chunk_seeds(seed: u64, n_chunks: usize) -> Vec<u64> {
    let mut sm = SplitMix64::new(seed);
    (0..n_chunks).map(|_| sm.next_u64()).collect()
}

/// Deterministically parallel percentile bootstrap CI.
///
/// Unlike [`bootstrap_ci`] this takes a `seed` rather than an [`Rng`]:
/// each [`RESAMPLE_CHUNK`]-replicate chunk runs on its own substream, so
/// the interval is bitwise-identical for every `workers` value
/// (`<= 1` runs inline with zero thread spawns).
pub fn par_bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    seed: u64,
    workers: usize,
) -> BootstrapEstimate
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    par_bootstrap_ci_observed(
        data,
        statistic,
        n_resamples,
        confidence,
        seed,
        workers,
        &Telemetry::off(),
    )
}

/// [`par_bootstrap_ci`] recording a `bootstrap.ci` span and the
/// `bootstrap.resamples` counter.
#[allow(clippy::too_many_arguments)]
pub fn par_bootstrap_ci_observed<F>(
    data: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    seed: u64,
    workers: usize,
    telemetry: &Telemetry,
) -> BootstrapEstimate
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    assert!(!data.is_empty(), "bootstrap_ci: empty data");
    assert!(n_resamples > 1, "bootstrap_ci requires n_resamples > 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let _span = telemetry.span("bootstrap.ci");
    telemetry
        .counter("bootstrap.resamples")
        .add(n_resamples as u64);
    let point = statistic(data);
    let n_chunks = n_resamples.div_ceil(RESAMPLE_CHUNK);
    let seeds = chunk_seeds(seed, n_chunks);
    let workers = size_aware_workers(
        workers,
        n_chunks,
        n_resamples.saturating_mul(data.len()),
        tuned_min_units(
            "bootstrap.min_units_per_worker",
            BOOTSTRAP_MIN_UNITS_PER_WORKER,
        ),
    );
    let chunks = ordered_parallel_map(n_chunks, workers, |c| {
        let mut rng = StdRng::seed_from_u64(seeds[c]);
        let start = c * RESAMPLE_CHUNK;
        let len = RESAMPLE_CHUNK.min(n_resamples - start);
        let mut buf = vec![0.0; data.len()];
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            for slot in buf.iter_mut() {
                *slot = data[rng.gen_range(0..data.len())];
            }
            out.push(statistic(&buf));
        }
        out
    });
    percentile_interval(point, chunks.concat(), confidence, n_resamples)
}

/// Deterministically parallel two-sample percentile bootstrap CI; see
/// [`par_bootstrap_ci`] for the chunking/substream contract.
#[allow(clippy::too_many_arguments)]
pub fn par_bootstrap_ci_two_sample<F>(
    a: &[f64],
    b: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    seed: u64,
    workers: usize,
) -> BootstrapEstimate
where
    F: Fn(&[f64], &[f64]) -> f64 + Sync,
{
    par_bootstrap_ci_two_sample_observed(
        a,
        b,
        statistic,
        n_resamples,
        confidence,
        seed,
        workers,
        &Telemetry::off(),
    )
}

/// [`par_bootstrap_ci_two_sample`] recording a `bootstrap.ci` span and
/// the `bootstrap.resamples` counter.
#[allow(clippy::too_many_arguments)]
pub fn par_bootstrap_ci_two_sample_observed<F>(
    a: &[f64],
    b: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    seed: u64,
    workers: usize,
    telemetry: &Telemetry,
) -> BootstrapEstimate
where
    F: Fn(&[f64], &[f64]) -> f64 + Sync,
{
    assert!(!a.is_empty() && !b.is_empty(), "bootstrap: empty sample");
    assert!(n_resamples > 1, "bootstrap requires n_resamples > 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let _span = telemetry.span("bootstrap.ci");
    telemetry
        .counter("bootstrap.resamples")
        .add(n_resamples as u64);
    let point = statistic(a, b);
    let n_chunks = n_resamples.div_ceil(RESAMPLE_CHUNK);
    let seeds = chunk_seeds(seed, n_chunks);
    let workers = size_aware_workers(
        workers,
        n_chunks,
        n_resamples.saturating_mul(a.len() + b.len()),
        tuned_min_units(
            "bootstrap.min_units_per_worker",
            BOOTSTRAP_MIN_UNITS_PER_WORKER,
        ),
    );
    let chunks = ordered_parallel_map(n_chunks, workers, |c| {
        let mut rng = StdRng::seed_from_u64(seeds[c]);
        let start = c * RESAMPLE_CHUNK;
        let len = RESAMPLE_CHUNK.min(n_resamples - start);
        let mut ba = vec![0.0; a.len()];
        let mut bb = vec![0.0; b.len()];
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            for slot in ba.iter_mut() {
                *slot = a[rng.gen_range(0..a.len())];
            }
            for slot in bb.iter_mut() {
                *slot = b[rng.gen_range(0..b.len())];
            }
            out.push(statistic(&ba, &bb));
        }
        out
    });
    percentile_interval(point, chunks.concat(), confidence, n_resamples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;
    use crate::rng::StdRng;

    #[test]
    fn ci_contains_true_mean_for_well_behaved_data() {
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let est = bootstrap_ci(&data, mean, 500, 0.95, &mut rng);
        assert!((est.point - 4.5).abs() < 1e-12);
        assert!(est.lower < 4.5 && 4.5 < est.upper);
        assert!(est.width() < 1.0);
        assert_eq!(est.n_resamples, 500);
    }

    #[test]
    fn two_sample_gap_detected() {
        let mut rng = StdRng::seed_from_u64(7);
        // 30% vs 60% positive rates as 0/1 data
        let a: Vec<f64> = (0..100)
            .map(|i| if i % 10 < 3 { 1.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..100)
            .map(|i| if i % 10 < 6 { 1.0 } else { 0.0 })
            .collect();
        let est = bootstrap_ci_two_sample(&a, &b, |x, y| mean(y) - mean(x), 500, 0.95, &mut rng);
        assert!((est.point - 0.3).abs() < 1e-12);
        assert!(est.excludes(0.0), "CI {:?} should exclude 0", est);
    }

    #[test]
    fn identical_samples_interval_covers_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<f64> = (0..80).map(|i| (i % 2) as f64).collect();
        let est = bootstrap_ci_two_sample(
            &a,
            &a.clone(),
            |x, y| mean(y) - mean(x),
            400,
            0.95,
            &mut rng,
        );
        assert!(!est.excludes(0.0));
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        bootstrap_ci(&[], mean, 10, 0.9, &mut rng);
    }

    #[test]
    fn par_bootstrap_is_bitwise_identical_across_worker_counts() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 17) % 23) as f64).collect();
        let serial = par_bootstrap_ci(&data, mean, 500, 0.95, 0xB007, 1);
        for workers in [2, 8] {
            let par = par_bootstrap_ci(&data, mean, 500, 0.95, 0xB007, workers);
            assert_eq!(
                serial.lower.to_bits(),
                par.lower.to_bits(),
                "{workers} workers"
            );
            assert_eq!(
                serial.upper.to_bits(),
                par.upper.to_bits(),
                "{workers} workers"
            );
            assert_eq!(serial.point.to_bits(), par.point.to_bits());
        }
    }

    #[test]
    fn par_bootstrap_ci_brackets_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let est = par_bootstrap_ci(&data, mean, 400, 0.95, 9, 4);
        assert!((est.point - 4.5).abs() < 1e-12);
        assert!(est.lower < 4.5 && 4.5 < est.upper);
        assert!(est.width() < 1.0);
    }

    #[test]
    fn par_two_sample_matches_serial_semantics() {
        let a: Vec<f64> = (0..100)
            .map(|i| if i % 10 < 3 { 1.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..100)
            .map(|i| if i % 10 < 6 { 1.0 } else { 0.0 })
            .collect();
        let stat = |x: &[f64], y: &[f64]| mean(y) - mean(x);
        let one = par_bootstrap_ci_two_sample(&a, &b, stat, 500, 0.95, 3, 1);
        let eight = par_bootstrap_ci_two_sample(&a, &b, stat, 500, 0.95, 3, 8);
        assert_eq!(one, eight);
        assert!((one.point - 0.3).abs() < 1e-12);
        assert!(one.excludes(0.0), "CI {one:?} should exclude 0");
    }

    #[test]
    fn par_bootstrap_counts_resamples() {
        let telemetry = Telemetry::new(std::sync::Arc::new(
            fairbridge_obs::RingSink::with_capacity(16),
        ));
        let data = vec![1.0, 2.0, 3.0, 4.0];
        par_bootstrap_ci_observed(&data, mean, 100, 0.9, 1, 2, &telemetry);
        assert_eq!(telemetry.counter("bootstrap.resamples").get(), 100);
    }
}
