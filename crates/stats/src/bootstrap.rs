//! Percentile bootstrap confidence intervals.
//!
//! Fairness gaps measured on finite audit samples are point estimates;
//! Section IV.C/IV.F call for quantified uncertainty. The percentile
//! bootstrap is the distribution-free workhorse used here.

use crate::rng::Rng;

/// A bootstrap estimate with its confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapEstimate {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// Number of resamples drawn.
    pub n_resamples: usize,
}

impl BootstrapEstimate {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the interval excludes `value` (e.g. 0 for "no gap").
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lower || value > self.upper
    }
}

/// Percentile bootstrap CI for `statistic` over one sample.
pub fn bootstrap_ci<R, F>(
    data: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> BootstrapEstimate
where
    R: Rng,
    F: Fn(&[f64]) -> f64,
{
    assert!(!data.is_empty(), "bootstrap_ci: empty data");
    assert!(n_resamples > 1, "bootstrap_ci requires n_resamples > 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let point = statistic(data);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut buf = vec![0.0; data.len()];
    for _ in 0..n_resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    let alpha = 1.0 - confidence;
    let lower = crate::descriptive::quantile_sorted(&stats, alpha / 2.0);
    let upper = crate::descriptive::quantile_sorted(&stats, 1.0 - alpha / 2.0);
    BootstrapEstimate {
        point,
        lower,
        upper,
        n_resamples,
    }
}

/// Percentile bootstrap CI for a two-sample statistic (resampling each
/// sample independently), e.g. a rate difference between groups.
pub fn bootstrap_ci_two_sample<R, F>(
    a: &[f64],
    b: &[f64],
    statistic: F,
    n_resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> BootstrapEstimate
where
    R: Rng,
    F: Fn(&[f64], &[f64]) -> f64,
{
    assert!(!a.is_empty() && !b.is_empty(), "bootstrap: empty sample");
    assert!(n_resamples > 1, "bootstrap requires n_resamples > 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let point = statistic(a, b);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut ba = vec![0.0; a.len()];
    let mut bb = vec![0.0; b.len()];
    for _ in 0..n_resamples {
        for slot in ba.iter_mut() {
            *slot = a[rng.gen_range(0..a.len())];
        }
        for slot in bb.iter_mut() {
            *slot = b[rng.gen_range(0..b.len())];
        }
        stats.push(statistic(&ba, &bb));
    }
    stats.sort_by(|x, y| x.partial_cmp(y).expect("NaN bootstrap statistic"));
    let alpha = 1.0 - confidence;
    BootstrapEstimate {
        point,
        lower: crate::descriptive::quantile_sorted(&stats, alpha / 2.0),
        upper: crate::descriptive::quantile_sorted(&stats, 1.0 - alpha / 2.0),
        n_resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;
    use crate::rng::StdRng;

    #[test]
    fn ci_contains_true_mean_for_well_behaved_data() {
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let est = bootstrap_ci(&data, mean, 500, 0.95, &mut rng);
        assert!((est.point - 4.5).abs() < 1e-12);
        assert!(est.lower < 4.5 && 4.5 < est.upper);
        assert!(est.width() < 1.0);
        assert_eq!(est.n_resamples, 500);
    }

    #[test]
    fn two_sample_gap_detected() {
        let mut rng = StdRng::seed_from_u64(7);
        // 30% vs 60% positive rates as 0/1 data
        let a: Vec<f64> = (0..100)
            .map(|i| if i % 10 < 3 { 1.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..100)
            .map(|i| if i % 10 < 6 { 1.0 } else { 0.0 })
            .collect();
        let est = bootstrap_ci_two_sample(&a, &b, |x, y| mean(y) - mean(x), 500, 0.95, &mut rng);
        assert!((est.point - 0.3).abs() < 1e-12);
        assert!(est.excludes(0.0), "CI {:?} should exclude 0", est);
    }

    #[test]
    fn identical_samples_interval_covers_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<f64> = (0..80).map(|i| (i % 2) as f64).collect();
        let est = bootstrap_ci_two_sample(
            &a,
            &a.clone(),
            |x, y| mean(y) - mean(x),
            400,
            0.95,
            &mut rng,
        );
        assert!(!est.excludes(0.0));
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        bootstrap_ci(&[], mean, 10, 0.9, &mut rng);
    }
}
