//! Explicit AVX2 widening of the fused kernels — the one module in the
//! workspace allowed to contain `unsafe`.
//!
//! Every function here reproduces its fused-scalar reference
//! **bit for bit**. The fused kernels keep eight independent f64
//! accumulator lanes; here those same eight logical lanes live in two
//! 256-bit registers (lanes 0–3 and 4–7). Each 8-element chunk performs
//! the identical per-lane `mul` then `add` (no FMA — a fused
//! multiply-add rounds once where the scalar path rounds twice, which
//! would change the bits), and the final horizontal combine extracts
//! the eight lane values and folds them in the exact order the fused
//! path uses: `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`. IEEE-754
//! addition and multiplication are identical between the vector and
//! scalar execution units on x86_64 (including NaN payload propagation,
//! signed zeros and subnormals), so per-lane equality plus an equal
//! combine order gives bitwise-equal results — the property
//! `tests/prop_simd.rs` hammers with adversarial inputs.
//!
//! Unsafe policy (DESIGN.md §14): unsafe is *confined* to this module —
//! the crate is `deny(unsafe_code)` and only this file opts back in.
//! Every block is minimal (loads/stores of 4 consecutive f64 through
//! `chunks_exact`-derived pointers) and carries the `// SAFETY:`
//! justification the `fb-lint` U1 rule enforces.
//!
//! Dispatch: the public wrappers fall back to the fused path when the
//! CPU lacks AVX2, so callers can use them unconditionally; the
//! `kernel::{dot,sum,axpy}` dispatchers additionally skip the feature
//! probe entirely on non-x86_64 builds.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
    _mm256_setzero_pd, _mm256_storeu_pd,
};

/// Whether this CPU supports the AVX2 kernels. The detection macro
/// caches its CPUID probe in an atomic, so calling this per kernel
/// invocation costs one relaxed load and a predictable branch.
#[inline]
pub fn avx2_available() -> bool {
    is_x86_feature_detected!("avx2")
}

/// Reads f64 lanes `[0..4)` of `v` into an array (order-preserving).
#[inline]
fn lanes(v: __m256d) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    // The unaligned store intrinsic carries no alignment requirement.
    // SAFETY: `out` is a valid-for-write buffer of exactly 4 f64.
    unsafe { _mm256_storeu_pd(out.as_mut_ptr(), v) };
    out
}

/// AVX2 dot product, bitwise-identical to [`super::dot_fused`]. Falls
/// back to the fused path when the CPU lacks AVX2.
#[inline]
pub fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if !avx2_available() {
        return super::dot_fused(a, b);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { dot_avx2_body(a, b) }
}

/// AVX2 sum, bitwise-identical to [`super::sum_fused`]. Falls back to
/// the fused path when the CPU lacks AVX2.
#[inline]
pub fn sum_avx2(a: &[f64]) -> f64 {
    if !avx2_available() {
        return super::sum_fused(a);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { sum_avx2_body(a) }
}

/// AVX2 `y += alpha · x`, bitwise-identical to [`super::axpy_fused`].
/// Falls back to the fused path when the CPU lacks AVX2.
#[inline]
pub fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if !avx2_available() {
        return super::axpy_fused(alpha, x, y);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { axpy_avx2_body(alpha, x, y) }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn dot_avx2_body(a: &[f64], b: &[f64]) -> f64 {
    let split = a.len() - a.len() % 8;
    // Two 4-lane accumulators hold the fused path's lanes 0–3 / 4–7.
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    for (ca, cb) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        // `chunks_exact(8)` yields slices of exactly 8 f64, so reading
        // 4 f64 at offsets 0 and 4 stays in bounds.
        // SAFETY: in-bounds reads; loadu needs no alignment.
        unsafe {
            let va0 = _mm256_loadu_pd(ca.as_ptr());
            let vb0 = _mm256_loadu_pd(cb.as_ptr());
            let va1 = _mm256_loadu_pd(ca.as_ptr().add(4));
            let vb1 = _mm256_loadu_pd(cb.as_ptr().add(4));
            // mul then add (not FMA): the same two roundings per lane
            // as `s[k] += a[k] * b[k]` on the scalar path.
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(va0, vb0));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(va1, vb1));
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        tail += x * y;
    }
    let [s0, s1, s2, s3] = lanes(acc_lo);
    let [s4, s5, s6, s7] = lanes(acc_hi);
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn sum_avx2_body(a: &[f64]) -> f64 {
    let split = a.len() - a.len() % 8;
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    for chunk in a[..split].chunks_exact(8) {
        // `chunks_exact(8)` yields slices of exactly 8 f64, so reading
        // 4 f64 at offsets 0 and 4 stays in bounds.
        // SAFETY: in-bounds reads; loadu needs no alignment.
        unsafe {
            let v0 = _mm256_loadu_pd(chunk.as_ptr());
            let v1 = _mm256_loadu_pd(chunk.as_ptr().add(4));
            acc_lo = _mm256_add_pd(acc_lo, v0);
            acc_hi = _mm256_add_pd(acc_hi, v1);
        }
    }
    let mut tail = 0.0;
    for x in &a[split..] {
        tail += x;
    }
    let [s0, s1, s2, s3] = lanes(acc_lo);
    let [s4, s5, s6, s7] = lanes(acc_hi);
    (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn axpy_avx2_body(alpha: f64, x: &[f64], y: &mut [f64]) {
    let split = x.len() - x.len() % 8;
    let va = _mm256_set1_pd(alpha);
    for (cx, cy) in x[..split]
        .chunks_exact(8)
        .zip(y[..split].chunks_exact_mut(8))
    {
        // Both chunks are exactly 8 f64, so the two 4-wide loads and
        // stores at offsets 0 and 4 stay in bounds (`cy` exclusively
        // borrowed, no aliasing).
        // SAFETY: in-bounds unaligned loads/stores per the above.
        unsafe {
            let vy0 = _mm256_loadu_pd(cy.as_ptr());
            let vy1 = _mm256_loadu_pd(cy.as_ptr().add(4));
            let vx0 = _mm256_loadu_pd(cx.as_ptr());
            let vx1 = _mm256_loadu_pd(cx.as_ptr().add(4));
            // mul then add (not FMA), matching `y[k] += alpha * x[k]`.
            let r0 = _mm256_add_pd(vy0, _mm256_mul_pd(va, vx0));
            let r1 = _mm256_add_pd(vy1, _mm256_mul_pd(va, vx1));
            _mm256_storeu_pd(cy.as_mut_ptr(), r0);
            _mm256_storeu_pd(cy.as_mut_ptr().add(4), r1);
        }
    }
    for (vx, vy) in x[split..].iter().zip(&mut y[split..]) {
        *vy += alpha * vx;
    }
}

/// AVX2 elementwise product `out[i] = a[i] · b[i]`, bitwise-identical
/// to [`super::mul_into_fused`]. Pure IEEE multiplies, one independent
/// output per slot — vectorization cannot change any bit. Falls back
/// to the fused path when the CPU lacks AVX2.
#[inline]
pub fn mul_into_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    if !avx2_available() {
        return super::mul_into_fused(a, b, out);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { mul_into_avx2_body(a, b, out) }
}

/// AVX2 elementwise quotient `out[i] = num[i] / den[i]`,
/// bitwise-identical to [`super::div_into_fused`]. Pure IEEE divides,
/// slot-independent. Falls back to the fused path when the CPU lacks
/// AVX2.
#[inline]
pub fn div_into_avx2(num: &[f64], den: &[f64], out: &mut [f64]) {
    debug_assert_eq!(num.len(), den.len());
    debug_assert_eq!(num.len(), out.len());
    if !avx2_available() {
        return super::div_into_fused(num, den, out);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { div_into_avx2_body(num, den, out) }
}

/// AVX2 in-place scaling `out[i] *= alpha`, bitwise-identical to
/// [`super::scale_into_fused`]. Falls back to the fused path when the
/// CPU lacks AVX2.
#[inline]
pub fn scale_into_avx2(alpha: f64, out: &mut [f64]) {
    if !avx2_available() {
        return super::scale_into_fused(alpha, out);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { scale_into_avx2_body(alpha, out) }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn mul_into_avx2_body(a: &[f64], b: &[f64], out: &mut [f64]) {
    let split = a.len() - a.len() % 8;
    for ((ca, cb), co) in a[..split]
        .chunks_exact(8)
        .zip(b[..split].chunks_exact(8))
        .zip(out[..split].chunks_exact_mut(8))
    {
        // All three chunks are exactly 8 f64, so the 4-wide loads and
        // stores at offsets 0 and 4 stay in bounds (`co` exclusively
        // borrowed, no aliasing).
        // SAFETY: in-bounds unaligned loads/stores per the above.
        unsafe {
            let r0 = _mm256_mul_pd(_mm256_loadu_pd(ca.as_ptr()), _mm256_loadu_pd(cb.as_ptr()));
            let r1 = _mm256_mul_pd(
                _mm256_loadu_pd(ca.as_ptr().add(4)),
                _mm256_loadu_pd(cb.as_ptr().add(4)),
            );
            _mm256_storeu_pd(co.as_mut_ptr(), r0);
            _mm256_storeu_pd(co.as_mut_ptr().add(4), r1);
        }
    }
    for ((x, y), o) in a[split..].iter().zip(&b[split..]).zip(&mut out[split..]) {
        *o = x * y;
    }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn div_into_avx2_body(num: &[f64], den: &[f64], out: &mut [f64]) {
    let split = num.len() - num.len() % 8;
    for ((cn, cd), co) in num[..split]
        .chunks_exact(8)
        .zip(den[..split].chunks_exact(8))
        .zip(out[..split].chunks_exact_mut(8))
    {
        // All three chunks are exactly 8 f64, so the 4-wide loads and
        // stores at offsets 0 and 4 stay in bounds (`co` exclusively
        // borrowed, no aliasing).
        // SAFETY: in-bounds unaligned loads/stores per the above.
        unsafe {
            let r0 = _mm256_div_pd(_mm256_loadu_pd(cn.as_ptr()), _mm256_loadu_pd(cd.as_ptr()));
            let r1 = _mm256_div_pd(
                _mm256_loadu_pd(cn.as_ptr().add(4)),
                _mm256_loadu_pd(cd.as_ptr().add(4)),
            );
            _mm256_storeu_pd(co.as_mut_ptr(), r0);
            _mm256_storeu_pd(co.as_mut_ptr().add(4), r1);
        }
    }
    for ((x, y), o) in num[split..]
        .iter()
        .zip(&den[split..])
        .zip(&mut out[split..])
    {
        *o = x / y;
    }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn scale_into_avx2_body(alpha: f64, out: &mut [f64]) {
    let split = out.len() - out.len() % 8;
    let va = _mm256_set1_pd(alpha);
    for co in out[..split].chunks_exact_mut(8) {
        // The chunk is exactly 8 f64, so the 4-wide loads and stores at
        // offsets 0 and 4 stay in bounds (`co` exclusively borrowed).
        // SAFETY: in-bounds unaligned loads/stores per the above.
        unsafe {
            let r0 = _mm256_mul_pd(_mm256_loadu_pd(co.as_ptr()), va);
            let r1 = _mm256_mul_pd(_mm256_loadu_pd(co.as_ptr().add(4)), va);
            _mm256_storeu_pd(co.as_mut_ptr(), r0);
            _mm256_storeu_pd(co.as_mut_ptr().add(4), r1);
        }
    }
    for o in &mut out[split..] {
        *o *= alpha;
    }
}

/// AVX2 matrix–vector product over row-major `data` (`out.len()` rows
/// of `n_cols` each), bitwise-identical to [`super::gemv_fused`].
///
/// Rows are processed four at a time. Row blocking changes nothing
/// about any single row's arithmetic — each row keeps its own two
/// accumulator registers, the same chunk order and the same combine —
/// but it breaks the one-row latency wall: a lone 8-lane dot sustains
/// at most two elements per cycle (two 4-lane `vaddpd` chains of
/// ~4-cycle latency), while four interleaved rows give eight
/// independent chains and saturate the FP ports instead. This is where
/// the gemv speedup at large sizes actually comes from.
#[inline]
pub fn gemv_avx2(data: &[f64], n_cols: usize, w: &[f64], out: &mut [f64]) {
    debug_assert_eq!(data.len(), n_cols * out.len());
    debug_assert_eq!(w.len(), n_cols);
    if !avx2_available() {
        return super::gemv_fused(data, n_cols, w, out);
    }
    // SAFETY: the `avx2` target feature was verified present above.
    unsafe { gemv_avx2_body(data, n_cols, w, out) }
}

#[target_feature(enable = "avx2")]
// SAFETY: caller must ensure the CPU supports AVX2 (`avx2_available`).
unsafe fn gemv_avx2_body(data: &[f64], n_cols: usize, w: &[f64], out: &mut [f64]) {
    let d = n_cols;
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let split = d - d % 8;
    let n_rows = out.len();
    let block_end = n_rows - n_rows % 4;
    let mut i = 0;
    while i < block_end {
        // Four independent row dots advance in lockstep, sharing each
        // `w` chunk load. Per-row accumulators, chunk order and combine
        // are exactly `dot_avx2_body`'s.
        let r0 = &data[i * d..i * d + d];
        let r1 = &data[(i + 1) * d..(i + 1) * d + d];
        let r2 = &data[(i + 2) * d..(i + 2) * d + d];
        let r3 = &data[(i + 3) * d..(i + 3) * d + d];
        let mut lo0 = _mm256_setzero_pd();
        let mut hi0 = _mm256_setzero_pd();
        let mut lo1 = _mm256_setzero_pd();
        let mut hi1 = _mm256_setzero_pd();
        let mut lo2 = _mm256_setzero_pd();
        let mut hi2 = _mm256_setzero_pd();
        let mut lo3 = _mm256_setzero_pd();
        let mut hi3 = _mm256_setzero_pd();
        let mut j = 0;
        while j < split {
            // `j + 8 <= split <= d`, so every 4-wide load below (at
            // offsets j and j+4 of w and of each d-long row) is in
            // bounds.
            // SAFETY: in-bounds reads; loadu needs no alignment.
            unsafe {
                let vw0 = _mm256_loadu_pd(w.as_ptr().add(j));
                let vw1 = _mm256_loadu_pd(w.as_ptr().add(j + 4));
                lo0 = _mm256_add_pd(lo0, _mm256_mul_pd(_mm256_loadu_pd(r0.as_ptr().add(j)), vw0));
                hi0 = _mm256_add_pd(
                    hi0,
                    _mm256_mul_pd(_mm256_loadu_pd(r0.as_ptr().add(j + 4)), vw1),
                );
                lo1 = _mm256_add_pd(lo1, _mm256_mul_pd(_mm256_loadu_pd(r1.as_ptr().add(j)), vw0));
                hi1 = _mm256_add_pd(
                    hi1,
                    _mm256_mul_pd(_mm256_loadu_pd(r1.as_ptr().add(j + 4)), vw1),
                );
                lo2 = _mm256_add_pd(lo2, _mm256_mul_pd(_mm256_loadu_pd(r2.as_ptr().add(j)), vw0));
                hi2 = _mm256_add_pd(
                    hi2,
                    _mm256_mul_pd(_mm256_loadu_pd(r2.as_ptr().add(j + 4)), vw1),
                );
                lo3 = _mm256_add_pd(lo3, _mm256_mul_pd(_mm256_loadu_pd(r3.as_ptr().add(j)), vw0));
                hi3 = _mm256_add_pd(
                    hi3,
                    _mm256_mul_pd(_mm256_loadu_pd(r3.as_ptr().add(j + 4)), vw1),
                );
            }
            j += 8;
        }
        for (slot, (row, (lo, hi))) in [
            (r0, (lo0, hi0)),
            (r1, (lo1, hi1)),
            (r2, (lo2, hi2)),
            (r3, (lo3, hi3)),
        ]
        .into_iter()
        .enumerate()
        {
            let mut tail = 0.0;
            for (x, y) in row[split..].iter().zip(&w[split..]) {
                tail += x * y;
            }
            let [s0, s1, s2, s3] = lanes(lo);
            let [s4, s5, s6, s7] = lanes(hi);
            out[i + slot] = (((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))) + tail;
        }
        i += 4;
    }
    // Remainder rows (< 4): the single-row AVX2 dot, same bits.
    while i < n_rows {
        // SAFETY: AVX2 is enabled for this fn (the callee's contract).
        unsafe {
            out[i] = dot_avx2_body(&data[i * d..i * d + d], w);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{axpy_fused, dot_fused, gemv_fused, sum_fused};

    #[test]
    fn avx2_matches_fused_bitwise_on_mixed_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100, 257] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin() * 1e3).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos() * 1e-3).collect();
            assert_eq!(
                dot_avx2(&a, &b).to_bits(),
                dot_fused(&a, &b).to_bits(),
                "dot len {len}"
            );
            assert_eq!(
                sum_avx2(&a).to_bits(),
                sum_fused(&a).to_bits(),
                "sum len {len}"
            );
            let mut ys = b.clone();
            let mut yf = b.clone();
            axpy_avx2(0.37, &a, &mut ys);
            axpy_fused(0.37, &a, &mut yf);
            for (i, (p, q)) in ys.iter().zip(&yf).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "axpy len {len} slot {i}");
            }
        }
    }

    #[test]
    fn elementwise_avx2_matches_fused_bitwise_on_mixed_lengths() {
        use crate::kernel::{div_into_fused, mul_into_fused, scale_into_fused};
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100, 257] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin() * 1e3).collect();
            let b: Vec<f64> = (0..len)
                .map(|i| (i as f64 * 1.3).cos() * 1e-3 + 0.5)
                .collect();
            let mut os = vec![0.0; len];
            let mut of = vec![0.0; len];
            mul_into_avx2(&a, &b, &mut os);
            mul_into_fused(&a, &b, &mut of);
            for (i, (p, q)) in os.iter().zip(&of).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "mul len {len} slot {i}");
            }
            div_into_avx2(&a, &b, &mut os);
            div_into_fused(&a, &b, &mut of);
            for (i, (p, q)) in os.iter().zip(&of).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "div len {len} slot {i}");
            }
            let mut ss = a.clone();
            let mut sf = a.clone();
            scale_into_avx2(0.37, &mut ss);
            scale_into_fused(0.37, &mut sf);
            for (i, (p, q)) in ss.iter().zip(&sf).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "scale len {len} slot {i}");
            }
        }
    }

    #[test]
    fn gemv_avx2_matches_fused_bitwise_on_mixed_shapes() {
        // Shapes crossing both the 4-row block boundary and the 8-col
        // chunk boundary, plus degenerate rows/cols.
        for (n, d) in [
            (0usize, 5usize),
            (1, 0),
            (1, 1),
            (3, 7),
            (4, 8),
            (5, 9),
            (7, 16),
            (8, 17),
            (13, 33),
            (100, 100),
        ] {
            let data: Vec<f64> = (0..n * d).map(|i| (i as f64 * 0.7).sin() * 1e2).collect();
            let w: Vec<f64> = (0..d).map(|i| (i as f64 * 1.3).cos()).collect();
            let mut simd_out = vec![f64::NAN; n];
            let mut fused_out = vec![f64::NAN; n];
            gemv_avx2(&data, d, &w, &mut simd_out);
            gemv_fused(&data, d, &w, &mut fused_out);
            for (i, (p, q)) in simd_out.iter().zip(&fused_out).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "shape {n}x{d} row {i}");
            }
        }
    }

    #[test]
    fn detection_is_consistent() {
        // Whatever the answer is, it must not flap between calls — the
        // dispatchers rely on a stable verdict within a process.
        assert_eq!(avx2_available(), avx2_available());
    }
}
