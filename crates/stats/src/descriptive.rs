//! Descriptive statistics: means, variances, quantiles, weighted variants.

/// Arithmetic mean. Returns `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Weighted mean Σwᵢxᵢ / Σwᵢ. Returns `NaN` if the weight sum is zero.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weighted_mean: length mismatch");
    let wsum: f64 = ws.iter().sum();
    if wsum == 0.0 {
        return f64::NAN;
    }
    xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum
}

/// Sample variance (n−1 denominator). Returns `NaN` for fewer than 2 values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (n denominator). Returns `NaN` for empty input.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (type 7, the numpy/R default).
/// `q` must be in \[0, 1\]. Returns `NaN` for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// Quantile of an already ascending-sorted slice (type 7).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
    if sorted.is_empty() {
        return f64::NAN;
    }
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Minimum of a slice; `NaN` for empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum of a slice; `NaN` for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Proportion of `true` values. Returns `NaN` for empty input.
pub fn proportion(bs: &[bool]) -> f64 {
    if bs.is_empty() {
        return f64::NAN;
    }
    bs.iter().filter(|&&b| b).count() as f64 / bs.len() as f64
}

/// Weighted proportion of `true` values: Σ{wᵢ : bᵢ} / Σwᵢ.
pub fn weighted_proportion(bs: &[bool], ws: &[f64]) -> f64 {
    assert_eq!(bs.len(), ws.len(), "weighted_proportion: length mismatch");
    let wsum: f64 = ws.iter().sum();
    if wsum == 0.0 {
        return f64::NAN;
    }
    bs.iter()
        .zip(ws)
        .filter_map(|(&b, &w)| b.then_some(w))
        .sum::<f64>()
        / wsum
}

/// Histogram with equal-width bins over `\[lo, hi\]`; values outside are
/// clamped into the boundary bins. Returns per-bin counts.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, n_bins: usize) -> Vec<usize> {
    assert!(n_bins > 0, "histogram requires at least one bin");
    assert!(hi > lo, "histogram requires hi > lo");
    let mut counts = vec![0usize; n_bins];
    let width = (hi - lo) / n_bins as f64;
    for &x in xs {
        let idx = ((x - lo) / width).floor();
        let idx = idx.clamp(0.0, (n_bins - 1) as f64) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Equal-width binning of a numeric slice into `n_bins` categorical codes
/// using the slice's own min/max range. Constant slices map to bin 0.
pub fn bin_codes(xs: &[f64], n_bins: usize) -> Vec<u32> {
    assert!(n_bins > 0, "bin_codes requires at least one bin");
    let (lo, hi) = (min(xs), max(xs));
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return vec![0; xs.len()];
    }
    let width = (hi - lo) / n_bins as f64;
    xs.iter()
        .map(|&x| {
            let idx = ((x - lo) / width).floor();
            idx.clamp(0.0, (n_bins - 1) as f64) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn weighted_mean_matches_replication() {
        // weight 2 on 3.0 == replicating 3.0 twice
        let wm = weighted_mean(&[3.0, 6.0], &[2.0, 1.0]);
        assert!((wm - mean(&[3.0, 3.0, 6.0])).abs() < 1e-12);
        assert!(weighted_mean(&[1.0], &[0.0]).is_nan());
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile requires q in [0,1]")]
    fn quantile_rejects_bad_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn proportions() {
        assert!((proportion(&[true, false, true, true]) - 0.75).abs() < 1e-12);
        assert!(proportion(&[]).is_nan());
        let wp = weighted_proportion(&[true, false], &[1.0, 3.0]);
        assert!((wp - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let xs = [-1.0, 0.1, 0.5, 0.9, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        // -1.0 clamps into bin 0; 0.5, 0.9 and the clamped 2.0 land in bin 1
        assert_eq!(h, vec![2, 3]);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn bin_codes_ranges() {
        let xs = [0.0, 2.5, 5.0, 7.5, 10.0];
        let codes = bin_codes(&xs, 4);
        assert_eq!(codes, vec![0, 1, 2, 3, 3]);
        // constant input
        assert_eq!(bin_codes(&[3.0, 3.0], 4), vec![0, 0]);
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), -1.0);
        assert_eq!(max(&[3.0, -1.0, 2.0]), 3.0);
        assert!(min(&[]).is_nan());
    }
}
