//! Entropic optimal transport (Sinkhorn iterations) for discrete
//! distributions with an explicit cost matrix.
//!
//! Section IV.F's Wasserstein machinery beyond one dimension: when the
//! support is categorical (or multi-dimensional), the exact OT problem is
//! a linear program; the entropically regularized version is solved by
//! Sinkhorn matrix scaling, converging to the true cost as ε → 0. Also
//! provides the exact 1-D-cost special case for cross-checking.

use crate::distribution::Discrete;

/// The result of a Sinkhorn solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkhornResult {
    /// The transport cost ⟨P, C⟩ of the returned plan.
    pub cost: f64,
    /// The transport plan, row-major `p.k() × q.k()`.
    pub plan: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final marginal violation (L1 of row/col sums vs targets).
    pub marginal_error: f64,
}

/// Solves entropic OT between discrete distributions `p` (rows) and `q`
/// (columns) under `cost[i*q.k()+j]`, with regularization `epsilon`.
pub fn sinkhorn(
    p: &Discrete,
    q: &Discrete,
    cost: &[f64],
    epsilon: f64,
    max_iters: usize,
) -> Result<SinkhornResult, String> {
    let (n, m) = (p.k(), q.k());
    if cost.len() != n * m {
        return Err(format!("cost matrix must be {n}x{m}"));
    }
    if epsilon <= 0.0 {
        return Err("epsilon must be positive".to_owned());
    }
    if max_iters == 0 {
        return Err("max_iters must be positive".to_owned());
    }
    // Gibbs kernel K = exp(-C/eps).
    let kernel: Vec<f64> = cost.iter().map(|&c| (-c / epsilon).exp()).collect();
    let mut u = vec![1.0; n];
    let mut v = vec![1.0; m];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // u = p ./ (K v)
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let kv: f64 = (0..m).map(|j| kernel[i * m + j] * v[j]).sum();
            let new_u = if kv > 0.0 { p.p(i) / kv } else { 0.0 };
            max_delta = max_delta.max((new_u - u[i]).abs());
            u[i] = new_u;
        }
        // v = q ./ (K^T u)
        for j in 0..m {
            let ku: f64 = (0..n).map(|i| kernel[i * m + j] * u[i]).sum();
            let new_v = if ku > 0.0 { q.p(j) / ku } else { 0.0 };
            max_delta = max_delta.max((new_v - v[j]).abs());
            v[j] = new_v;
        }
        if max_delta < 1e-12 {
            break;
        }
    }
    // Plan and cost.
    let mut plan = vec![0.0; n * m];
    let mut total_cost = 0.0;
    for i in 0..n {
        for j in 0..m {
            let pij = u[i] * kernel[i * m + j] * v[j];
            plan[i * m + j] = pij;
            total_cost += pij * cost[i * m + j];
        }
    }
    // Marginal error.
    let mut err = 0.0;
    for i in 0..n {
        let row: f64 = (0..m).map(|j| plan[i * m + j]).sum();
        err += (row - p.p(i)).abs();
    }
    for j in 0..m {
        let col: f64 = (0..n).map(|i| plan[i * m + j]).sum();
        err += (col - q.p(j)).abs();
    }
    Ok(SinkhornResult {
        cost: total_cost,
        plan,
        iterations,
        marginal_error: err,
    })
}

/// The |i − j| cost matrix on ordered categorical support — Sinkhorn with
/// this cost approximates [`crate::distance::wasserstein_discrete`].
pub fn ordinal_cost(n: usize, m: usize) -> Vec<f64> {
    let mut c = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            c.push((i as f64 - j as f64).abs());
        }
    }
    c
}

/// Exact discrete OT cost under the ordinal |i−j| cost via the CDF
/// formula (valid because the cost is a metric induced by 1-D order).
pub fn exact_ordinal_ot(p: &Discrete, q: &Discrete) -> f64 {
    crate::distance::wasserstein_discrete(p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(probs: &[f64]) -> Discrete {
        Discrete::new(probs.to_vec()).unwrap()
    }

    #[test]
    fn sinkhorn_approaches_exact_ot_as_epsilon_shrinks() {
        let p = d(&[0.7, 0.2, 0.1]);
        let q = d(&[0.1, 0.3, 0.6]);
        let cost = ordinal_cost(3, 3);
        let exact = exact_ordinal_ot(&p, &q);
        let loose = sinkhorn(&p, &q, &cost, 1.0, 2000).unwrap();
        let tight = sinkhorn(&p, &q, &cost, 0.01, 5000).unwrap();
        assert!(
            (tight.cost - exact).abs() < (loose.cost - exact).abs() + 1e-12,
            "tight {} loose {} exact {exact}",
            tight.cost,
            loose.cost
        );
        assert!(
            (tight.cost - exact).abs() < 0.02,
            "tight {} vs exact {exact}",
            tight.cost
        );
    }

    #[test]
    fn plan_respects_marginals() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.25, 0.75]);
        let result = sinkhorn(&p, &q, &ordinal_cost(2, 2), 0.05, 5000).unwrap();
        assert!(
            result.marginal_error < 1e-6,
            "err {}",
            result.marginal_error
        );
        // plan entries non-negative, sum to 1
        let total: f64 = result.plan.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(result.plan.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn identical_distributions_zero_cost() {
        let p = d(&[0.3, 0.4, 0.3]);
        let result = sinkhorn(&p, &p, &ordinal_cost(3, 3), 0.01, 5000).unwrap();
        assert!(result.cost < 0.02, "cost {}", result.cost);
    }

    #[test]
    fn rectangular_supports_work() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.2, 0.3, 0.5]);
        let result = sinkhorn(&p, &q, &ordinal_cost(2, 3), 0.05, 5000).unwrap();
        assert!(result.marginal_error < 1e-6);
        assert!(result.cost > 0.0);
    }

    #[test]
    fn entropic_cost_decreases_with_epsilon() {
        // Smaller eps → plan closer to the optimal (cheaper) one.
        let p = d(&[0.9, 0.1]);
        let q = d(&[0.1, 0.9]);
        let cost = ordinal_cost(2, 2);
        let c_big = sinkhorn(&p, &q, &cost, 2.0, 3000).unwrap().cost;
        let c_small = sinkhorn(&p, &q, &cost, 0.05, 3000).unwrap().cost;
        assert!(c_small <= c_big + 1e-9, "{c_small} vs {c_big}");
    }

    #[test]
    fn validates_inputs() {
        let p = d(&[0.5, 0.5]);
        assert!(sinkhorn(&p, &p, &[0.0; 3], 0.1, 100).is_err());
        assert!(sinkhorn(&p, &p, &ordinal_cost(2, 2), 0.0, 100).is_err());
        assert!(sinkhorn(&p, &p, &ordinal_cost(2, 2), 0.1, 0).is_err());
    }
}
