//! Entropic optimal transport (Sinkhorn iterations) for discrete
//! distributions with an explicit cost matrix.
//!
//! Section IV.F's Wasserstein machinery beyond one dimension: when the
//! support is categorical (or multi-dimensional), the exact OT problem is
//! a linear program; the entropically regularized version is solved by
//! Sinkhorn matrix scaling, converging to the true cost as ε → 0. Also
//! provides the exact 1-D-cost special case for cross-checking.
//!
//! The solver runs on the numeric kernel layer: each scaling half-pass
//! is one [`KernelSet::gemv`] over a block of rows of the Gibbs kernel —
//! the `Kᵀu` pass reads a cached packed transpose built once per solve,
//! so it streams sequentially instead of striding down columns, and
//! under the `simd` feature the gemv advances four rows in lockstep.
//! The scaling division runs through the elementwise [`KernelSet::
//! div_into`] kernel (pure IEEE divides; the [`KV_EPSILON_FLOOR`] guard
//! is applied to the output afterwards), and plan materialization runs
//! on `mul_into`/`scale_into`/`dot`/`sum`/`axpy`. The scalar
//! transcendental — the `exp` building the Gibbs kernel — stays scalar,
//! untouched by dispatch. Row updates within a half-pass are
//! independent and every float op goes through the bitwise-pinned
//! kernel table, which makes the parallel path ([`par_sinkhorn`])
//! trivially bitwise-identical to the serial one *and* the dispatched
//! solve bitwise-identical to [`par_sinkhorn_pinned_fused`]: the same
//! kernel over the same row produces the same bits no matter which
//! worker — or instruction set — computes it, and `max_delta` is an
//! order-insensitive max.

use crate::distribution::Discrete;
use crate::kernel::{KernelSet, DISPATCH_KERNELS, FUSED_KERNELS};
use fairbridge_obs::Telemetry;
use fairbridge_tabular::par::{ordered_parallel_map, size_aware_workers};
use fairbridge_tabular::tune::tuned_min_units;

/// Convergence tolerance on the scaling-vector max-delta: once an
/// iteration moves no coordinate of `u` or `v` by more than this, the
/// solve exits before any further (useless) half-passes and before plan
/// materialization.
pub const CONVERGENCE_TOL: f64 = 1e-12;

/// Floor below which a row/column mass `(Kv)ᵢ` or `(Kᵀu)ⱼ` is treated as
/// an **unreachable support point** rather than divided by. The Gibbs
/// kernel `exp(-c/ε)` underflows to subnormals (and then to zero) for
/// costs beyond ~`708·ε`; dividing by such a value would manufacture
/// `inf`/`NaN` scalings out of pure rounding noise. Points whose mass
/// falls below the floor get a zero scaling — their unmet marginal shows
/// up honestly in `marginal_error` instead of poisoning the plan.
pub const KV_EPSILON_FLOOR: f64 = 1e-300;

/// Rows per parallel half-pass chunk. Fixed (independent of the worker
/// count); since each row update is already independent, the chunk size
/// only balances fan-out overhead, never results.
const ROW_CHUNK: usize = 64;

/// Fallback work-unit floor per half-pass worker, where one unit is one
/// kernel cell (`n × row_len` fused-dot elements per half-pass). The
/// conservative default when no `tune_profile.json` is present (key
/// `sinkhorn.halfpass.min_units_per_worker`): `sinkhorn_par8`
/// (1024 × 1024 ≈ 1M units per half-pass) lost ~8% to the fused serial
/// solve because each half-pass re-spawns the pool, so the fan-out must
/// amortize a spawn per iteration, not per solve. 2M units/worker keeps
/// the benchmark size inline while a 4096-point support (16M units)
/// still fans out.
pub const HALF_PASS_MIN_UNITS_PER_WORKER: usize = 1 << 21;

/// The result of a Sinkhorn solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkhornResult {
    /// The transport cost ⟨P, C⟩ of the returned plan.
    pub cost: f64,
    /// The transport plan, row-major `p.k() × q.k()`.
    pub plan: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final marginal violation (L1 of row/col sums vs targets).
    pub marginal_error: f64,
    /// Whether the scaling iteration reached [`CONVERGENCE_TOL`] before
    /// exhausting `max_iters`.
    pub converged: bool,
}

/// Solves entropic OT between discrete distributions `p` (rows) and `q`
/// (columns) under `cost[i*q.k()+j]`, with regularization `epsilon`.
/// Serial convenience wrapper over [`par_sinkhorn`] with one worker.
pub fn sinkhorn(
    p: &Discrete,
    q: &Discrete,
    cost: &[f64],
    epsilon: f64,
    max_iters: usize,
) -> Result<SinkhornResult, String> {
    par_sinkhorn(p, q, cost, epsilon, max_iters, 1)
}

/// [`sinkhorn`] with the scaling half-passes fanned out across up to
/// `workers` threads. Bitwise-identical to the serial solve for any
/// worker count: each row's update is an independent fused dot over the
/// same kernel row.
pub fn par_sinkhorn(
    p: &Discrete,
    q: &Discrete,
    cost: &[f64],
    epsilon: f64,
    max_iters: usize,
    workers: usize,
) -> Result<SinkhornResult, String> {
    par_sinkhorn_observed(p, q, cost, epsilon, max_iters, workers, &Telemetry::off())
}

/// [`par_sinkhorn`] recording a `sinkhorn.solve` span and the
/// `sinkhorn.iterations` counter.
pub fn par_sinkhorn_observed(
    p: &Discrete,
    q: &Discrete,
    cost: &[f64],
    epsilon: f64,
    max_iters: usize,
    workers: usize,
    telemetry: &Telemetry,
) -> Result<SinkhornResult, String> {
    solve(
        p,
        q,
        cost,
        epsilon,
        max_iters,
        workers,
        telemetry,
        DISPATCH_KERNELS,
    )
}

/// [`par_sinkhorn`] pinned to the fused-scalar kernel references,
/// bypassing SIMD dispatch entirely. The bitwise reference arm: the
/// dispatched solve must reproduce this result bit for bit (asserted by
/// `tests/prop_simd.rs` at 1/2/8 workers) and `bench_kernels` measures
/// the dispatched solve against it as `sinkhorn_simd` vs
/// `sinkhorn_fused`.
pub fn par_sinkhorn_pinned_fused(
    p: &Discrete,
    q: &Discrete,
    cost: &[f64],
    epsilon: f64,
    max_iters: usize,
    workers: usize,
) -> Result<SinkhornResult, String> {
    solve(
        p,
        q,
        cost,
        epsilon,
        max_iters,
        workers,
        &Telemetry::off(),
        FUSED_KERNELS,
    )
}

#[allow(clippy::too_many_arguments)]
fn solve(
    p: &Discrete,
    q: &Discrete,
    cost: &[f64],
    epsilon: f64,
    max_iters: usize,
    workers: usize,
    telemetry: &Telemetry,
    ops: KernelSet,
) -> Result<SinkhornResult, String> {
    let (n, m) = (p.k(), q.k());
    if cost.len() != n * m {
        return Err(format!("cost matrix must be {n}x{m}"));
    }
    if epsilon <= 0.0 {
        return Err("epsilon must be positive".to_owned());
    }
    if max_iters == 0 {
        return Err("max_iters must be positive".to_owned());
    }
    let _span = telemetry.span("sinkhorn.solve");
    // Calibrated dispatch floor, resolved once per solve (not per
    // half-pass): profile lookup off the iteration path.
    let min_units = tuned_min_units(
        "sinkhorn.halfpass.min_units_per_worker",
        HALF_PASS_MIN_UNITS_PER_WORKER,
    );

    // Gibbs kernel K = exp(-C/eps) — the one transcendental, kept
    // scalar on every path — plus its packed transpose so the `Kᵀu`
    // half-pass streams rows sequentially instead of striding down
    // columns of `kernel` with stride `m`.
    let kernel: Vec<f64> = cost.iter().map(|&c| (-c / epsilon).exp()).collect();
    // Tiled transpose: TILE×TILE blocks keep both the source rows and
    // the destination rows cache-resident while a block is in flight,
    // instead of paying one cold line per element on the strided side.
    // Pure data movement — bit-for-bit the same packed transpose.
    const TILE: usize = 32;
    let mut kernel_t = vec![0.0; n * m];
    for i0 in (0..n).step_by(TILE) {
        for j0 in (0..m).step_by(TILE) {
            for i in i0..(i0 + TILE).min(n) {
                for j in j0..(j0 + TILE).min(m) {
                    kernel_t[j * n + i] = kernel[i * m + j];
                }
            }
        }
    }

    let mut u = vec![1.0; n];
    let mut v = vec![1.0; m];
    // Hoisted half-pass scratch: row masses (K·other) and the raw
    // elementwise quotients, sized for the larger side.
    let mut mass = vec![0.0; n.max(m)];
    let mut quot = vec![0.0; n.max(m)];
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..max_iters {
        iterations = it + 1;
        // u = p ./ (K v)
        let du = half_pass(
            &kernel,
            m,
            &v,
            p.probs(),
            &mut u,
            &mut mass,
            &mut quot,
            workers,
            min_units,
            ops,
        );
        // v = q ./ (Kᵀ u)
        let dv = half_pass(
            &kernel_t,
            n,
            &u,
            q.probs(),
            &mut v,
            &mut mass,
            &mut quot,
            workers,
            min_units,
            ops,
        );
        if du.max(dv) < CONVERGENCE_TOL {
            converged = true;
            break;
        }
    }
    telemetry
        .counter("sinkhorn.iterations")
        .add(iterations as u64);

    // Plan, cost and marginals — materialized once, after the early
    // exit, one row at a time on the elementwise kernels: the plan row
    // is (K row ⊙ v) · uᵢ, its transport cost one dot against the cost
    // row, its row marginal one sum, and the column marginals
    // accumulate via axpy — per-slot left-to-right in row order, the
    // same addition order as a scalar column walk.
    let mut plan = vec![0.0; n * m];
    let mut total_cost = 0.0;
    let mut col_sums = vec![0.0; m];
    let mut err = 0.0;
    for i in 0..n {
        let plan_row = &mut plan[i * m..(i + 1) * m];
        (ops.mul_into)(&kernel[i * m..(i + 1) * m], &v, plan_row);
        (ops.scale_into)(u[i], plan_row);
        total_cost += (ops.dot)(plan_row, &cost[i * m..(i + 1) * m]);
        err += ((ops.sum)(plan_row) - p.p(i)).abs();
        (ops.axpy)(1.0, plan_row, &mut col_sums);
    }
    for (j, &col) in col_sums.iter().enumerate() {
        err += (col - q.p(j)).abs();
    }
    Ok(SinkhornResult {
        cost: total_cost,
        plan,
        iterations,
        marginal_error: err,
        converged,
    })
}

/// One scaling half-pass: `scale[i] = target[i] / (kernel.row(i) ·
/// other)` for every row, returning the max coordinate delta. Rows
/// whose mass falls below [`KV_EPSILON_FLOOR`] are unreachable and
/// scale to zero.
///
/// The row masses for a block of rows are one `gemv` over that block
/// (under AVX2 dispatch, four rows advance in lockstep — each row's own
/// arithmetic and bits unchanged), and the scaling division is one
/// elementwise `div_into` whose output is then floored; the quotient
/// computed for a floored row is discarded unobserved, so the guard
/// costs no bitwise difference against a branch-per-row scalar loop.
/// Any partition of rows across workers produces identical bits;
/// `workers <= 1` runs on the caller's hoisted scratch with no
/// allocation.
#[allow(clippy::too_many_arguments)]
fn half_pass(
    kernel: &[f64],
    row_len: usize,
    other: &[f64],
    target: &[f64],
    scale: &mut [f64],
    mass: &mut [f64],
    quot: &mut [f64],
    workers: usize,
    min_units: usize,
    ops: KernelSet,
) -> f64 {
    let n = scale.len();
    let workers = size_aware_workers(
        workers,
        n.div_ceil(ROW_CHUNK),
        n.saturating_mul(row_len),
        min_units,
    );
    if workers <= 1 || n <= ROW_CHUNK {
        let mass = &mut mass[..n];
        let quot = &mut quot[..n];
        (ops.gemv)(kernel, row_len, other, mass);
        (ops.div_into)(target, mass, quot);
        let mut max_delta = 0.0f64;
        for ((s, &m), &q) in scale.iter_mut().zip(mass.iter()).zip(quot.iter()) {
            let new = if m > KV_EPSILON_FLOOR { q } else { 0.0 };
            max_delta = max_delta.max((new - *s).abs());
            *s = new;
        }
        return max_delta;
    }
    let n_chunks = n.div_ceil(ROW_CHUNK);
    let scale_ref: &[f64] = scale;
    let chunks = ordered_parallel_map(n_chunks, workers, |c| {
        let start = c * ROW_CHUNK;
        let end = (start + ROW_CHUNK).min(n);
        let len = end - start;
        let mut mass_c = vec![0.0; len];
        let mut out = vec![0.0; len];
        (ops.gemv)(
            &kernel[start * row_len..end * row_len],
            row_len,
            other,
            &mut mass_c,
        );
        (ops.div_into)(&target[start..end], &mass_c, &mut out);
        let mut max_delta = 0.0f64;
        for (k, o) in out.iter_mut().enumerate() {
            let new = if mass_c[k] > KV_EPSILON_FLOOR {
                *o
            } else {
                0.0
            };
            max_delta = max_delta.max((new - scale_ref[start + k]).abs());
            *o = new;
        }
        (out, max_delta)
    });
    let mut max_delta = 0.0f64;
    let mut i = 0;
    for (vals, delta) in chunks {
        max_delta = max_delta.max(delta);
        scale[i..i + vals.len()].copy_from_slice(&vals);
        i += vals.len();
    }
    max_delta
}

/// The |i − j| cost matrix on ordered categorical support — Sinkhorn with
/// this cost approximates [`crate::distance::wasserstein_discrete`].
pub fn ordinal_cost(n: usize, m: usize) -> Vec<f64> {
    let mut c = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            c.push((i as f64 - j as f64).abs());
        }
    }
    c
}

/// Exact discrete OT cost under the ordinal |i−j| cost via the CDF
/// formula (valid because the cost is a metric induced by 1-D order).
pub fn exact_ordinal_ot(p: &Discrete, q: &Discrete) -> f64 {
    crate::distance::wasserstein_discrete(p, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(probs: &[f64]) -> Discrete {
        Discrete::new(probs.to_vec()).unwrap()
    }

    #[test]
    fn sinkhorn_approaches_exact_ot_as_epsilon_shrinks() {
        let p = d(&[0.7, 0.2, 0.1]);
        let q = d(&[0.1, 0.3, 0.6]);
        let cost = ordinal_cost(3, 3);
        let exact = exact_ordinal_ot(&p, &q);
        let loose = sinkhorn(&p, &q, &cost, 1.0, 2000).unwrap();
        let tight = sinkhorn(&p, &q, &cost, 0.01, 5000).unwrap();
        assert!(
            (tight.cost - exact).abs() < (loose.cost - exact).abs() + 1e-12,
            "tight {} loose {} exact {exact}",
            tight.cost,
            loose.cost
        );
        assert!(
            (tight.cost - exact).abs() < 0.02,
            "tight {} vs exact {exact}",
            tight.cost
        );
    }

    #[test]
    fn plan_respects_marginals() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.25, 0.75]);
        let result = sinkhorn(&p, &q, &ordinal_cost(2, 2), 0.05, 5000).unwrap();
        assert!(
            result.marginal_error < 1e-6,
            "err {}",
            result.marginal_error
        );
        // plan entries non-negative, sum to 1
        let total: f64 = result.plan.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(result.plan.iter().all(|&x| x >= 0.0));
        assert!(result.converged);
        assert!(result.iterations < 5000);
    }

    #[test]
    fn identical_distributions_zero_cost() {
        let p = d(&[0.3, 0.4, 0.3]);
        let result = sinkhorn(&p, &p, &ordinal_cost(3, 3), 0.01, 5000).unwrap();
        assert!(result.cost < 0.02, "cost {}", result.cost);
    }

    #[test]
    fn rectangular_supports_work() {
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.2, 0.3, 0.5]);
        let result = sinkhorn(&p, &q, &ordinal_cost(2, 3), 0.05, 5000).unwrap();
        assert!(result.marginal_error < 1e-6);
        assert!(result.cost > 0.0);
    }

    #[test]
    fn entropic_cost_decreases_with_epsilon() {
        // Smaller eps → plan closer to the optimal (cheaper) one.
        let p = d(&[0.9, 0.1]);
        let q = d(&[0.1, 0.9]);
        let cost = ordinal_cost(2, 2);
        let c_big = sinkhorn(&p, &q, &cost, 2.0, 3000).unwrap().cost;
        let c_small = sinkhorn(&p, &q, &cost, 0.05, 3000).unwrap().cost;
        assert!(c_small <= c_big + 1e-9, "{c_small} vs {c_big}");
    }

    #[test]
    fn validates_inputs() {
        let p = d(&[0.5, 0.5]);
        assert!(sinkhorn(&p, &p, &[0.0; 3], 0.1, 100).is_err());
        assert!(sinkhorn(&p, &p, &ordinal_cost(2, 2), 0.0, 100).is_err());
        assert!(sinkhorn(&p, &p, &ordinal_cost(2, 2), 0.1, 0).is_err());
    }

    #[test]
    fn unreachable_support_point_stays_finite() {
        // Row 0's costs are so large that exp(-c/eps) underflows to 0:
        // support point 0 of p cannot reach any point of q. The epsilon
        // floor must keep every output finite and report the unmet mass
        // through marginal_error instead of emitting NaN/inf.
        let p = d(&[0.4, 0.6]);
        let q = d(&[0.5, 0.5]);
        let cost = vec![1e6, 1e6, 0.0, 1.0];
        let result = sinkhorn(&p, &q, &cost, 0.1, 500).unwrap();
        assert!(result.cost.is_finite());
        assert!(result.plan.iter().all(|x| x.is_finite()));
        // Row 0 of the plan is empty: its mass (0.4) is unmet on the row
        // side and missing on the column side, so the L1 error sees it
        // at least once.
        let row0: f64 = result.plan[..2].iter().sum();
        assert_eq!(row0, 0.0);
        assert!(result.marginal_error >= 0.4);
    }

    #[test]
    fn par_sinkhorn_is_bitwise_identical_across_worker_counts() {
        // 130 support points → three ROW_CHUNK chunks in the fan-out.
        let pk = 130;
        let raw: Vec<f64> = (0..pk).map(|i| 1.0 + ((i * 7) % 13) as f64).collect();
        let total: f64 = raw.iter().sum();
        let p = d(&raw.iter().map(|x| x / total).collect::<Vec<_>>());
        let qraw: Vec<f64> = (0..pk).map(|i| 1.0 + ((i * 11) % 17) as f64).collect();
        let qtotal: f64 = qraw.iter().sum();
        let q = d(&qraw.iter().map(|x| x / qtotal).collect::<Vec<_>>());
        let cost = ordinal_cost(pk, pk);
        let serial = par_sinkhorn(&p, &q, &cost, 0.5, 200, 1).unwrap();
        for workers in [2, 8] {
            let par = par_sinkhorn(&p, &q, &cost, 0.5, 200, workers).unwrap();
            assert_eq!(serial.iterations, par.iterations, "{workers} workers");
            assert_eq!(
                serial.cost.to_bits(),
                par.cost.to_bits(),
                "{workers} workers"
            );
            for (a, b) in serial.plan.iter().zip(&par.plan) {
                assert_eq!(a.to_bits(), b.to_bits(), "{workers} workers");
            }
        }
    }

    #[test]
    fn half_pass_fanout_is_bitwise_identical_to_serial() {
        // Forces the parallel chunked path (work-unit floor of 1, so
        // size_aware_workers cannot clamp it away) and pins it bitwise
        // against the serial hoisted-scratch path, for both kernel
        // tables. 150 rows → three ROW_CHUNK chunks, ragged tail.
        let (n, m) = (150, 37);
        let kernel: Vec<f64> = (0..n * m)
            .map(|i| (-(((i * 13) % 101) as f64) * 0.07).exp())
            .collect();
        let other: Vec<f64> = (0..m).map(|j| 0.2 + ((j * 7) % 11) as f64 * 0.1).collect();
        let target: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        for ops in [DISPATCH_KERNELS, FUSED_KERNELS] {
            let mut mass = vec![0.0; n];
            let mut quot = vec![0.0; n];
            let mut serial = vec![1.0; n];
            let d1 = half_pass(
                &kernel,
                m,
                &other,
                &target,
                &mut serial,
                &mut mass,
                &mut quot,
                1,
                1,
                ops,
            );
            for workers in [2, 8] {
                let mut par = vec![1.0; n];
                let dw = half_pass(
                    &kernel, m, &other, &target, &mut par, &mut mass, &mut quot, workers, 1, ops,
                );
                assert_eq!(d1.to_bits(), dw.to_bits(), "{workers} workers delta");
                for (a, b) in serial.iter().zip(&par) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{workers} workers");
                }
            }
        }
    }

    #[test]
    fn observed_solve_counts_iterations() {
        let telemetry = Telemetry::new(std::sync::Arc::new(
            fairbridge_obs::RingSink::with_capacity(16),
        ));
        let p = d(&[0.5, 0.5]);
        let q = d(&[0.25, 0.75]);
        let result =
            par_sinkhorn_observed(&p, &q, &ordinal_cost(2, 2), 0.05, 5000, 1, &telemetry).unwrap();
        assert_eq!(
            telemetry.counter("sinkhorn.iterations").get(),
            result.iterations as u64
        );
    }
}
