//! Deterministic pseudo-random number generation, dependency-free.
//!
//! The workspace builds in offline environments, so it cannot pull the
//! `rand` / `rand_distr` crates. This module is the replacement: a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) seeder feeding a
//! [xoshiro256++](https://prng.di.unimi.it/) generator, plus the handful
//! of distributions the toolkit actually draws from (uniform, Bernoulli,
//! normal, log-normal).
//!
//! Everything is seeded explicitly — there is no entropy source — because
//! every synthetic cohort, bootstrap interval and permutation test in a
//! compliance document must be reproducible (paper Section IV.F).
//!
//! The generic entry point mirrors the `rand` idiom the codebase already
//! uses: functions take `rng: &mut R` with `R:`[`Rng`], and callers seed a
//! concrete [`StdRng`] via [`StdRng::seed_from_u64`].

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand one `u64`
/// seed into the 256-bit xoshiro state (the seeding procedure its authors
/// recommend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the mixer from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// xoshiro256++ — the workspace's standard generator: 256 bits of state,
/// period 2²⁵⁶ − 1, passes BigCrush, four additions and a rotation per
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// The workspace's standard deterministic generator (a seeded
/// [`Xoshiro256PlusPlus`]). The alias keeps call sites short:
/// `StdRng::seed_from_u64(42)`.
pub type StdRng = Xoshiro256PlusPlus;

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state from one `u64` via [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Xoshiro256PlusPlus {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// The long-jump function: advances the stream by 2¹⁹² outputs,
    /// yielding an independent substream. Used to hand each shard or
    /// worker its own non-overlapping stream from one seed.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x7674_3211_5b40_3b5e,
            0x7335_09f7_88aa_fbc5,
            0x1944_3b80_4196_b6a4,
            0x3959_6d0f_7c93_7304,
        ];
        let mut s = [0u64; 4];
        for jump in LONG_JUMP {
            for bit in 0..64 {
                if (jump >> bit) & 1 == 1 {
                    for (acc, cur) in s.iter_mut().zip(self.s.iter()) {
                        *acc ^= *cur;
                    }
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

/// The generator interface all stochastic code in the workspace is
/// generic over.
///
/// Only [`Rng::next_u64`] is required; every sampling helper is derived
/// from it, so alternative generators (e.g. a counting fake in tests)
/// only implement one method.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A sample from the given range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(0.0..1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A sample of a type drawable from the unit interval / raw bits:
    /// `rng.gen::<f64>()` is uniform on `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable "from the standard distribution": uniform bits for
/// integers, uniform `[0, 1)` for floats, a fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 random mantissa bits.
    fn from_rng<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges samplable uniformly. Implemented for the `Range` /
/// `RangeInclusive` shapes the codebase draws from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling on `[0, bound)` by rejection (Lemire-style
/// threshold on the low word).
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample<R: Rng>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + uniform_below(rng, span + 1) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: Rng>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample<R: Rng>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// A normal (Gaussian) distribution, sampled by Marsaglia's polar method.
///
/// The spare variate is deliberately discarded so that sampling is a pure
/// function of the generator state — caching a spare in `&self` would
/// make draw sequences depend on sharing patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; fails on a negative or non-finite
    /// standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, &'static str> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err("Normal requires finite mean and std_dev >= 0");
        }
        Ok(Normal { mean, std_dev })
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        loop {
            let u = 2.0 * f64::from_rng(rng) - 1.0;
            let v = 2.0 * f64::from_rng(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// A log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates the distribution from the mean/std-dev of the underlying
    /// normal on the log scale.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, &'static str> {
        Ok(LogNormal {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        // seed 0 first output is a fixed constant of the algorithm
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_are_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 3];
        for _ in 0..1000 {
            seen_incl[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
        for _ in 0..100 {
            let x = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn normal_moments() {
        let dist = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.25, "var {var}");
        assert!(Normal::new(0.0, -1.0).is_err());
        assert_eq!(Normal::new(5.0, 0.0).unwrap().sample(&mut rng), 5.0);
    }

    #[test]
    fn log_normal_is_positive_with_right_median() {
        let dist = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut samples: Vec<f64> = (0..20_001).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[10_000];
        // median of LogNormal(mu, sigma) = exp(mu)
        assert!((median - 1f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn long_jump_decorrelates_streams() {
        let mut a = StdRng::seed_from_u64(13);
        let mut b = a;
        b.long_jump();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_below_is_unbiased_over_small_bound() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac {frac}");
        }
    }
}
