//! Association measures between attributes.
//!
//! Proxy discrimination (paper Section IV.B) is detected by measuring how
//! strongly ostensibly neutral features associate with a protected
//! attribute: Pearson/Spearman for numeric–numeric, point-biserial for
//! numeric–binary, Cramér's V and mutual information for
//! categorical–categorical.

use crate::special::ln_gamma;

/// Pearson product-moment correlation ∈ [−1, 1].
/// Returns 0 when either side has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    assert!(!x.is_empty(), "pearson: empty input");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// Mid-ranks (average rank for ties), 1-based.
pub fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let mut out = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on mid-ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

/// Point-biserial correlation between a numeric variable and a binary one.
/// Equivalent to Pearson with the binary coded 0/1.
pub fn point_biserial(x: &[f64], b: &[bool]) -> f64 {
    let y: Vec<f64> = b.iter().map(|&v| if v { 1.0 } else { 0.0 }).collect();
    pearson(x, &y)
}

/// A contingency table of counts between two categorical codings.
#[derive(Debug, Clone, PartialEq)]
pub struct Contingency {
    counts: Vec<Vec<f64>>, // rows × cols
}

impl Contingency {
    /// Builds the r×c table from per-row category codes.
    pub fn from_codes(a: &[u32], b: &[u32], r: usize, c: usize) -> Contingency {
        assert_eq!(a.len(), b.len(), "contingency: length mismatch");
        let mut counts = vec![vec![0.0; c]; r];
        for (&ai, &bi) in a.iter().zip(b) {
            let (ai, bi) = (ai as usize, bi as usize);
            assert!(ai < r && bi < c, "contingency: code out of range");
            counts[ai][bi] += 1.0;
        }
        Contingency { counts }
    }

    /// Builds a table directly from counts.
    pub fn from_counts(counts: Vec<Vec<f64>>) -> Contingency {
        assert!(!counts.is_empty() && !counts[0].is_empty());
        let c = counts[0].len();
        assert!(counts.iter().all(|row| row.len() == c), "ragged table");
        Contingency { counts }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.counts[0].len()
    }

    /// The count at (i, j).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.counts[i][j]
    }

    /// Row marginal totals.
    pub fn row_totals(&self) -> Vec<f64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column marginal totals.
    pub fn col_totals(&self) -> Vec<f64> {
        (0..self.n_cols())
            .map(|j| self.counts.iter().map(|r| r[j]).sum())
            .collect()
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.counts.iter().flatten().sum()
    }

    /// Pearson χ² statistic against the independence model.
    pub fn chi_square_stat(&self) -> f64 {
        let rt = self.row_totals();
        let ct = self.col_totals();
        let n = self.total();
        if n == 0.0 {
            return 0.0;
        }
        let mut stat = 0.0;
        for (i, row) in self.counts.iter().enumerate() {
            for (j, &obs) in row.iter().enumerate() {
                let exp = rt[i] * ct[j] / n;
                if exp > 0.0 {
                    stat += (obs - exp).powi(2) / exp;
                }
            }
        }
        stat
    }

    /// Degrees of freedom (r−1)(c−1).
    pub fn dof(&self) -> f64 {
        ((self.n_rows() - 1) * (self.n_cols() - 1)) as f64
    }
}

/// Cramér's V ∈ \[0, 1\]: χ²-based association strength for an r×c table.
pub fn cramers_v(table: &Contingency) -> f64 {
    let n = table.total();
    if n == 0.0 {
        return 0.0;
    }
    let k = table.n_rows().min(table.n_cols());
    if k < 2 {
        return 0.0;
    }
    let chi2 = table.chi_square_stat();
    (chi2 / (n * (k - 1) as f64)).sqrt().min(1.0)
}

/// Mutual information I(A;B) in nats from a contingency table.
pub fn mutual_information(table: &Contingency) -> f64 {
    let n = table.total();
    if n == 0.0 {
        return 0.0;
    }
    let rt = table.row_totals();
    let ct = table.col_totals();
    let mut mi = 0.0;
    for (i, &rti) in rt.iter().enumerate() {
        for (j, &ctj) in ct.iter().enumerate() {
            let pij = table.at(i, j) / n;
            if pij > 0.0 {
                let pi = rti / n;
                let pj = ctj / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Normalized mutual information ∈ \[0, 1\]:
/// I(A;B) / min(H(A), H(B)); 0 when either marginal entropy is 0.
pub fn normalized_mutual_information(table: &Contingency) -> f64 {
    let n = table.total();
    if n == 0.0 {
        return 0.0;
    }
    let ent = |totals: &[f64]| -> f64 {
        -totals
            .iter()
            .filter(|&&t| t > 0.0)
            .map(|&t| {
                let p = t / n;
                p * p.ln()
            })
            .sum::<f64>()
    };
    let ha = ent(&table.row_totals());
    let hb = ent(&table.col_totals());
    let denom = ha.min(hb);
    if denom <= 0.0 {
        return 0.0;
    }
    (mutual_information(table) / denom).clamp(0.0, 1.0)
}

/// Log-probability of a 2×2 table under the hypergeometric null, used by
/// Fisher's exact test in [`crate::hypothesis`].
pub fn ln_hypergeometric_prob(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let n = a + b + c + d;
    // ln [ (a+b)! (c+d)! (a+c)! (b+d)! / (n! a! b! c! d!) ]
    let lf = |x: u64| ln_gamma(x as f64 + 1.0);
    lf(a + b) + lf(c + d) + lf(a + c) + lf(b + d) - lf(n) - lf(a) - lf(b) - lf(c) - lf(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_reference() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_invariance() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect(); // monotone map
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_biserial_separated_groups() {
        let x = [1.0, 1.2, 0.8, 5.0, 5.2, 4.8];
        let b = [false, false, false, true, true, true];
        assert!(point_biserial(&x, &b) > 0.95);
    }

    #[test]
    fn contingency_marginals() {
        let t = Contingency::from_codes(&[0, 0, 1, 1], &[0, 1, 0, 1], 2, 2);
        assert_eq!(t.row_totals(), vec![2.0, 2.0]);
        assert_eq!(t.col_totals(), vec![2.0, 2.0]);
        assert_eq!(t.total(), 4.0);
        assert_eq!(t.at(1, 0), 1.0);
    }

    #[test]
    fn cramers_v_extremes() {
        // Perfect association: diagonal table.
        let perfect = Contingency::from_counts(vec![vec![50.0, 0.0], vec![0.0, 50.0]]);
        assert!((cramers_v(&perfect) - 1.0).abs() < 1e-12);
        // Independence: uniform table.
        let indep = Contingency::from_counts(vec![vec![25.0, 25.0], vec![25.0, 25.0]]);
        assert!(cramers_v(&indep).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_extremes() {
        let perfect = Contingency::from_counts(vec![vec![50.0, 0.0], vec![0.0, 50.0]]);
        assert!((mutual_information(&perfect) - 2.0_f64.ln().min(1.0)).abs() < 1e-9);
        assert!((normalized_mutual_information(&perfect) - 1.0).abs() < 1e-9);
        let indep = Contingency::from_counts(vec![vec![25.0, 25.0], vec![25.0, 25.0]]);
        assert!(mutual_information(&indep).abs() < 1e-12);
        assert!(normalized_mutual_information(&indep).abs() < 1e-12);
    }

    #[test]
    fn nmi_zero_entropy_guard() {
        // One-row table: H(A)=0 → NMI defined as 0.
        let t = Contingency::from_counts(vec![vec![10.0, 20.0]]);
        assert_eq!(normalized_mutual_information(&t), 0.0);
    }

    #[test]
    fn hypergeometric_prob_sums_to_one() {
        // For fixed margins (row sums 3,3; col sums 3,3), sum over all
        // feasible tables must be 1.
        let mut total = 0.0;
        for a in 0u64..=3 {
            let b = 3 - a;
            let c = 3 - a;
            let d = 3 - b;
            total += ln_hypergeometric_prob(a, b, c, d).exp();
        }
        assert!((total - 1.0).abs() < 1e-10);
    }
}
