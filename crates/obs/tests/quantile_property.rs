//! Property tests for the log-linear histogram's quantile accuracy.
//!
//! The claim DESIGN §13 makes — `Histogram::quantile(q)` is within one
//! sub-bucket (relative error ≤ 1/16) of the exact sample quantile — is
//! checked here against seeded pseudo-random data drawn from several
//! shapes (uniform, heavy-tailed, bimodal), plus a regression test that
//! the legacy log₂ bucket view survives the log-linear rewrite.

use fairbridge_obs::{NoopSink, Telemetry, SUBBUCKETS};
use std::sync::Arc;

/// SplitMix64: a tiny, seedable PRNG so the test is deterministic.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The exact sample quantile under the same nearest-rank convention
/// `Histogram::quantile` documents: index `round(q · (n−1))` of the
/// sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn check_distribution(name: &str, samples: Vec<u64>) {
    let telemetry = Telemetry::new(Arc::new(NoopSink));
    let h = telemetry.histogram(name);
    for &v in &samples {
        h.record(v);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
        let exact = exact_quantile(&sorted, q);
        let got = h.quantile(q);
        if exact == 0 {
            assert_eq!(got, 0, "{name} q={q}: exact 0 must report 0");
            continue;
        }
        let rel = got.abs_diff(exact) as f64 / exact as f64;
        assert!(
            rel <= 1.0 / SUBBUCKETS as f64,
            "{name} q={q}: histogram {got} vs exact {exact}, rel err {rel:.4} > 1/{SUBBUCKETS}"
        );
    }
}

#[test]
fn uniform_samples_stay_within_one_sub_bucket() {
    let mut rng = SplitMix64(0xFB01);
    let samples: Vec<u64> = (0..20_000).map(|_| rng.next() % 1_000_000).collect();
    check_distribution("uniform", samples);
}

#[test]
fn heavy_tailed_samples_stay_within_one_sub_bucket() {
    // Exponent-skewed: most values small, a long tail into the billions
    // — the shape service latencies actually have.
    let mut rng = SplitMix64(0xFB02);
    let samples: Vec<u64> = (0..20_000)
        .map(|_| {
            let magnitude = rng.next() % 30; // up to 2^30
            (rng.next() % 1024) << (magnitude / 3)
        })
        .collect();
    check_distribution("heavy_tailed", samples);
}

#[test]
fn bimodal_samples_stay_within_one_sub_bucket() {
    // Fast path around 10µs, slow path around 5ms — the coalesced vs
    // computed split a serving histogram sees.
    let mut rng = SplitMix64(0xFB03);
    let samples: Vec<u64> = (0..20_000)
        .map(|_| {
            if rng.next() % 4 == 0 {
                5_000_000 + rng.next() % 1_000_000
            } else {
                10_000 + rng.next() % 2_000
            }
        })
        .collect();
    check_distribution("bimodal", samples);
}

#[test]
fn small_exact_values_are_reported_exactly() {
    let telemetry = Telemetry::new(Arc::new(NoopSink));
    let h = telemetry.histogram("small");
    for v in 0..16u64 {
        h.record(v);
    }
    // Values below SUBBUCKETS occupy exact unit buckets, so quantiles
    // of small-valued data have zero error.
    assert_eq!(h.quantile(0.0), 0);
    assert_eq!(h.quantile(0.5), 8);
    assert_eq!(h.quantile(1.0), 15);
}

#[test]
fn legacy_log2_buckets_remain_available() {
    // Regression: the pre-log-linear API surface — 65 log₂ buckets where
    // entry i counts values of bit length i — must survive the rewrite
    // with identical semantics.
    let telemetry = Telemetry::new(Arc::new(NoopSink));
    let h = telemetry.histogram("legacy");
    for v in [0u64, 1, 2, 3, 900, 1023, 1024, u64::MAX] {
        h.record(v);
    }
    let buckets = h.buckets();
    assert_eq!(buckets.len(), 65);
    assert_eq!(buckets[0], 1, "zeros");
    assert_eq!(buckets[1], 1, "bit length 1: {{1}}");
    assert_eq!(buckets[2], 2, "bit length 2: {{2, 3}}");
    assert_eq!(buckets[10], 2, "bit length 10: [512, 1024) holds 900, 1023");
    assert_eq!(buckets[11], 1, "bit length 11: [1024, 2048)");
    assert_eq!(buckets[64], 1, "bit length 64 holds u64::MAX");
    assert_eq!(buckets.iter().sum::<u64>(), 8, "every sample is bucketed");
}
