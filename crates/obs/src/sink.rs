//! Where telemetry goes: the [`Sink`] trait and its three built-ins.
//!
//! * [`NoopSink`] — discards everything; paired with a disabled
//!   `Telemetry` it makes the instrumented hot paths effectively free.
//! * [`RingSink`] — a bounded in-memory ring. The write cursor is a
//!   single atomic fetch-add and writers only contend on the *slot* they
//!   land in, so concurrent emitters (e.g. shard workers) do not
//!   serialize behind one global lock.
//! * [`JsonlSink`] — appends one JSON object per event to a file, the
//!   durable evidential-trail format (`fb-experiments --telemetry`).

use crate::event::Event;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A destination for telemetry events. Implementations must tolerate
/// concurrent `emit` calls from many threads.
pub trait Sink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Makes buffered events durable (no-op by default).
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// A bounded in-memory ring of the most recent events.
pub struct RingSink {
    slots: Vec<Mutex<Option<(u64, Event)>>>,
    head: AtomicU64,
}

impl RingSink {
    /// Creates a ring retaining the most recent `capacity` events
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// How many events were ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        // Slot contents are published by the per-slot mutexes, not by
        // this cursor.
        // ORDER: Relaxed — advisory tally.
        self.head.load(Ordering::Relaxed)
    }

    /// The retained events in emission order (oldest first).
    pub fn events(&self) -> Vec<Event> {
        let mut tagged: Vec<(u64, Event)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        tagged.sort_by_key(|(seq, _)| *seq);
        tagged.into_iter().map(|(_, e)| e).collect()
    }
}

impl fmt::Debug for RingSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingSink")
            .field("capacity", &self.slots.len())
            .field("emitted", &self.emitted())
            .finish()
    }
}

impl Sink for RingSink {
    fn emit(&self, event: &Event) {
        // The fetch_add only claims a unique sequence number; the
        // event itself is published under the slot mutex.
        // ORDER: Relaxed — uniqueness only.
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((seq, event.clone()));
    }
}

/// Appends events as JSON lines to a file.
pub struct JsonlSink {
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            path,
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The file the sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("path", &self.path)
            .finish()
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // An I/O error here must not poison the audited computation;
        // telemetry is an observer, never a failure source.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;

    fn event(i: u64) -> Event {
        Event {
            t_ns: i,
            thread: 0,
            span: None,
            parent: None,
            kind: EventKind::Counter {
                name: format!("c{i}"),
                value: i,
            },
        }
    }

    #[test]
    fn ring_retains_the_most_recent_events_in_order() {
        let ring = RingSink::with_capacity(4);
        for i in 0..10 {
            ring.emit(&event(i));
        }
        assert_eq!(ring.emitted(), 10);
        let kept: Vec<u64> = ring.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_survives_concurrent_emitters() {
        let ring = RingSink::with_capacity(64);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.emit(&event(t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(ring.emitted(), 800);
        assert_eq!(ring.events().len(), 64);
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let path = std::env::temp_dir().join(format!(
            "fairbridge_obs_jsonl_{}_{}.jsonl",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        for i in 0..5 {
            sink.emit(&event(i));
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let values = json::parse_lines(&text).unwrap();
        assert_eq!(values.len(), 5);
        assert_eq!(
            values[3].get("name").and_then(json::Value::as_str),
            Some("c3")
        );
        assert_eq!(
            values[3].get("value").and_then(json::Value::as_u64),
            Some(3)
        );
        drop(sink);
        std::fs::remove_file(&path).ok();
    }
}
