//! RAII spans with thread-local parenting.
//!
//! A span is opened by [`Telemetry::span`](crate::Telemetry::span) and
//! closed by dropping the returned [`SpanGuard`]; the guard records the
//! wall-clock nanoseconds in between and emits matching
//! `span_start`/`span_end` events. Each thread keeps its own stack of
//! open spans, so a span opened while another is open becomes its child
//! — nesting falls out of scoping with no explicit context passing.

use crate::event::EventKind;
use crate::telemetry::Telemetry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // ORDER: Relaxed — only uniqueness of the handed-out id matters.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The telemetry-assigned id of the calling thread (dense, process-local).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// The innermost open span on the calling thread, if any.
pub fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

fn push_span(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Guards normally drop innermost-first; tolerate out-of-order
        // drops (e.g. a guard moved across an early return) by removing
        // the id wherever it sits.
        if stack.last() == Some(&id) {
            stack.pop();
        } else if let Some(pos) = stack.iter().rposition(|&s| s == id) {
            stack.remove(pos);
        }
    });
}

pub(crate) struct ActiveSpan {
    pub(crate) telemetry: Telemetry,
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) name: String,
    pub(crate) start: Instant,
}

/// An open span; dropping it closes the span and emits `span_end`.
///
/// A guard from a disabled `Telemetry` is inert: no allocation, no
/// events, no clock reads.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct SpanGuard {
    pub(crate) active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// An inert guard (what a disabled telemetry hands out).
    pub(crate) fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }

    pub(crate) fn open(telemetry: Telemetry, id: u64, name: String) -> SpanGuard {
        SpanGuard::open_with_parent(telemetry, id, name, current_span())
    }

    /// Opens a span under an explicit parent instead of the calling
    /// thread's innermost span — the cross-thread attribution path
    /// (e.g. a worker executing a job on behalf of a connection
    /// thread's request span). The span is still pushed onto *this*
    /// thread's stack so spans opened inside it nest normally.
    pub(crate) fn open_with_parent(
        telemetry: Telemetry,
        id: u64,
        name: String,
        parent: Option<u64>,
    ) -> SpanGuard {
        telemetry.emit_raw(
            Some(id),
            parent,
            EventKind::SpanStart { name: name.clone() },
        );
        push_span(id);
        SpanGuard {
            active: Some(ActiveSpan {
                telemetry,
                id,
                parent,
                name,
                start: Instant::now(),
            }),
        }
    }

    /// Whether this guard records anything.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// The span id (None for an inert guard).
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed_ns = active.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            pop_span(active.id);
            active.telemetry.emit_raw(
                Some(active.id),
                active.parent,
                EventKind::SpanEnd {
                    name: active.name,
                    elapsed_ns,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_stable_within_and_distinct_across_threads() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let there = std::thread::scope(|s| s.spawn(thread_id).join().unwrap());
        assert_ne!(here, there);
    }

    #[test]
    fn inert_guard_records_nothing() {
        let g = SpanGuard::inert();
        assert!(!g.is_recording());
        assert_eq!(g.id(), None);
        assert_eq!(current_span(), None);
        drop(g);
    }
}
