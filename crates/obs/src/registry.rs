//! Monotonic counters and log-linear histograms behind a cheap
//! name-keyed registry.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`-backed and can be
//! cloned into worker threads; updates are single relaxed atomic
//! operations, so instrumenting a hot loop costs nanoseconds. A handle
//! obtained from a *disabled* telemetry carries no cell at all — its
//! update methods are a branch on `None` and compile down to nothing
//! observable, which is what keeps the disabled path negligible.
//!
//! ## Bucket layout
//!
//! Histograms are **log-linear**: each power of two is subdivided into
//! [`SUBBUCKETS`] = 16 linear sub-buckets, so a recorded value lands in
//! a bucket whose width is at most 1/16 of its lower bound. That bounds
//! the relative error of [`Histogram::quantile`] by one sub-bucket
//! (≤ 1/16; ≤ 1/32 for the midpoint representative actually returned),
//! where the earlier log₂-only layout could only bracket a p99 within
//! 2×. Values below 16 get exact unit-width buckets. The legacy log₂
//! view ([`Histogram::buckets`]) is derived from the same cells, so
//! pre-existing consumers see identical numbers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that ignores every update (the disabled-telemetry path).
    pub fn disabled() -> Counter {
        Counter::default()
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Counter {
        Counter { cell: Some(cell) }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            // Counters are pure tallies: no other memory is published
            // through them.
            // ORDER: Relaxed — independent tally.
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        // ORDER: Relaxed — an advisory read of a tally; staleness is fine.
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Linear sub-buckets per power of two. 16 sub-buckets bound the
/// relative quantile error at 1/16.
pub const SUBBUCKETS: usize = 16;

/// Total log-linear buckets: 16 exact unit buckets for values `< 16`,
/// then 16 sub-buckets for each power of two from `2^4` through `2^63`.
const NUM_BUCKETS: usize = SUBBUCKETS + 60 * SUBBUCKETS;

/// The log-linear bucket index for `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // value ∈ [2^msb, 2^(msb+1))
    let sub = ((value >> (msb - 4)) & 0xF) as usize;
    (msb - 3) * SUBBUCKETS + sub
}

/// The `[lo, hi)` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBBUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let msb = index / SUBBUCKETS + 3;
    let sub = (index % SUBBUCKETS) as u64;
    let width = 1u64 << (msb - 4);
    let lo = (1u64 << msb) + sub * width;
    (lo, lo.saturating_add(width))
}

/// The representative value reported for bucket `index`: the exact value
/// for unit-width buckets, the bucket midpoint otherwise (relative error
/// to any member ≤ 1/32).
fn bucket_representative(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    if hi - lo <= 1 {
        lo
    } else {
        lo + (hi - lo) / 2
    }
}

/// Shared histogram storage: log-linear buckets over `u64` values plus
/// count/sum/min/max.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64, // stores value + 1 so 0 can mean "empty"
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A histogram handle recording `u64` observations (typically
/// nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

/// A point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramStats {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramStats {
    /// Mean of the recorded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

/// One non-empty log-linear bucket in a [`Histogram::nonzero_buckets`]
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value the bucket covers (inclusive).
    pub lo: u64,
    /// Smallest value above the bucket (exclusive upper bound).
    pub hi: u64,
    /// Observations recorded into the bucket.
    pub count: u64,
}

impl Histogram {
    /// A handle that ignores every update (the disabled-telemetry path).
    pub fn disabled() -> Histogram {
        Histogram::default()
    }

    pub(crate) fn live(cell: Arc<HistogramCell>) -> Histogram {
        Histogram { cell: Some(cell) }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            // Histogram cells are independent tallies: snapshots tolerate
            // torn reads across fields (count may run ahead of buckets),
            // so no update needs to publish or observe other memory.
            cell.count.fetch_add(1, Ordering::Relaxed); // ORDER: Relaxed — independent tally
            cell.sum.fetch_add(value, Ordering::Relaxed); // ORDER: Relaxed — independent tally
            cell.max.fetch_max(value, Ordering::Relaxed); // ORDER: Relaxed — independent tally
            let shifted = value.saturating_add(1);
            // min stores value+1; 0 means "no observation yet"
            cell.min // ORDER: Relaxed (success & failure) — single-cell CAS, no cross-cell ordering
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    if cur == 0 || shifted < cur {
                        Some(shifted)
                    } else {
                        None
                    }
                })
                .ok();
            if let Some(bucket) = cell.buckets.get(bucket_index(value)) {
                // ORDER: Relaxed — independent tally (see above).
                bucket.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The current summary (all zeros for a disabled or empty handle).
    pub fn snapshot(&self) -> HistogramStats {
        match &self.cell {
            None => HistogramStats {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
            },
            // A snapshot is advisory: the four reads need no mutual
            // consistency, only per-read atomicity.
            Some(cell) => HistogramStats {
                count: cell.count.load(Ordering::Relaxed), // ORDER: Relaxed — advisory read
                sum: cell.sum.load(Ordering::Relaxed),     // ORDER: Relaxed — advisory read
                min: cell.min.load(Ordering::Relaxed).saturating_sub(1), // ORDER: Relaxed — advisory read
                max: cell.max.load(Ordering::Relaxed), // ORDER: Relaxed — advisory read
            },
        }
    }

    /// The legacy log₂ bucket counts: entry `i` counts values with bit
    /// length `i` (entry 0 counts zeros). Empty for a disabled handle.
    /// Derived exactly from the log-linear cells, so consumers of the
    /// pre-log-linear API see unchanged numbers.
    pub fn buckets(&self) -> Vec<u64> {
        let Some(cell) = self.cell.as_ref() else {
            return Vec::new();
        };
        let raw: Vec<u64> = cell
            .buckets
            .iter()
            // ORDER: Relaxed — advisory read of independent tallies.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mut log2 = vec![0u64; 65];
        for (index, count) in raw.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            let (lo, _) = bucket_bounds(index);
            let bit_len = (64 - lo.leading_zeros()) as usize;
            if let Some(slot) = log2.get_mut(bit_len) {
                *slot += count;
            }
        }
        log2
    }

    /// The non-empty log-linear buckets, in ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<BucketCount> {
        let Some(cell) = self.cell.as_ref() else {
            return Vec::new();
        };
        cell.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                // ORDER: Relaxed — advisory read of independent tallies.
                let count = bucket.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let (lo, hi) = bucket_bounds(index);
                Some(BucketCount { lo, hi, count })
            })
            .collect()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) of the recorded values, with
    /// relative error bounded by one sub-bucket (≤ 1/16; the returned
    /// midpoint is within 1/32 of any value in the bucket). Uses the
    /// same nearest-rank convention as sorting the samples and taking
    /// index `round(q · (n−1))`, so it can be compared directly against
    /// exact sample quantiles. Returns 0 when empty or disabled.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(cell) = self.cell.as_ref() else {
            return 0;
        };
        // Quantiles over a live histogram are approximate by design;
        // see the count-vs-buckets fallback below.
        // ORDER: Relaxed — advisory read.
        let n = cell.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (n - 1) as f64).round() as u64;
        let mut cumulative = 0u64;
        for (index, bucket) in cell.buckets.iter().enumerate() {
            // ORDER: Relaxed — advisory read of independent tallies.
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative > rank {
                return bucket_representative(index);
            }
        }
        // Concurrent recording can leave count ahead of the bucket sums;
        // the largest observed value is the honest fallback.
        // ORDER: Relaxed — advisory read.
        cell.max.load(Ordering::Relaxed)
    }
}

/// Name-keyed storage behind a `Telemetry`.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter::live(Arc::clone(cell))
    }

    pub(crate) fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistogramCell::default()));
        Histogram::live(Arc::clone(cell))
    }

    pub(crate) fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            // ORDER: Relaxed — advisory read for reporting.
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn histogram_values(&self) -> Vec<(String, HistogramStats)> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), Histogram::live(Arc::clone(cell)).snapshot()))
            .collect()
    }

    pub(crate) fn histogram_handles(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), Histogram::live(Arc::clone(cell))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_atomic_under_scoped_contention() {
        let registry = Registry::default();
        let counter = registry.counter("contended");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        handle.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(
            registry.counter_values(),
            vec![("contended".into(), 80_000)]
        );
    }

    #[test]
    fn same_name_shares_the_cell() {
        let registry = Registry::default();
        registry.counter("x").add(3);
        registry.counter("x").add(4);
        assert_eq!(registry.counter("x").get(), 7);
    }

    #[test]
    fn disabled_handles_ignore_updates() {
        let c = Counter::disabled();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::disabled();
        h.record(10);
        assert_eq!(h.snapshot().count, 0);
        assert!(h.buckets().is_empty());
        assert!(h.nonzero_buckets().is_empty());
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn histogram_tracks_summary_and_buckets() {
        let registry = Registry::default();
        let h = registry.histogram("ns");
        for v in [0u64, 1, 2, 3, 900] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 906);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 900);
        assert!((snap.mean() - 181.2).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[10], 1); // 900 ∈ [512, 1024)
    }

    #[test]
    fn histogram_is_atomic_under_scoped_contention() {
        let registry = Registry::default();
        let h = registry.histogram("contended");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = h.clone();
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        handle.record(t * 5_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 20_000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 19_999);
        assert_eq!(snap.sum, (0..20_000u64).sum::<u64>());
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        // Every bucket's bounds contain exactly the values that map back
        // to its index.
        for index in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert_eq!(bucket_index(lo), index, "lo of bucket {index}");
            if hi > lo + 1 && hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), index, "hi-1 of bucket {index}");
            }
            let rep = bucket_representative(index);
            assert!(rep >= lo && rep < hi.max(lo + 1), "rep of bucket {index}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn sub_bucket_width_bounds_relative_error() {
        for index in SUBBUCKETS..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            let width = hi - lo;
            assert!(
                width * SUBBUCKETS as u64 <= lo,
                "bucket {index}: width {width} > lo/{SUBBUCKETS} ({lo})"
            );
        }
    }

    #[test]
    fn nonzero_buckets_partition_the_count() {
        let registry = Registry::default();
        let h = registry.histogram("ns");
        for v in [0u64, 5, 17, 17, 1_000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 7);
        assert!(buckets.windows(2).all(|w| match w {
            [a, b] => a.hi <= b.lo,
            _ => true,
        }));
        for b in &buckets {
            assert!(b.count > 0 && b.lo < b.hi);
        }
    }

    #[test]
    fn quantile_on_a_known_distribution() {
        let registry = Registry::default();
        let h = registry.histogram("ns");
        for v in 1..=1_000u64 {
            h.record(v);
        }
        for (q, exact) in [
            (0.0, 1u64),
            (0.5, 500),
            (0.9, 900),
            (0.99, 990),
            (1.0, 1000),
        ] {
            let got = h.quantile(q);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(
                err <= 1.0 / SUBBUCKETS as f64,
                "q={q}: got {got}, exact {exact}, rel err {err}"
            );
        }
    }
}
