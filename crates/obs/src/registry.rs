//! Monotonic counters and log₂-bucketed histograms behind a cheap
//! name-keyed registry.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`-backed and can be
//! cloned into worker threads; updates are single relaxed atomic
//! operations, so instrumenting a hot loop costs nanoseconds. A handle
//! obtained from a *disabled* telemetry carries no cell at all — its
//! update methods are a branch on `None` and compile down to nothing
//! observable, which is what keeps the disabled path negligible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that ignores every update (the disabled-telemetry path).
    pub fn disabled() -> Counter {
        Counter::default()
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Counter {
        Counter { cell: Some(cell) }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared histogram storage: power-of-two buckets over `u64` values plus
/// count/sum/min/max.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64, // stores value + 1 so 0 can mean "empty"
    max: AtomicU64,
    /// `buckets[i]` counts values whose bit length is `i` (i.e. in
    /// `[2^(i-1), 2^i)`; bucket 0 counts zeros).
    buckets: [AtomicU64; 65],
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram handle recording `u64` observations (typically
/// nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

/// A point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramStats {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramStats {
    /// Mean of the recorded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }
}

impl Histogram {
    /// A handle that ignores every update (the disabled-telemetry path).
    pub fn disabled() -> Histogram {
        Histogram::default()
    }

    pub(crate) fn live(cell: Arc<HistogramCell>) -> Histogram {
        Histogram { cell: Some(cell) }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
            cell.max.fetch_max(value, Ordering::Relaxed);
            let shifted = value.saturating_add(1);
            // min stores value+1; 0 means "no observation yet"
            cell.min
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                    if cur == 0 || shifted < cur {
                        Some(shifted)
                    } else {
                        None
                    }
                })
                .ok();
            let bucket = (u64::BITS - value.leading_zeros()) as usize;
            cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current summary (all zeros for a disabled or empty handle).
    pub fn snapshot(&self) -> HistogramStats {
        match &self.cell {
            None => HistogramStats {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
            },
            Some(cell) => HistogramStats {
                count: cell.count.load(Ordering::Relaxed),
                sum: cell.sum.load(Ordering::Relaxed),
                min: cell.min.load(Ordering::Relaxed).saturating_sub(1),
                max: cell.max.load(Ordering::Relaxed),
            },
        }
    }

    /// The log₂ bucket counts: entry `i` counts values with bit length
    /// `i` (entry 0 counts zeros). Empty for a disabled handle.
    pub fn buckets(&self) -> Vec<u64> {
        self.cell.as_ref().map_or_else(Vec::new, |cell| {
            cell.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        })
    }
}

/// Name-keyed storage behind a `Telemetry`.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter::live(Arc::clone(cell))
    }

    pub(crate) fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistogramCell::default()));
        Histogram::live(Arc::clone(cell))
    }

    pub(crate) fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn histogram_values(&self) -> Vec<(String, HistogramStats)> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), Histogram::live(Arc::clone(cell)).snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_atomic_under_scoped_contention() {
        let registry = Registry::default();
        let counter = registry.counter("contended");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        handle.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(
            registry.counter_values(),
            vec![("contended".into(), 80_000)]
        );
    }

    #[test]
    fn same_name_shares_the_cell() {
        let registry = Registry::default();
        registry.counter("x").add(3);
        registry.counter("x").add(4);
        assert_eq!(registry.counter("x").get(), 7);
    }

    #[test]
    fn disabled_handles_ignore_updates() {
        let c = Counter::disabled();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::disabled();
        h.record(10);
        assert_eq!(h.snapshot().count, 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn histogram_tracks_summary_and_buckets() {
        let registry = Registry::default();
        let h = registry.histogram("ns");
        for v in [0u64, 1, 2, 3, 900] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 906);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 900);
        assert!((snap.mean() - 181.2).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[10], 1); // 900 ∈ [512, 1024)
    }

    #[test]
    fn histogram_is_atomic_under_scoped_contention() {
        let registry = Registry::default();
        let h = registry.histogram("contended");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = h.clone();
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        handle.record(t * 5_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 20_000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 19_999);
        assert_eq!(snap.sum, (0..20_000u64).sum::<u64>());
    }
}
