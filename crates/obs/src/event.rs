//! The telemetry event model and its JSON-lines rendering.
//!
//! Every record a [`Sink`](crate::sink::Sink) receives is an [`Event`]: a
//! small envelope (monotonic timestamp, thread, span context) around an
//! [`EventKind`]. The kinds split into the *mechanical* vocabulary every
//! tracing layer has (span start/end, counter and histogram summaries)
//! and the *fairness* vocabulary ([`FairnessEvent`]) that makes an audit
//! trail legally legible: a drift alarm is a structured, replayable
//! record with the window index, the measured gap and the threshold it
//! breached — not a boolean that evaporates once printed.
//!
//! Serialization is hand-rolled JSON (one object per line, stable
//! `"kind"` discriminator) so the crate stays dependency-free; the
//! matching parser lives in [`crate::json`].

use std::fmt::Write as _;

/// The envelope around one telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the owning `Telemetry` was created (monotonic).
    pub t_ns: u64,
    /// Telemetry-assigned id of the emitting thread (dense, stable within
    /// a process — not the OS thread id).
    pub thread: u64,
    /// The span this record belongs to, when one was open.
    pub span: Option<u64>,
    /// The parent of that span, when it had one.
    pub parent: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// The record payload: mechanical tracing kinds plus the typed fairness
/// vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    SpanStart {
        /// Span name (e.g. `engine.audit`).
        name: String,
    },
    /// A span closed.
    SpanEnd {
        /// Span name, repeated so a single line is self-describing.
        name: String,
        /// Wall-clock nanoseconds the span stayed open.
        elapsed_ns: u64,
    },
    /// A counter's value at flush time.
    Counter {
        /// Counter name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// A histogram's summary at flush time.
    Histogram {
        /// Histogram name.
        name: String,
        /// Number of recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Smallest recorded value (0 when empty).
        min: u64,
        /// Largest recorded value (0 when empty).
        max: u64,
    },
    /// A typed fairness event.
    Fairness(FairnessEvent),
}

/// The structured fairness vocabulary: each variant is one step of the
/// evidential trail a legal review of an audit needs.
#[derive(Debug, Clone, PartialEq)]
pub enum FairnessEvent {
    /// An audit began.
    AuditStarted {
        /// Rows in the audited dataset.
        rows: usize,
        /// Protected columns whose intersection defines the groups.
        protected: Vec<String>,
        /// Whether historical labels (rather than predictions) are audited.
        use_labels: bool,
    },
    /// An exhaustive subgroup (conjunction-lattice) audit began.
    SubgroupAuditStarted {
        /// Rows in the audited dataset.
        rows: usize,
        /// Columns whose level conjunctions define the lattice.
        columns: Vec<String>,
        /// Maximum conjuncts per subgroup.
        max_depth: usize,
        /// Minimum subgroup size enumerated (the anti-monotone pruning
        /// bound).
        min_support: usize,
    },
    /// One shard of the parallel metric scan completed.
    ShardScanned {
        /// Shard index (ascending, merge order).
        shard: usize,
        /// Rows the shard covered.
        rows: usize,
        /// Wall-clock nanoseconds the scan of this shard took.
        elapsed_ns: u64,
    },
    /// The partition cache served a memoized row→group partition.
    PartitionCacheHit {
        /// The dataset fingerprint that keyed the hit.
        fingerprint: u64,
    },
    /// The partition cache had to build (and insert) a partition.
    PartitionCacheMiss {
        /// The dataset fingerprint that keyed the miss.
        fingerprint: u64,
    },
    /// A streaming-monitor tumbling window sealed.
    WindowClosed {
        /// Window index (0 = first window ever sealed).
        window: usize,
        /// Events the window accumulated.
        n: u64,
        /// Demographic-parity gap of the sealed window.
        parity_gap: f64,
    },
    /// Sustained drift: the parity gap breached the threshold in
    /// consecutive sealed windows.
    DriftFlagged {
        /// Index of the window that completed the sustained breach.
        window: usize,
        /// The gap measured in that window.
        parity_gap: f64,
        /// The configured breach threshold.
        threshold: f64,
    },
    /// A mitigation technique was applied to the decision process.
    MitigationApplied {
        /// Technique name (e.g. `reweighing`).
        technique: String,
        /// Free-form description of scope and parameters.
        detail: String,
    },
    /// A static-analysis pass (`fb-lint`) finished scanning the tree.
    LintCompleted {
        /// Source files scanned.
        files_scanned: usize,
        /// Standing rule violations found.
        violations: usize,
        /// Violations suppressed by documented allow-markers.
        suppressed: usize,
    },
    /// The audit daemon admitted a request.
    RequestReceived {
        /// Tenant id from the `X-FB-Tenant` header (or `anonymous`).
        tenant: String,
        /// Request path (e.g. `/audit`).
        endpoint: String,
    },
    /// A request finished and its response bytes were handed back.
    RequestCompleted {
        /// Tenant id the request was attributed to.
        tenant: String,
        /// Request path.
        endpoint: String,
        /// HTTP status of the response.
        status: u16,
        /// Whether this request rode an in-flight identical computation
        /// instead of scheduling its own.
        coalesced: bool,
        /// Nanoseconds from admission to response publication.
        elapsed_ns: u64,
    },
    /// A request was refused at admission (queue full or draining).
    RequestRejected {
        /// Tenant id the rejection was attributed to.
        tenant: String,
        /// Request path.
        endpoint: String,
        /// HTTP status returned (429 when full, 503 when draining).
        status: u16,
    },
    /// A request attached to an identical in-flight computation.
    RequestCoalesced {
        /// Tenant id of the attaching (follower) request.
        tenant: String,
        /// The request fingerprint both requests hashed to.
        fingerprint: u64,
    },
    /// The daemon drained: every admitted request completed before exit.
    ServerDrained {
        /// Requests completed over the daemon's lifetime.
        completed: u64,
        /// Requests refused at admission over the daemon's lifetime.
        rejected: u64,
    },
    /// A tenant's rolling error-budget burn rate crossed 1.0: the tenant
    /// is consuming budget faster than the SLO allows. Emitted once per
    /// transition into breach, not per bad request.
    SloBreached {
        /// Tenant bucket the breach is attributed to.
        tenant: String,
        /// The configured latency objective in milliseconds.
        objective_ms: f64,
        /// The burn rate at the moment of breach (≥ 1.0).
        burn_rate: f64,
        /// Good requests in the rolling window at breach time.
        good: u64,
        /// Bad requests (over-objective or rejected) in the window.
        bad: u64,
    },
    /// A benchmark's measured median drifted past the tolerance band of
    /// its committed baseline (`fb-bench --check`). The evidential
    /// trail thereby records *performance* regressions the same way it
    /// records fairness drift — continuous auditability is a latency
    /// property as much as a correctness one.
    BenchRegressed {
        /// The benchmark label (e.g. `kernels/gemv_simd/1000000`).
        label: String,
        /// Committed baseline median, nanoseconds per iteration.
        baseline_ns: f64,
        /// Measured median, nanoseconds per iteration.
        current_ns: f64,
        /// `current_ns / baseline_ns` (> 1 means slower).
        ratio: f64,
        /// The tolerance band the ratio exceeded (fractional, e.g.
        /// 0.25 for ±25%).
        tolerance: f64,
    },
}

impl EventKind {
    /// The stable `"kind"` discriminator used in the JSON rendering.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::Counter { .. } => "counter",
            EventKind::Histogram { .. } => "histogram",
            EventKind::Fairness(f) => f.name(),
        }
    }
}

impl FairnessEvent {
    /// The stable `"kind"` discriminator used in the JSON rendering.
    pub fn name(&self) -> &'static str {
        match self {
            FairnessEvent::AuditStarted { .. } => "audit_started",
            FairnessEvent::SubgroupAuditStarted { .. } => "subgroup_audit_started",
            FairnessEvent::ShardScanned { .. } => "shard_scanned",
            FairnessEvent::PartitionCacheHit { .. } => "partition_cache_hit",
            FairnessEvent::PartitionCacheMiss { .. } => "partition_cache_miss",
            FairnessEvent::WindowClosed { .. } => "window_closed",
            FairnessEvent::DriftFlagged { .. } => "drift_flagged",
            FairnessEvent::MitigationApplied { .. } => "mitigation_applied",
            FairnessEvent::LintCompleted { .. } => "lint_completed",
            FairnessEvent::RequestReceived { .. } => "request_received",
            FairnessEvent::RequestCompleted { .. } => "request_completed",
            FairnessEvent::RequestRejected { .. } => "request_rejected",
            FairnessEvent::RequestCoalesced { .. } => "request_coalesced",
            FairnessEvent::ServerDrained { .. } => "server_drained",
            FairnessEvent::SloBreached { .. } => "slo_breached",
            FairnessEvent::BenchRegressed { .. } => "bench_regressed",
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number, or `null` when not finite (JSON has
/// no NaN/Infinity).
fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

impl Event {
    /// Renders the event as one self-contained JSON object (no trailing
    /// newline). Field order is stable; `u64` fingerprints are rendered
    /// as hex strings so they survive f64-based JSON readers intact.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"t_ns\":{},\"thread\":{},", self.t_ns, self.thread);
        s.push_str("\"span\":");
        push_opt_u64(&mut s, self.span);
        s.push_str(",\"parent\":");
        push_opt_u64(&mut s, self.parent);
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        match &self.kind {
            EventKind::SpanStart { name } => {
                s.push_str(",\"name\":");
                push_str_lit(&mut s, name);
            }
            EventKind::SpanEnd { name, elapsed_ns } => {
                s.push_str(",\"name\":");
                push_str_lit(&mut s, name);
                let _ = write!(s, ",\"elapsed_ns\":{elapsed_ns}");
            }
            EventKind::Counter { name, value } => {
                s.push_str(",\"name\":");
                push_str_lit(&mut s, name);
                let _ = write!(s, ",\"value\":{value}");
            }
            EventKind::Histogram {
                name,
                count,
                sum,
                min,
                max,
            } => {
                s.push_str(",\"name\":");
                push_str_lit(&mut s, name);
                let _ = write!(
                    s,
                    ",\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max}"
                );
            }
            EventKind::Fairness(f) => match f {
                FairnessEvent::AuditStarted {
                    rows,
                    protected,
                    use_labels,
                } => {
                    let _ = write!(s, ",\"rows\":{rows},\"protected\":[");
                    for (i, p) in protected.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        push_str_lit(&mut s, p);
                    }
                    let _ = write!(s, "],\"use_labels\":{use_labels}");
                }
                FairnessEvent::SubgroupAuditStarted {
                    rows,
                    columns,
                    max_depth,
                    min_support,
                } => {
                    let _ = write!(s, ",\"rows\":{rows},\"columns\":[");
                    for (i, c) in columns.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        push_str_lit(&mut s, c);
                    }
                    let _ = write!(
                        s,
                        "],\"max_depth\":{max_depth},\"min_support\":{min_support}"
                    );
                }
                FairnessEvent::ShardScanned {
                    shard,
                    rows,
                    elapsed_ns,
                } => {
                    let _ = write!(
                        s,
                        ",\"shard\":{shard},\"rows\":{rows},\"elapsed_ns\":{elapsed_ns}"
                    );
                }
                FairnessEvent::PartitionCacheHit { fingerprint }
                | FairnessEvent::PartitionCacheMiss { fingerprint } => {
                    let _ = write!(s, ",\"fingerprint\":\"{fingerprint:#018x}\"");
                }
                FairnessEvent::WindowClosed {
                    window,
                    n,
                    parity_gap,
                } => {
                    let _ = write!(s, ",\"window\":{window},\"n\":{n},\"parity_gap\":");
                    push_f64(&mut s, *parity_gap);
                }
                FairnessEvent::DriftFlagged {
                    window,
                    parity_gap,
                    threshold,
                } => {
                    let _ = write!(s, ",\"window\":{window},\"parity_gap\":");
                    push_f64(&mut s, *parity_gap);
                    s.push_str(",\"threshold\":");
                    push_f64(&mut s, *threshold);
                }
                FairnessEvent::MitigationApplied { technique, detail } => {
                    s.push_str(",\"technique\":");
                    push_str_lit(&mut s, technique);
                    s.push_str(",\"detail\":");
                    push_str_lit(&mut s, detail);
                }
                FairnessEvent::LintCompleted {
                    files_scanned,
                    violations,
                    suppressed,
                } => {
                    let _ = write!(
                        s,
                        ",\"files_scanned\":{files_scanned},\"violations\":{violations},\"suppressed\":{suppressed}"
                    );
                }
                FairnessEvent::RequestReceived { tenant, endpoint } => {
                    s.push_str(",\"tenant\":");
                    push_str_lit(&mut s, tenant);
                    s.push_str(",\"endpoint\":");
                    push_str_lit(&mut s, endpoint);
                }
                FairnessEvent::RequestCompleted {
                    tenant,
                    endpoint,
                    status,
                    coalesced,
                    elapsed_ns,
                } => {
                    s.push_str(",\"tenant\":");
                    push_str_lit(&mut s, tenant);
                    s.push_str(",\"endpoint\":");
                    push_str_lit(&mut s, endpoint);
                    let _ = write!(
                        s,
                        ",\"status\":{status},\"coalesced\":{coalesced},\"elapsed_ns\":{elapsed_ns}"
                    );
                }
                FairnessEvent::RequestRejected {
                    tenant,
                    endpoint,
                    status,
                } => {
                    s.push_str(",\"tenant\":");
                    push_str_lit(&mut s, tenant);
                    s.push_str(",\"endpoint\":");
                    push_str_lit(&mut s, endpoint);
                    let _ = write!(s, ",\"status\":{status}");
                }
                FairnessEvent::RequestCoalesced {
                    tenant,
                    fingerprint,
                } => {
                    s.push_str(",\"tenant\":");
                    push_str_lit(&mut s, tenant);
                    let _ = write!(s, ",\"fingerprint\":\"{fingerprint:#018x}\"");
                }
                FairnessEvent::ServerDrained {
                    completed,
                    rejected,
                } => {
                    let _ = write!(s, ",\"completed\":{completed},\"rejected\":{rejected}");
                }
                FairnessEvent::SloBreached {
                    tenant,
                    objective_ms,
                    burn_rate,
                    good,
                    bad,
                } => {
                    s.push_str(",\"tenant\":");
                    push_str_lit(&mut s, tenant);
                    s.push_str(",\"objective_ms\":");
                    push_f64(&mut s, *objective_ms);
                    s.push_str(",\"burn_rate\":");
                    push_f64(&mut s, *burn_rate);
                    let _ = write!(s, ",\"good\":{good},\"bad\":{bad}");
                }
                FairnessEvent::BenchRegressed {
                    label,
                    baseline_ns,
                    current_ns,
                    ratio,
                    tolerance,
                } => {
                    s.push_str(",\"label\":");
                    push_str_lit(&mut s, label);
                    s.push_str(",\"baseline_ns\":");
                    push_f64(&mut s, *baseline_ns);
                    s.push_str(",\"current_ns\":");
                    push_f64(&mut s, *current_ns);
                    s.push_str(",\"ratio\":");
                    push_f64(&mut s, *ratio);
                    s.push_str(",\"tolerance\":");
                    push_f64(&mut s, *tolerance);
                }
            },
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(kind: EventKind) -> Event {
        Event {
            t_ns: 42,
            thread: 1,
            span: Some(3),
            parent: None,
            kind,
        }
    }

    #[test]
    fn json_envelope_and_discriminator() {
        let e = envelope(EventKind::SpanStart {
            name: "engine.audit".into(),
        });
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":42,\"thread\":1,\"span\":3,\"parent\":null,\
             \"kind\":\"span_start\",\"name\":\"engine.audit\"}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = envelope(EventKind::Fairness(FairnessEvent::MitigationApplied {
            technique: "quote\"back\\slash".into(),
            detail: "line\nbreak\ttab\u{1}ctl".into(),
        }));
        let json = e.to_json();
        assert!(json.contains("quote\\\"back\\\\slash"));
        assert!(json.contains("line\\nbreak\\ttab\\u0001ctl"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = envelope(EventKind::Fairness(FairnessEvent::WindowClosed {
            window: 0,
            n: 10,
            parity_gap: f64::NAN,
        }));
        assert!(e.to_json().contains("\"parity_gap\":null"));
    }

    #[test]
    fn fingerprints_render_as_hex_strings() {
        let e = envelope(EventKind::Fairness(FairnessEvent::PartitionCacheHit {
            fingerprint: 0xDEAD_BEEF,
        }));
        assert!(e
            .to_json()
            .contains("\"fingerprint\":\"0x00000000deadbeef\""));
    }

    #[test]
    fn subgroup_audit_started_renders_payload() {
        let e = envelope(EventKind::Fairness(FairnessEvent::SubgroupAuditStarted {
            rows: 8000,
            columns: vec!["gender".into(), "race".into()],
            max_depth: 3,
            min_support: 20,
        }));
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"subgroup_audit_started\""));
        assert!(json.contains("\"rows\":8000"));
        assert!(json.contains("\"columns\":[\"gender\",\"race\"]"));
        assert!(json.contains("\"max_depth\":3,\"min_support\":20"));
    }

    #[test]
    fn serve_events_render_payloads() {
        let e = envelope(EventKind::Fairness(FairnessEvent::RequestCompleted {
            tenant: "bank-a".into(),
            endpoint: "/audit".into(),
            status: 200,
            coalesced: true,
            elapsed_ns: 1234,
        }));
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"request_completed\""));
        assert!(json.contains("\"tenant\":\"bank-a\",\"endpoint\":\"/audit\""));
        assert!(json.contains("\"status\":200,\"coalesced\":true,\"elapsed_ns\":1234"));

        let e = envelope(EventKind::Fairness(FairnessEvent::RequestCoalesced {
            tenant: "bank-b".into(),
            fingerprint: 0xDEAD_BEEF,
        }));
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"request_coalesced\""));
        assert!(json.contains("\"fingerprint\":\"0x00000000deadbeef\""));

        let e = envelope(EventKind::Fairness(FairnessEvent::RequestRejected {
            tenant: "anonymous".into(),
            endpoint: "/mitigate".into(),
            status: 429,
        }));
        assert!(e.to_json().contains("\"status\":429"));

        let e = envelope(EventKind::Fairness(FairnessEvent::ServerDrained {
            completed: 7,
            rejected: 2,
        }));
        assert!(e.to_json().contains("\"completed\":7,\"rejected\":2"));

        let e = envelope(EventKind::Fairness(FairnessEvent::RequestReceived {
            tenant: "bank-a".into(),
            endpoint: "/audit".into(),
        }));
        assert!(e.to_json().contains("\"kind\":\"request_received\""));

        let e = envelope(EventKind::Fairness(FairnessEvent::SloBreached {
            tenant: "bank-a".into(),
            objective_ms: 250.0,
            burn_rate: 2.5,
            good: 90,
            bad: 10,
        }));
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"slo_breached\""));
        assert!(json.contains("\"tenant\":\"bank-a\""));
        assert!(json.contains("\"objective_ms\":250"));
        assert!(json.contains("\"burn_rate\":2.5"));
        assert!(json.contains("\"good\":90,\"bad\":10"));

        let e = envelope(EventKind::Fairness(FairnessEvent::BenchRegressed {
            label: "kernels/gemv_simd/1000000".into(),
            baseline_ns: 1000.0,
            current_ns: 1500.0,
            ratio: 1.5,
            tolerance: 0.25,
        }));
        let json = e.to_json();
        assert!(json.contains("\"kind\":\"bench_regressed\""));
        assert!(json.contains("\"label\":\"kernels/gemv_simd/1000000\""));
        assert!(json.contains("\"baseline_ns\":1000"));
        assert!(json.contains("\"current_ns\":1500"));
        assert!(json.contains("\"ratio\":1.5"));
        assert!(json.contains("\"tolerance\":0.25"));
    }

    #[test]
    fn every_kind_has_a_stable_name() {
        let kinds = [
            EventKind::SpanStart { name: "s".into() }.name(),
            EventKind::SpanEnd {
                name: "s".into(),
                elapsed_ns: 1,
            }
            .name(),
            EventKind::Counter {
                name: "c".into(),
                value: 1,
            }
            .name(),
            EventKind::Fairness(FairnessEvent::DriftFlagged {
                window: 1,
                parity_gap: 0.2,
                threshold: 0.1,
            })
            .name(),
        ];
        assert_eq!(
            kinds,
            ["span_start", "span_end", "counter", "drift_flagged"]
        );
    }
}
