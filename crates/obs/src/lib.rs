//! # fairbridge-obs
//!
//! Zero-dependency telemetry for the fairbridge stack: lightweight RAII
//! **spans**, atomic **counters/histograms**, pluggable **sinks**, and a
//! typed vocabulary of **fairness events**.
//!
//! The motivation is Wachter et al.'s observation (see PAPERS.md) that
//! legal review of an automated decision system needs an *evidential
//! trail*: not just a disparity figure, but a replayable record of how
//! it was produced — which data was scanned, what the cache served, when
//! each monitoring window closed, and exactly when the drift alarm went
//! off. [`FairnessEvent`] is that record; the JSON-lines rendering
//! ([`Event::to_json`], parsed back by [`json`]) is its durable form.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Every recording entry point on
//!    [`Telemetry`] checks one flag first. A disabled handle performs no
//!    clock reads, no allocation and no event construction, so the
//!    engine's instrumentation stays compiled in unconditionally.
//! 2. **No dependencies.** JSON is written and parsed in-tree; sinks use
//!    only `std`.
//! 3. **Thread-friendly.** Handles are `Arc` clones; counters are single
//!    relaxed atomics; the ring sink's write path is an atomic cursor
//!    plus a per-slot lock, so shard workers never serialize behind one
//!    global mutex.
//!
//! ```
//! use fairbridge_obs::{FairnessEvent, RingSink, Telemetry};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingSink::with_capacity(128));
//! let telemetry = Telemetry::new(ring.clone());
//! {
//!     let _audit = telemetry.span("engine.audit");
//!     telemetry.emit(FairnessEvent::AuditStarted {
//!         rows: 1000,
//!         protected: vec!["sex".into()],
//!         use_labels: true,
//!     });
//!     telemetry.counter("rows_scanned").add(1000);
//! }
//! telemetry.flush();
//! assert!(ring.events().len() >= 3); // start, audit_started, end, counter
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod registry;
pub mod sink;
pub mod span;
pub mod telemetry;

pub use event::{Event, EventKind, FairnessEvent};
pub use registry::{BucketCount, Counter, Histogram, HistogramStats, SUBBUCKETS};
pub use sink::{JsonlSink, NoopSink, RingSink, Sink};
pub use span::SpanGuard;
pub use telemetry::Telemetry;
