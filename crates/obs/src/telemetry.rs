//! The [`Telemetry`] handle: the one object instrumented code holds.
//!
//! A `Telemetry` is a cheap `Arc` clone — engines, pipelines, monitors
//! and worker threads all share one. It is either *enabled* (events flow
//! to the configured [`Sink`]) or *disabled* ([`Telemetry::off`]), and
//! every recording entry point checks that flag first, so a disabled
//! handle costs one branch: no clock reads, no allocation, no event
//! construction. That invariant is what lets the engine keep its
//! instrumentation compiled in unconditionally.

use crate::event::{Event, EventKind, FairnessEvent};
use crate::registry::{Counter, Histogram, HistogramStats, Registry};
use crate::sink::{NoopSink, Sink};
use crate::span::{current_span, thread_id, SpanGuard};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    enabled: bool,
    sink: Arc<dyn Sink>,
    origin: Instant,
    next_span: AtomicU64,
    emitted: AtomicU64,
    registry: Registry,
}

/// A shared handle to one telemetry pipeline (sink + registry + clock).
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    /// The default telemetry is disabled ([`Telemetry::off`]).
    fn default() -> Self {
        Telemetry::off()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.enabled)
            .field("events_emitted", &self.events_emitted())
            .finish()
    }
}

impl Telemetry {
    /// An enabled telemetry writing to `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: true,
                sink,
                origin: Instant::now(),
                next_span: AtomicU64::new(0),
                emitted: AtomicU64::new(0),
                registry: Registry::default(),
            }),
        }
    }

    /// A disabled telemetry: every recording entry point returns after
    /// one branch and nothing is ever emitted.
    pub fn off() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: false,
                sink: Arc::new(NoopSink),
                origin: Instant::now(),
                next_span: AtomicU64::new(0),
                emitted: AtomicU64::new(0),
                registry: Registry::default(),
            }),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// How many events this handle has emitted to its sink.
    pub fn events_emitted(&self) -> u64 {
        // Events are published through the sink, not this counter.
        // ORDER: Relaxed — advisory tally.
        self.inner.emitted.load(Ordering::Relaxed)
    }

    /// Monotonic nanoseconds since this telemetry was created.
    pub fn now_ns(&self) -> u64 {
        self.inner
            .origin
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Opens a span; dropping the guard closes it. The name closure runs
    /// only when enabled, so callers can format freely.
    pub fn span<N: Into<String>>(&self, name: N) -> SpanGuard {
        if !self.inner.enabled {
            return SpanGuard::inert();
        }
        // ORDER: Relaxed — span ids only need to be unique.
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        SpanGuard::open(self.clone(), id, name.into())
    }

    /// Opens a span under an explicit parent id instead of the calling
    /// thread's innermost span — the cross-thread attribution hook for
    /// worker threads executing on behalf of another thread's request.
    /// The guard still pushes onto the calling thread's stack, so spans
    /// opened inside it nest under it normally.
    pub fn span_in<N: Into<String>>(&self, name: N, parent: Option<u64>) -> SpanGuard {
        if !self.inner.enabled {
            return SpanGuard::inert();
        }
        // ORDER: Relaxed — span ids only need to be unique.
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        SpanGuard::open_with_parent(self.clone(), id, name.into(), parent)
    }

    /// Records an already-elapsed interval as a closed span under
    /// `parent`: emits a `span_start` stamped at `start_ns` and a
    /// matching `span_end` stamped at `end_ns`. This is how a worker
    /// makes *waiting* visible after the fact — queue residency is only
    /// known once the job is popped, so the span is reconstructed
    /// retroactively with honest timestamps rather than measured live.
    pub fn record_span(&self, name: &str, parent: Option<u64>, start_ns: u64, end_ns: u64) {
        if !self.inner.enabled {
            return;
        }
        // ORDER: Relaxed — span ids only need to be unique.
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        let end_ns = end_ns.max(start_ns);
        self.emit_raw_at(
            start_ns,
            Some(id),
            parent,
            EventKind::SpanStart {
                name: name.to_owned(),
            },
        );
        self.emit_raw_at(
            end_ns,
            Some(id),
            parent,
            EventKind::SpanEnd {
                name: name.to_owned(),
                elapsed_ns: end_ns - start_ns,
            },
        );
    }

    /// Emits a typed fairness event in the calling thread's current span
    /// context.
    pub fn emit(&self, event: FairnessEvent) {
        if !self.inner.enabled {
            return;
        }
        self.emit_raw(current_span(), None, EventKind::Fairness(event));
    }

    /// Emits a typed fairness event attributed to an explicit span (for
    /// worker threads reporting into a coordinator's span).
    pub fn emit_in_span(&self, span: Option<u64>, event: FairnessEvent) {
        if !self.inner.enabled {
            return;
        }
        self.emit_raw(span, None, EventKind::Fairness(event));
    }

    /// Assembles the envelope and hands the event to the sink.
    pub(crate) fn emit_raw(&self, span: Option<u64>, parent: Option<u64>, kind: EventKind) {
        self.emit_raw_at(self.now_ns(), span, parent, kind);
    }

    /// Like [`emit_raw`](Self::emit_raw) but with an explicit timestamp
    /// (for retroactively recorded spans).
    fn emit_raw_at(&self, t_ns: u64, span: Option<u64>, parent: Option<u64>, kind: EventKind) {
        if !self.inner.enabled {
            return;
        }
        let event = Event {
            t_ns,
            thread: thread_id(),
            span,
            parent,
            kind,
        };
        // The sink does its own synchronization when publishing.
        // ORDER: Relaxed — advisory tally.
        self.inner.emitted.fetch_add(1, Ordering::Relaxed);
        self.inner.sink.emit(&event);
    }

    /// A named monotonic counter (a disabled handle when telemetry is
    /// off).
    pub fn counter(&self, name: &str) -> Counter {
        if !self.inner.enabled {
            return Counter::disabled();
        }
        self.inner.registry.counter(name)
    }

    /// A named histogram (a disabled handle when telemetry is off).
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.inner.enabled {
            return Histogram::disabled();
        }
        self.inner.registry.histogram(name)
    }

    /// The current counter values, name-sorted.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner.registry.counter_values()
    }

    /// The current histogram summaries, name-sorted.
    pub fn histogram_values(&self) -> Vec<(String, HistogramStats)> {
        self.inner.registry.histogram_values()
    }

    /// Live handles to every registered histogram, name-sorted — the
    /// exposition path ([`quantile`](Histogram::quantile) and bucket
    /// dumps need the cells, not just the summaries).
    pub fn histogram_handles(&self) -> Vec<(String, Histogram)> {
        self.inner.registry.histogram_handles()
    }

    /// Emits one `counter`/`histogram` summary event per registered
    /// instrument, then flushes the sink. Call at the end of a run so
    /// the JSONL trail closes with the aggregate picture.
    pub fn flush(&self) {
        if self.inner.enabled {
            for (name, value) in self.counter_values() {
                self.emit_raw(None, None, EventKind::Counter { name, value });
            }
            for (name, stats) in self.histogram_values() {
                self.emit_raw(
                    None,
                    None,
                    EventKind::Histogram {
                        name,
                        count: stats.count,
                        sum: stats.sum,
                        min: stats.min,
                        max: stats.max,
                    },
                );
            }
        }
        self.inner.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn recording() -> (Telemetry, Arc<RingSink>) {
        let ring = Arc::new(RingSink::with_capacity(256));
        (Telemetry::new(Arc::clone(&ring) as Arc<dyn Sink>), ring)
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let (telemetry, ring) = recording();
        {
            let outer = telemetry.span("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = telemetry.span("inner");
                assert_ne!(inner.id(), outer.id());
            }
            let _sibling = telemetry.span("sibling");
            assert_eq!(current_span(), _sibling.id());
            let _ = outer_id;
        }
        let events = ring.events();
        // outer start, inner start, inner end, sibling start, sibling
        // end, outer end
        assert_eq!(events.len(), 6);
        let starts: Vec<(&str, Option<u64>, Option<u64>)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanStart { name } => Some((name.as_str(), e.span, e.parent)),
                _ => None,
            })
            .collect();
        let outer_id = starts[0].1;
        assert_eq!(starts[0], ("outer", outer_id, None));
        assert_eq!(starts[1].0, "inner");
        assert_eq!(starts[1].2, outer_id, "inner's parent is outer");
        assert_eq!(starts[2].0, "sibling");
        assert_eq!(starts[2].2, outer_id, "sibling's parent is outer");
        // every start is matched by an end carrying the same span id
        for (name, id, _) in &starts {
            assert!(events.iter().any(|e| matches!(
                &e.kind,
                EventKind::SpanEnd { name: n, .. } if n == name
            ) && e.span == *id));
        }
        assert_eq!(current_span(), None, "stack is empty after drops");
    }

    #[test]
    fn span_end_measures_elapsed_time() {
        let (telemetry, ring) = recording();
        {
            let _s = telemetry.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let events = ring.events();
        let elapsed = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::SpanEnd { elapsed_ns, .. } => Some(*elapsed_ns),
                _ => None,
            })
            .unwrap();
        assert!(elapsed >= 4_000_000, "elapsed {elapsed}ns");
    }

    #[test]
    fn disabled_telemetry_emits_nothing_and_hands_out_inert_guards() {
        let telemetry = Telemetry::off();
        {
            let guard = telemetry.span("ignored");
            assert!(!guard.is_recording());
            telemetry.emit(FairnessEvent::PartitionCacheHit { fingerprint: 1 });
            telemetry.counter("c").incr();
            telemetry.histogram("h").record(9);
        }
        telemetry.flush();
        assert_eq!(telemetry.events_emitted(), 0);
        assert!(telemetry.counter_values().is_empty());
        assert!(telemetry.histogram_values().is_empty());
    }

    #[test]
    fn flush_emits_instrument_summaries() {
        let (telemetry, ring) = recording();
        telemetry.counter("widgets").add(3);
        telemetry.histogram("ns").record(100);
        telemetry.flush();
        let events = ring.events();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Counter { name, value: 3 } if name == "widgets"
        )));
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Histogram { name, count: 1, sum: 100, .. } if name == "ns"
        )));
    }

    #[test]
    fn span_in_parents_across_threads_and_nests_locally() {
        let (telemetry, ring) = recording();
        let root = telemetry.span("serve.request");
        let root_id = root.id();
        std::thread::scope(|scope| {
            let t = telemetry.clone();
            scope.spawn(move || {
                let exec = t.span_in("serve.execute", root_id);
                let exec_id = exec.id();
                let _child = t.span("engine.audit");
                drop(exec);
                let _ = exec_id;
            });
        });
        drop(root);
        let events = ring.events();
        let starts: Vec<(&str, Option<u64>, Option<u64>)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanStart { name } => Some((name.as_str(), e.span, e.parent)),
                _ => None,
            })
            .collect();
        let exec = starts.iter().find(|s| s.0 == "serve.execute").unwrap();
        assert_eq!(exec.2, root_id, "execute parents to the request span");
        let audit = starts.iter().find(|s| s.0 == "engine.audit").unwrap();
        assert_eq!(
            audit.2, exec.1,
            "a span opened inside span_in nests under it"
        );
    }

    #[test]
    fn record_span_emits_a_closed_span_with_explicit_timestamps() {
        let (telemetry, ring) = recording();
        telemetry.record_span("serve.queue_wait", Some(7), 1_000, 5_000);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_ns, 1_000);
        assert_eq!(events[0].parent, Some(7));
        assert!(matches!(
            &events[0].kind,
            EventKind::SpanStart { name } if name == "serve.queue_wait"
        ));
        assert_eq!(events[1].t_ns, 5_000);
        assert_eq!(events[1].span, events[0].span);
        assert!(matches!(
            &events[1].kind,
            EventKind::SpanEnd { name, elapsed_ns: 4_000 } if name == "serve.queue_wait"
        ));
        // A clock glitch (end before start) clamps instead of wrapping.
        telemetry.record_span("glitch", None, 10, 3);
        let events = ring.events();
        assert!(matches!(
            &events[3].kind,
            EventKind::SpanEnd { elapsed_ns: 0, .. }
        ));
    }

    #[test]
    fn histogram_handles_expose_live_cells() {
        let (telemetry, _ring) = recording();
        telemetry.histogram("ns").record(100);
        let handles = telemetry.histogram_handles();
        assert_eq!(handles.len(), 1);
        assert_eq!(handles[0].0, "ns");
        assert_eq!(handles[0].1.snapshot().count, 1);
        telemetry.histogram("ns").record(200);
        assert_eq!(handles[0].1.snapshot().count, 2, "handle shares the cell");
    }

    #[test]
    fn events_from_worker_threads_carry_their_thread_id() {
        let (telemetry, ring) = recording();
        let main_thread = thread_id();
        std::thread::scope(|scope| {
            let t = telemetry.clone();
            scope.spawn(move || {
                t.emit(FairnessEvent::ShardScanned {
                    shard: 0,
                    rows: 10,
                    elapsed_ns: 1,
                });
            });
        });
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_ne!(events[0].thread, main_thread);
    }
}
