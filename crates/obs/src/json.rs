//! A minimal JSON reader for validating emitted telemetry trails.
//!
//! The sinks *write* JSON by hand ([`Event::to_json`]); this module is
//! the matching read side, so tests, the `--check-telemetry` verifier
//! and downstream tooling can confirm a trail is well-formed without any
//! external dependency. It is a straightforward recursive-descent parser
//! over the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); numbers are read as `f64`.
//!
//! [`Event::to_json`]: crate::event::Event::to_json

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Parses a JSON-lines document: one value per non-empty line.
pub fn parse_lines(input: &str) -> Result<Vec<Value>, String> {
    input
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect_byte(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_owned())?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err("unterminated string".to_owned()),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        let s = std::str::from_utf8(digits).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{s}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a":1,"b":[true,null,-2.5e2],"c":"x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let arr = v.get("b").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_f64(), Some(-250.0));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\nAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA\u{e9}"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "nul", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_an_event() {
        use crate::event::{Event, EventKind, FairnessEvent};
        let e = Event {
            t_ns: 7,
            thread: 0,
            span: None,
            parent: None,
            kind: EventKind::Fairness(FairnessEvent::AuditStarted {
                rows: 100,
                protected: vec!["sex".into(), "age band".into()],
                use_labels: true,
            }),
        };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("audit_started"));
        assert_eq!(v.get("rows").and_then(Value::as_u64), Some(100));
        assert_eq!(v.get("span"), Some(&Value::Null));
        let protected = v.get("protected").and_then(Value::as_arr).unwrap();
        assert_eq!(protected[1].as_str(), Some("age band"));
    }

    #[test]
    fn parse_lines_skips_blank_lines_and_reports_position() {
        let lines = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(lines.len(), 2);
        let err = parse_lines("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }
}
