//! Randomized property tests for the mitigation algorithms, driven by
//! the workspace's deterministic PRNG (no proptest: the build is offline).

use fairbridge_mitigate::ot::QuantileRepairer;
use fairbridge_mitigate::reweigh::reweigh;
use fairbridge_mitigate::threshold::{GroupThresholds, ThresholdObjective};
use fairbridge_stats::rng::{Rng, StdRng};
use fairbridge_tabular::{Dataset, Role};

const CASES: usize = 32;

fn dataset_with_groups<R: Rng>(rng: &mut R) -> Dataset {
    let n = rng.gen_range(4..80usize);
    let mut codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2usize) as u32).collect();
    let mut labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    // Guarantee every (group, label) cell is populated — reweighing
    // can only redistribute mass over cells that exist; structurally
    // empty cells make exact independence unattainable.
    codes[0] = 0;
    labels[0] = true;
    codes[1] = 0;
    labels[1] = false;
    codes[2] = 1;
    labels[2] = true;
    codes[3] = 1;
    labels[3] = false;
    Dataset::builder()
        .categorical_with_role("g", vec!["a", "b"], codes, Role::Protected)
        .boolean_with_role("y", labels, Role::Label)
        .build()
        .unwrap()
}

/// Reweighing always renders the weighted joint independent and
/// preserves total weight mass.
#[test]
fn reweigh_independence() {
    let mut rng = StdRng::seed_from_u64(0x4D_01);
    for _ in 0..CASES {
        let ds = dataset_with_groups(&mut rng);
        let result = reweigh(&ds, &["g"]).unwrap();
        let out = &result.dataset;
        let w = out.weights();
        let labels = out.labels().unwrap();
        let (_, codes) = out.categorical("g").unwrap();
        let total: f64 = w.iter().sum();
        assert!((total - ds.n_rows() as f64).abs() < 1e-6);
        for a in 0..2u32 {
            for y in [false, true] {
                let p_ay: f64 = w
                    .iter()
                    .zip(codes)
                    .zip(labels)
                    .filter(|((_, &c), &l)| c == a && l == y)
                    .map(|((wi, _), _)| wi)
                    .sum::<f64>()
                    / total;
                let p_a: f64 = w
                    .iter()
                    .zip(codes)
                    .filter(|(_, &c)| c == a)
                    .map(|(wi, _)| wi)
                    .sum::<f64>()
                    / total;
                let p_y: f64 = w
                    .iter()
                    .zip(labels)
                    .filter(|(_, &l)| l == y)
                    .map(|(wi, _)| wi)
                    .sum::<f64>()
                    / total;
                assert!(
                    (p_ay - p_a * p_y).abs() < 1e-9,
                    "a={a} y={y}: joint {p_ay} vs product {}",
                    p_a * p_y
                );
            }
        }
    }
}

/// Quantile repair at λ=0 is the identity; λ=1 output depends only on
/// the within-group rank; the map is monotone within each group.
#[test]
fn quantile_repair_properties() {
    let mut rng = StdRng::seed_from_u64(0x4D_02);
    for seed in 0..CASES {
        let n = rng.gen_range(4..60usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let codes: Vec<u32> = (0..values.len()).map(|i| ((i + seed) % 2) as u32).collect();
        let repairer = QuantileRepairer::fit(&values, &codes, 2).unwrap();
        // identity at λ=0
        let same = repairer.repair_all(&values, &codes, 0.0);
        assert_eq!(&same, &values);
        // monotone within group at λ=1
        let repaired = repairer.repair_all(&values, &codes, 1.0);
        for g in 0..2u32 {
            let mut pairs: Vec<(f64, f64)> = values
                .iter()
                .zip(&repaired)
                .zip(&codes)
                .filter_map(|((&v, &r), &c)| (c == g).then_some((v, r)))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in pairs.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9);
            }
        }
        // λ interpolates linearly between the endpoints
        let half = repairer.repair_all(&values, &codes, 0.5);
        for ((&v, &h), &f) in values.iter().zip(&half).zip(&repaired) {
            assert!((h - 0.5 * (v + f)).abs() < 1e-9);
        }
    }
}

/// Repaired values stay inside the convex hull of original values.
#[test]
fn quantile_repair_stays_in_hull() {
    let mut rng = StdRng::seed_from_u64(0x4D_03);
    for _ in 0..CASES {
        let n = rng.gen_range(4..40usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let codes: Vec<u32> = (0..values.len()).map(|i| (i % 2) as u32).collect();
        let repairer = QuantileRepairer::fit(&values, &codes, 2).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for lambda in [0.25, 0.75, 1.0] {
            for r in repairer.repair_all(&values, &codes, lambda) {
                assert!(r >= lo - 1e-9 && r <= hi + 1e-9, "{r} outside [{lo},{hi}]");
            }
        }
    }
}

/// Demographic-parity thresholds bring every group's selection rate
/// within one candidate of the target.
#[test]
fn thresholds_hit_target_rate() {
    let mut rng = StdRng::seed_from_u64(0x4D_04);
    for _ in 0..CASES {
        let ds = dataset_with_groups(&mut rng);
        let raw_scores: Vec<f64> = (0..80).map(|_| rng.gen_range(0.0..1.0)).collect();
        let scores: Vec<f64> = (0..ds.n_rows())
            .map(|i| raw_scores[i % raw_scores.len()])
            .collect();
        let gt = GroupThresholds::fit(&ds, &["g"], &scores, ThresholdObjective::DemographicParity)
            .unwrap();
        let preds = gt.apply(&ds, &["g"], &scores).unwrap();
        let (_, codes) = ds.categorical("g").unwrap();
        for g in 0..2u32 {
            let members: Vec<bool> = preds
                .iter()
                .zip(codes)
                .filter_map(|(&p, &c)| (c == g).then_some(p))
                .collect();
            let rate = members.iter().filter(|&&p| p).count() as f64 / members.len() as f64;
            // within one quantum of the target
            assert!(
                (rate - gt.target_rate).abs() <= 1.0 / members.len() as f64 + 1e-9,
                "group {g} rate {rate} target {}",
                gt.target_rate
            );
        }
    }
}
