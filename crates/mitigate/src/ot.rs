//! Optimal-transport feature repair toward the group barycenter
//! (Feldman-style "total repair"; paper Section IV.F's Wasserstein
//! machinery put to constructive use).
//!
//! Each group's feature distribution is pushed onto the Wasserstein
//! barycenter of all groups via its quantile map — after full repair the
//! feature carries no group information, so no downstream model can use
//! it as a proxy. `lambda` interpolates between no repair (0) and total
//! repair (1), trading residual disparate impact against feature fidelity
//! (the "partial repair" knob).

use fairbridge_stats::descriptive::quantile_sorted;
use fairbridge_stats::distribution::Discrete;
use fairbridge_stats::sinkhorn::par_sinkhorn;
use fairbridge_tabular::{Column, Dataset, Role};

/// Per-group sorted views used by the repair maps.
#[derive(Debug, Clone)]
pub struct QuantileRepairer {
    /// Sorted feature values per group.
    group_sorted: Vec<Vec<f64>>,
    /// Group weights (proportional to size) used for the barycenter.
    weights: Vec<f64>,
}

impl QuantileRepairer {
    /// Fits the repairer from raw values and group codes (codes must be
    /// `< n_groups`; every group must be non-empty).
    pub fn fit(
        values: &[f64],
        group_codes: &[u32],
        n_groups: usize,
    ) -> Result<QuantileRepairer, String> {
        if values.len() != group_codes.len() {
            return Err("values and group codes differ in length".to_owned());
        }
        if n_groups == 0 {
            return Err("need at least one group".to_owned());
        }
        let mut group_sorted: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
        for (&v, &g) in values.iter().zip(group_codes) {
            let g = g as usize;
            if g >= n_groups {
                return Err(format!("group code {g} out of range"));
            }
            if v.is_nan() {
                return Err("values must not contain NaN".to_owned());
            }
            group_sorted[g].push(v);
        }
        if group_sorted.iter().any(Vec::is_empty) {
            return Err("every group must be non-empty".to_owned());
        }
        for g in &mut group_sorted {
            g.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        }
        let total: f64 = values.len() as f64;
        let weights = group_sorted
            .iter()
            .map(|g| g.len() as f64 / total)
            .collect();
        Ok(QuantileRepairer {
            group_sorted,
            weights,
        })
    }

    /// The barycenter quantile at level `t`: the weight-averaged group
    /// quantile (the 1-D Wasserstein barycenter's quantile function).
    pub fn barycenter_quantile(&self, t: f64) -> f64 {
        self.group_sorted
            .iter()
            .zip(&self.weights)
            .map(|(g, &w)| w * quantile_sorted(g, t))
            .sum()
    }

    /// The quantile level of `v` within group `g` (mid-point convention).
    fn level_within_group(&self, g: usize, v: f64) -> f64 {
        let sorted = &self.group_sorted[g];
        let below = sorted.partition_point(|&s| s < v);
        let not_above = sorted.partition_point(|&s| s <= v);
        // mid-rank of the value's ties, mapped to (0,1)
        ((below + not_above) as f64 / 2.0) / sorted.len() as f64
    }

    /// Repairs one value from group `g` at strength `lambda` ∈ \[0,1\].
    pub fn repair_value(&self, g: usize, v: f64, lambda: f64) -> f64 {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        let t = self.level_within_group(g, v).clamp(0.0, 1.0);
        let target = self.barycenter_quantile(t);
        (1.0 - lambda) * v + lambda * target
    }

    /// Repairs a full value column.
    pub fn repair_all(&self, values: &[f64], group_codes: &[u32], lambda: f64) -> Vec<f64> {
        values
            .iter()
            .zip(group_codes)
            .map(|(&v, &g)| self.repair_value(g as usize, v, lambda))
            .collect()
    }
}

/// A categorical repair recipe derived from an entropic transport plan:
/// for each source level, the conditional distribution over target
/// levels a repaired value should be drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalRepairPlan {
    /// Row-stochastic transition rows, `source.k() × target.k()`
    /// row-major. Rows of source levels carrying no mass (or unreachable
    /// under the cost) are all-zero.
    pub transitions: Vec<f64>,
    /// Number of target levels per row.
    pub n_targets: usize,
    /// The entropic transport cost of the underlying plan.
    pub cost: f64,
    /// Whether the Sinkhorn solve converged.
    pub converged: bool,
}

impl CategoricalRepairPlan {
    /// The repair distribution over target levels for `source_level`.
    pub fn row(&self, source_level: usize) -> &[f64] {
        &self.transitions[source_level * self.n_targets..(source_level + 1) * self.n_targets]
    }
}

/// Fits a categorical repair plan moving a group's level distribution
/// onto a target (e.g. barycenter or population) distribution under an
/// explicit level-to-level cost, via the deterministic parallel Sinkhorn
/// kernel. The ε knob plays the role `lambda` plays for numeric repair:
/// larger ε spreads each level across more targets (softer repair),
/// smaller ε approaches the exact OT rounding.
pub fn entropic_repair_plan(
    source: &Discrete,
    target: &Discrete,
    cost: &[f64],
    epsilon: f64,
    workers: usize,
) -> Result<CategoricalRepairPlan, String> {
    let result = par_sinkhorn(source, target, cost, epsilon, 5000, workers)?;
    let m = target.k();
    let mut transitions = result.plan;
    for i in 0..source.k() {
        let row = &mut transitions[i * m..(i + 1) * m];
        let mass: f64 = row.iter().sum();
        if mass > 0.0 {
            for x in row.iter_mut() {
                *x /= mass;
            }
        }
    }
    Ok(CategoricalRepairPlan {
        transitions,
        n_targets: m,
        cost: result.cost,
        converged: result.converged,
    })
}

/// Repairs the named numeric feature columns of a dataset toward the
/// barycenter over the groups of `protected`, returning a new dataset.
pub fn repair_dataset(
    ds: &Dataset,
    protected: &str,
    features: &[&str],
    lambda: f64,
) -> Result<Dataset, String> {
    let (levels, codes) = ds.categorical(protected).map_err(|e| e.to_string())?;
    let n_groups = levels.len();
    let codes = codes.to_vec();
    let mut out = ds.clone();
    for fname in features {
        let values = ds.numeric(fname).map_err(|e| e.to_string())?;
        let repairer = QuantileRepairer::fit(values, &codes, n_groups)?;
        let repaired = repairer.repair_all(values, &codes, lambda);
        let role = ds.schema().field(fname).map_err(|e| e.to_string())?.role;
        out = out
            .drop_column(fname)
            .and_then(|d| d.with_column(fname, Column::Numeric(repaired), role))
            .map_err(|e| e.to_string())?;
    }
    let _ = Role::Feature; // role preserved above
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_stats::distribution::Empirical;
    use fairbridge_stats::wasserstein_1d;
    use fairbridge_tabular::Role;

    /// Group 0 ~ grid on \[0,1\], group 1 ~ grid on \[2,3\]: disjoint.
    fn shifted() -> (Vec<f64>, Vec<u32>) {
        let mut values = Vec::new();
        let mut codes = Vec::new();
        for i in 0..100 {
            values.push(i as f64 / 100.0);
            codes.push(0);
            values.push(2.0 + i as f64 / 100.0);
            codes.push(1);
        }
        (values, codes)
    }

    fn group_w1(values: &[f64], codes: &[u32]) -> f64 {
        let g0: Vec<f64> = values
            .iter()
            .zip(codes)
            .filter_map(|(&v, &c)| (c == 0).then_some(v))
            .collect();
        let g1: Vec<f64> = values
            .iter()
            .zip(codes)
            .filter_map(|(&v, &c)| (c == 1).then_some(v))
            .collect();
        wasserstein_1d(&Empirical::new(g0).unwrap(), &Empirical::new(g1).unwrap())
    }

    #[test]
    fn total_repair_collapses_group_gap() {
        let (values, codes) = shifted();
        assert!((group_w1(&values, &codes) - 2.0).abs() < 0.01);
        let repairer = QuantileRepairer::fit(&values, &codes, 2).unwrap();
        let repaired = repairer.repair_all(&values, &codes, 1.0);
        assert!(
            group_w1(&repaired, &codes) < 0.03,
            "{}",
            group_w1(&repaired, &codes)
        );
    }

    #[test]
    fn partial_repair_interpolates_linearly() {
        let (values, codes) = shifted();
        let repairer = QuantileRepairer::fit(&values, &codes, 2).unwrap();
        let w_half = group_w1(&repairer.repair_all(&values, &codes, 0.5), &codes);
        let w_full = group_w1(&repairer.repair_all(&values, &codes, 1.0), &codes);
        let w_none = group_w1(&repairer.repair_all(&values, &codes, 0.0), &codes);
        assert!((w_none - 2.0).abs() < 0.01);
        assert!((w_half - 1.0).abs() < 0.05, "half repair W1 = {w_half}");
        assert!(w_full < 0.03);
    }

    #[test]
    fn repair_preserves_within_group_order() {
        let (values, codes) = shifted();
        let repairer = QuantileRepairer::fit(&values, &codes, 2).unwrap();
        let repaired = repairer.repair_all(&values, &codes, 1.0);
        // within each group, the map is monotone
        for c in 0..2u32 {
            let mut pairs: Vec<(f64, f64)> = values
                .iter()
                .zip(&repaired)
                .zip(&codes)
                .filter_map(|((&v, &r), &g)| (g == c).then_some((v, r)))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in pairs.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12);
            }
        }
    }

    #[test]
    fn barycenter_is_weighted_middle() {
        let (values, codes) = shifted();
        let repairer = QuantileRepairer::fit(&values, &codes, 2).unwrap();
        // equal-sized groups on [0,1] and [2,3] → barycenter ≈ [1,2]
        let med = repairer.barycenter_quantile(0.5);
        assert!((med - 1.5).abs() < 0.03, "median {med}");
    }

    #[test]
    fn repair_dataset_rewrites_feature() {
        let (values, codes) = shifted();
        let ds = Dataset::builder()
            .categorical_with_role("g", vec!["a", "b"], codes.clone(), Role::Protected)
            .numeric("score", values.clone())
            .boolean_with_role("y", vec![true; values.len()], Role::Label)
            .build()
            .unwrap();
        let repaired = repair_dataset(&ds, "g", &["score"], 1.0).unwrap();
        let new_vals = repaired.numeric("score").unwrap();
        assert!(group_w1(new_vals, &codes) < 0.03);
        // schema preserved
        assert_eq!(repaired.n_cols(), ds.n_cols());
        assert_eq!(
            repaired.schema().field("score").unwrap().role,
            Role::Feature
        );
    }

    #[test]
    fn entropic_plan_rows_are_distributions() {
        use fairbridge_stats::sinkhorn::ordinal_cost;
        let source = Discrete::new(vec![0.6, 0.3, 0.1]).unwrap();
        let target = Discrete::new(vec![0.2, 0.3, 0.5]).unwrap();
        let plan = entropic_repair_plan(&source, &target, &ordinal_cost(3, 3), 0.05, 1).unwrap();
        assert!(plan.converged);
        for i in 0..3 {
            let sum: f64 = plan.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(plan.row(i).iter().all(|&x| x >= 0.0));
        }
        // Moving mass rightward: level 0 must send some mass to higher
        // levels since the target is right-heavy.
        assert!(plan.row(0)[1] + plan.row(0)[2] > 0.1);
    }

    #[test]
    fn entropic_plan_on_identical_distributions_is_near_identity() {
        use fairbridge_stats::sinkhorn::ordinal_cost;
        let p = Discrete::new(vec![0.25, 0.5, 0.25]).unwrap();
        let plan = entropic_repair_plan(&p, &p, &ordinal_cost(3, 3), 0.01, 2).unwrap();
        for i in 0..3 {
            assert!(plan.row(i)[i] > 0.95, "row {i}: {:?}", plan.row(i));
        }
        assert!(plan.cost < 0.05);
    }

    #[test]
    fn validates_inputs() {
        assert!(QuantileRepairer::fit(&[1.0], &[0, 1], 2).is_err()); // length
        assert!(QuantileRepairer::fit(&[1.0, 2.0], &[0, 5], 2).is_err()); // code range
        assert!(QuantileRepairer::fit(&[1.0, 2.0], &[0, 0], 2).is_err()); // empty group
        assert!(QuantileRepairer::fit(&[f64::NAN, 2.0], &[0, 1], 2).is_err());
    }
}
