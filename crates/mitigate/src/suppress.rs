//! Attribute suppression: remove protected attributes and, optionally,
//! their strongest proxies.
//!
//! Plain suppression is "fairness through unawareness" — the strategy the
//! paper's Section IV.B shows to be insufficient, because "there most
//! probably exist other attributes that are correlated with it". The
//! proxy-aware variant therefore also drops (or flags) features whose
//! association with the protected attribute exceeds a threshold.

use fairbridge_stats::correlation::{cramers_v, point_biserial, Contingency};
use fairbridge_tabular::{Column, Dataset, Role};

/// Association of one feature with a protected attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyScore {
    /// Feature column name.
    pub feature: String,
    /// Association strength ∈ \[0, 1\]: Cramér's V for categorical/boolean
    /// features, |point-biserial| (vs. a two-level protected attribute)
    /// for numeric ones.
    pub association: f64,
}

/// Measures every feature's association with the named protected column.
///
/// Works for categorical protected attributes of any arity; numeric
/// features are scored against each level indicator and the max is taken.
pub fn proxy_scores(ds: &Dataset, protected: &str) -> Result<Vec<ProxyScore>, String> {
    let (p_levels, p_codes) = ds.categorical(protected).map_err(|e| e.to_string())?;
    let p_levels = p_levels.to_vec();
    let p_codes = p_codes.to_vec();
    let k = p_levels.len();
    let mut out = Vec::new();
    for meta in ds.schema().fields() {
        if meta.role != Role::Feature {
            continue;
        }
        let col = ds.column(&meta.name).map_err(|e| e.to_string())?;
        let association = match col {
            Column::Categorical { levels, codes } => {
                let t = Contingency::from_codes(&p_codes, codes, k, levels.len());
                cramers_v(&t)
            }
            Column::Boolean(values) => {
                let codes: Vec<u32> = values.iter().map(|&b| u32::from(b)).collect();
                let t = Contingency::from_codes(&p_codes, &codes, k, 2);
                cramers_v(&t)
            }
            Column::Numeric(values) => {
                // max over level indicators
                (0..k)
                    .map(|level| {
                        let indicator: Vec<bool> =
                            p_codes.iter().map(|&c| c as usize == level).collect();
                        point_biserial(values, &indicator).abs()
                    })
                    .fold(0.0f64, f64::max)
            }
        };
        out.push(ProxyScore {
            feature: meta.name.clone(),
            association,
        });
    }
    out.sort_by(|a, b| {
        b.association
            .partial_cmp(&a.association)
            .expect("NaN association")
    });
    Ok(out)
}

/// The suppression result.
#[derive(Debug, Clone)]
pub struct SuppressResult {
    /// Dataset with the protected column demoted to [`Role::Ignored`] and
    /// the selected proxies dropped.
    pub dataset: Dataset,
    /// Features dropped as proxies, with their associations.
    pub dropped: Vec<ProxyScore>,
}

/// Suppresses a protected attribute and every feature whose association
/// with it is at least `proxy_threshold` (set it above 1.0 for plain
/// unawareness that keeps all proxies).
pub fn suppress(
    ds: &Dataset,
    protected: &str,
    proxy_threshold: f64,
) -> Result<SuppressResult, String> {
    let scores = proxy_scores(ds, protected)?;
    let mut dataset = ds
        .with_role(protected, Role::Ignored)
        .map_err(|e| e.to_string())?;
    let mut dropped = Vec::new();
    for s in scores {
        if s.association >= proxy_threshold {
            dataset = dataset.drop_column(&s.feature).map_err(|e| e.to_string())?;
            dropped.push(s);
        }
    }
    Ok(SuppressResult { dataset, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    fn ds() -> Dataset {
        // proxy duplicates sex; merit is independent of it.
        let n = 40;
        let sex: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let proxy: Vec<u32> = sex.clone();
        let merit: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], sex, Role::Protected)
            .categorical_with_role("proxy_uni", vec!["u1", "u2"], proxy, Role::Feature)
            .numeric("merit", merit)
            .boolean_with_role("y", (0..n).map(|i| i % 5 > 1).collect(), Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn proxy_scores_rank_the_duplicate_first() {
        let scores = proxy_scores(&ds(), "sex").unwrap();
        assert_eq!(scores[0].feature, "proxy_uni");
        assert!((scores[0].association - 1.0).abs() < 1e-9);
        let merit = scores.iter().find(|s| s.feature == "merit").unwrap();
        assert!(merit.association < 0.1);
    }

    #[test]
    fn suppress_drops_strong_proxies() {
        let result = suppress(&ds(), "sex", 0.5).unwrap();
        assert_eq!(result.dropped.len(), 1);
        assert_eq!(result.dropped[0].feature, "proxy_uni");
        assert!(result.dataset.column("proxy_uni").is_err());
        // protected column demoted, not dropped (audits still need it)
        assert_eq!(
            result.dataset.schema().field("sex").unwrap().role,
            Role::Ignored
        );
        assert!(result.dataset.column("merit").is_ok());
    }

    #[test]
    fn plain_unawareness_keeps_proxies() {
        let result = suppress(&ds(), "sex", 1.1).unwrap();
        assert!(result.dropped.is_empty());
        assert!(result.dataset.column("proxy_uni").is_ok());
    }

    #[test]
    fn numeric_proxy_detected() {
        let n = 40;
        let sex: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let height: Vec<f64> = sex.iter().map(|&s| 160.0 + 15.0 * s as f64).collect();
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], sex, Role::Protected)
            .numeric("height", height)
            .boolean_with_role("y", vec![true; n], Role::Label)
            .build()
            .unwrap();
        let scores = proxy_scores(&ds, "sex").unwrap();
        assert!((scores[0].association - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boolean_feature_scored() {
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], vec![0, 0, 1, 1], Role::Protected)
            .boolean("maternity_leave", vec![false, false, true, true])
            .boolean_with_role("y", vec![true, false, true, false], Role::Label)
            .build()
            .unwrap();
        let scores = proxy_scores(&ds, "sex").unwrap();
        assert_eq!(scores[0].feature, "maternity_leave");
        assert!((scores[0].association - 1.0).abs() < 1e-9);
    }
}
