//! In-processing mitigation: logistic regression with a decision-boundary
//! covariance penalty (Zafar-style constraint, relaxed to a penalty).
//!
//! The penalty term is λ·Cov(Â, w·x+b)², the squared empirical covariance
//! between the protected-group indicator and the linear score. Driving it
//! to zero decorrelates decisions from group membership — demographic
//! parity in-processing — while the log-loss term retains accuracy.

use fairbridge_learn::logistic::{sigmoid, LogisticModel};
use fairbridge_learn::matrix::{dot, Matrix};

/// Trainer for fairness-penalized logistic regression.
#[derive(Debug, Clone)]
pub struct FairLogisticTrainer {
    /// Learning rate.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 regularization on weights.
    pub l2: f64,
    /// Fairness penalty strength λ (0 = plain logistic regression).
    pub fairness_weight: f64,
}

impl Default for FairLogisticTrainer {
    fn default() -> Self {
        FairLogisticTrainer {
            learning_rate: 0.5,
            epochs: 800,
            l2: 1e-4,
            fairness_weight: 1.0,
        }
    }
}

impl FairLogisticTrainer {
    /// Fits on a design matrix; `group_indicator[i]` ∈ {0,1} marks
    /// protected-group membership (must not be a column of `x` for the
    /// penalty to make sense — use an unaware encoder).
    pub fn fit(&self, x: &Matrix, y: &[bool], group_indicator: &[bool]) -> LogisticModel {
        assert_eq!(x.n_rows(), y.len(), "fit: row/label mismatch");
        assert_eq!(y.len(), group_indicator.len(), "fit: indicator mismatch");
        assert!(x.n_rows() > 1, "fit: need at least two rows");
        let n = x.n_rows() as f64;
        let d = x.n_cols();
        let g: Vec<f64> = group_indicator
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let g_mean = g.iter().sum::<f64>() / n;
        let g_centered: Vec<f64> = g.iter().map(|&gi| gi - g_mean).collect();

        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut grad_w = vec![0.0; d];

        for _ in 0..self.epochs {
            grad_w.iter_mut().for_each(|v| *v = 0.0);
            let mut grad_b = 0.0;

            // Log-loss gradient.
            for (i, row) in x.rows().enumerate() {
                let p = sigmoid(dot(&weights, row) + bias);
                let err = p - if y[i] { 1.0 } else { 0.0 };
                for (gw, &xij) in grad_w.iter_mut().zip(row) {
                    *gw += err * xij / n;
                }
                grad_b += err / n;
            }

            // Covariance penalty gradient: cov = (1/n) Σ ĝᵢ (w·xᵢ + b);
            // note Σ ĝᵢ = 0 kills the bias term. d(cov²)/dw = 2·cov·(1/n)Σ ĝᵢ xᵢ.
            let mut cov = 0.0;
            for (i, row) in x.rows().enumerate() {
                cov += g_centered[i] * (dot(&weights, row) + bias);
            }
            cov /= n;
            if self.fairness_weight > 0.0 {
                let scale = 2.0 * self.fairness_weight * cov / n;
                for (i, row) in x.rows().enumerate() {
                    for (gw, &xij) in grad_w.iter_mut().zip(row) {
                        *gw += scale * g_centered[i] * xij;
                    }
                }
            }

            for (w, gw) in weights.iter_mut().zip(grad_w.iter()) {
                *w -= self.learning_rate * (gw + self.l2 * *w);
            }
            bias -= self.learning_rate * grad_b;
        }
        LogisticModel { weights, bias }
    }

    /// The empirical covariance between the group indicator and the
    /// linear score of `model` — the quantity the penalty suppresses.
    pub fn boundary_covariance(model: &LogisticModel, x: &Matrix, group_indicator: &[bool]) -> f64 {
        let n = x.n_rows() as f64;
        let g_mean = group_indicator.iter().filter(|&&b| b).count() as f64 / n;
        let mut cov = 0.0;
        for (i, row) in x.rows().enumerate() {
            let g = if group_indicator[i] { 1.0 } else { 0.0 };
            cov += (g - g_mean) * model.linear(row);
        }
        cov / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_learn::model::Scorer;

    /// Data where a proxy feature carries both merit and group signal:
    /// the unpenalized model discriminates, the penalized one cannot.
    fn proxy_data() -> (Matrix, Vec<bool>, Vec<bool>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut group = Vec::new();
        for i in 0..200 {
            let g = i % 2 == 1;
            let merit = (i % 10) as f64 / 10.0;
            // proxy = merit plus a strong group offset
            let proxy = merit + if g { -0.8 } else { 0.0 };
            rows.push(vec![proxy, merit * 0.1]);
            // biased labels: group g rarely positive
            y.push(if g { merit > 0.8 } else { merit > 0.3 });
            group.push(g);
        }
        (Matrix::from_rows(&rows), y, group)
    }

    fn selection_rates(model: &LogisticModel, x: &Matrix, group: &[bool]) -> (f64, f64) {
        let (mut p0, mut n0, mut p1, mut n1) = (0.0, 0.0, 0.0, 0.0);
        for (i, row) in x.rows().enumerate() {
            let sel = model.score(row) >= 0.5;
            if group[i] {
                n1 += 1.0;
                if sel {
                    p1 += 1.0;
                }
            } else {
                n0 += 1.0;
                if sel {
                    p0 += 1.0;
                }
            }
        }
        (p0 / n0, p1 / n1)
    }

    #[test]
    fn penalty_shrinks_parity_gap() {
        let (x, y, group) = proxy_data();
        let plain = FairLogisticTrainer {
            fairness_weight: 0.0,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);
        let fair = FairLogisticTrainer {
            fairness_weight: 30.0,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);

        let (r0_plain, r1_plain) = selection_rates(&plain, &x, &group);
        let (r0_fair, r1_fair) = selection_rates(&fair, &x, &group);
        let gap_plain = (r0_plain - r1_plain).abs();
        let gap_fair = (r0_fair - r1_fair).abs();
        assert!(
            gap_fair < gap_plain * 0.5,
            "plain gap {gap_plain}, fair gap {gap_fair}"
        );
    }

    #[test]
    fn penalty_shrinks_boundary_covariance() {
        let (x, y, group) = proxy_data();
        let plain = FairLogisticTrainer {
            fairness_weight: 0.0,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);
        let fair = FairLogisticTrainer {
            fairness_weight: 30.0,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);
        let cov_plain = FairLogisticTrainer::boundary_covariance(&plain, &x, &group).abs();
        let cov_fair = FairLogisticTrainer::boundary_covariance(&fair, &x, &group).abs();
        assert!(
            cov_fair < cov_plain * 0.3,
            "plain cov {cov_plain}, fair cov {cov_fair}"
        );
    }

    #[test]
    fn zero_weight_matches_plain_logistic_shape() {
        let (x, y, group) = proxy_data();
        let model = FairLogisticTrainer {
            fairness_weight: 0.0,
            learning_rate: 2.0,
            epochs: 3000,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);
        // still learns: accuracy above chance
        let correct = x
            .rows()
            .enumerate()
            .filter(|(i, row)| (model.score(row) >= 0.5) == y[*i])
            .count();
        assert!(correct as f64 / y.len() as f64 > 0.8);
    }

    #[test]
    fn fairness_costs_some_accuracy() {
        // The equal treatment / equal outcome trade-off of Section IV.A:
        // suppressing the group signal can only reduce fit to biased labels.
        let (x, y, group) = proxy_data();
        let acc = |m: &LogisticModel| {
            x.rows()
                .enumerate()
                .filter(|(i, row)| (m.score(row) >= 0.5) == y[*i])
                .count() as f64
                / y.len() as f64
        };
        let plain = FairLogisticTrainer {
            fairness_weight: 0.0,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);
        let fair = FairLogisticTrainer {
            fairness_weight: 30.0,
            ..FairLogisticTrainer::default()
        }
        .fit(&x, &y, &group);
        assert!(acc(&plain) >= acc(&fair) - 1e-9);
    }
}
