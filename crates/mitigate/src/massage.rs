//! Label massaging (Kamiran & Calders): minimally flip training labels to
//! remove the parity gap before training.
//!
//! Promotions (− → +) go to the highest-scored rejected members of the
//! disadvantaged group; demotions (+ → −) to the lowest-scored accepted
//! members of the advantaged group, so the flipped labels are the ones a
//! ranker finds most ambiguous. Paper context: Section IV.A's "equal
//! outcome" instruments acting on historical data.

use fairbridge_tabular::{Column, Dataset, Role};

/// The massaging result.
#[derive(Debug, Clone)]
pub struct MassageResult {
    /// Dataset with the massaged label column replacing the original.
    pub dataset: Dataset,
    /// Rows whose labels were promoted (− → +).
    pub promoted: Vec<usize>,
    /// Rows whose labels were demoted (+ → −).
    pub demoted: Vec<usize>,
}

/// Massages labels until the per-group positive rates of the two named
/// groups are as close as flipping whole labels permits.
///
/// * `scores` ranks instances (higher = more deserving of +), typically
///   from a ranker trained on the biased data;
/// * `protected` is a categorical column with the two-level group;
/// * the group with the lower positive rate receives promotions, the other
///   receives an equal number of demotions, so the overall positive count
///   is preserved (as in the original algorithm).
pub fn massage(ds: &Dataset, protected: &str, scores: &[f64]) -> Result<MassageResult, String> {
    if scores.len() != ds.n_rows() {
        return Err("scores length must match dataset rows".to_owned());
    }
    let labels = ds.labels().map_err(|e| e.to_string())?.to_vec();
    let (levels, codes) = ds.categorical(protected).map_err(|e| e.to_string())?;
    if levels.len() != 2 {
        return Err(format!(
            "massage requires a two-level protected column, `{protected}` has {}",
            levels.len()
        ));
    }
    let codes = codes.to_vec();

    // Positive rates per group.
    let stats = |code: u32| {
        let members: Vec<usize> = (0..ds.n_rows()).filter(|&i| codes[i] == code).collect();
        let pos = members.iter().filter(|&&i| labels[i]).count();
        (members, pos)
    };
    let (g0, pos0) = stats(0);
    let (g1, pos1) = stats(1);
    if g0.is_empty() || g1.is_empty() {
        return Err("both groups must be non-empty".to_owned());
    }
    let rate0 = pos0 as f64 / g0.len() as f64;
    let rate1 = pos1 as f64 / g1.len() as f64;
    let (disadvantaged, advantaged) = if rate0 < rate1 {
        (&g0, &g1)
    } else {
        (&g1, &g0)
    };

    // Number of flips M that best equalizes rates while preserving the
    // total positive count: promote M in the disadvantaged group, demote M
    // in the advantaged one. Choose M minimizing the absolute post-flip gap.
    let nd = disadvantaged.len() as f64;
    let na = advantaged.len() as f64;
    let pd = disadvantaged.iter().filter(|&&i| labels[i]).count() as f64;
    let pa = advantaged.iter().filter(|&&i| labels[i]).count() as f64;
    let max_flips = disadvantaged
        .iter()
        .filter(|&&i| !labels[i])
        .count()
        .min(advantaged.iter().filter(|&&i| labels[i]).count());
    let mut best_m = 0usize;
    let mut best_gap = ((pa / na) - (pd / nd)).abs();
    for m in 1..=max_flips {
        let gap = ((pa - m as f64) / na - (pd + m as f64) / nd).abs();
        if gap < best_gap {
            best_gap = gap;
            best_m = m;
        }
    }

    // Promotion candidates: disadvantaged, label −, by descending score.
    let mut promo: Vec<usize> = disadvantaged
        .iter()
        .copied()
        .filter(|&i| !labels[i])
        .collect();
    promo.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    // Demotion candidates: advantaged, label +, by ascending score.
    let mut demo: Vec<usize> = advantaged.iter().copied().filter(|&i| labels[i]).collect();
    demo.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));

    let promoted: Vec<usize> = promo.into_iter().take(best_m).collect();
    let demoted: Vec<usize> = demo.into_iter().take(best_m).collect();

    let mut new_labels = labels;
    for &i in &promoted {
        new_labels[i] = true;
    }
    for &i in &demoted {
        new_labels[i] = false;
    }

    let label_name = ds
        .schema()
        .single_with_role(Role::Label)
        .map_err(|e| e.to_string())?
        .name
        .clone();
    let dataset = ds
        .drop_column(&label_name)
        .and_then(|d| d.with_column(&label_name, Column::Boolean(new_labels), Role::Label))
        .map_err(|e| e.to_string())?;
    Ok(MassageResult {
        dataset,
        promoted,
        demoted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    /// 10 males (8 hired), 10 females (2 hired), scores descending by row.
    fn biased() -> (Dataset, Vec<f64>) {
        let mut sex = Vec::new();
        let mut hired = Vec::new();
        let mut scores = Vec::new();
        for i in 0..10 {
            sex.push(0);
            hired.push(i < 8);
            scores.push(1.0 - i as f64 * 0.05);
        }
        for i in 0..10 {
            sex.push(1);
            hired.push(i < 2);
            scores.push(1.0 - i as f64 * 0.05);
        }
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap();
        (ds, scores)
    }

    fn rates(ds: &Dataset) -> (f64, f64) {
        let labels = ds.labels().unwrap();
        let (_, sex) = ds.categorical("sex").unwrap();
        let rate = |c: u32| {
            let m: Vec<bool> = sex
                .iter()
                .zip(labels)
                .filter_map(|(&s, &l)| (s == c).then_some(l))
                .collect();
            m.iter().filter(|&&l| l).count() as f64 / m.len() as f64
        };
        (rate(0), rate(1))
    }

    #[test]
    fn massage_equalizes_rates_exactly_for_balanced_groups() {
        let (ds, scores) = biased();
        let result = massage(&ds, "sex", &scores).unwrap();
        let (male, female) = rates(&result.dataset);
        assert!((male - female).abs() < 1e-12, "{male} vs {female}");
        assert!((male - 0.5).abs() < 1e-12); // 8+2 positives preserved
        assert_eq!(result.promoted.len(), 3);
        assert_eq!(result.demoted.len(), 3);
    }

    #[test]
    fn total_positive_count_preserved() {
        let (ds, scores) = biased();
        let before = ds.labels().unwrap().iter().filter(|&&l| l).count();
        let result = massage(&ds, "sex", &scores).unwrap();
        let after = result
            .dataset
            .labels()
            .unwrap()
            .iter()
            .filter(|&&l| l)
            .count();
        assert_eq!(before, after);
    }

    #[test]
    fn flips_target_borderline_instances() {
        let (ds, scores) = biased();
        let result = massage(&ds, "sex", &scores).unwrap();
        // promoted females are the highest-scored rejected ones (rows 12..15)
        let mut promoted = result.promoted.clone();
        promoted.sort_unstable();
        assert_eq!(promoted, vec![12, 13, 14]);
        // demoted males are the lowest-scored hired ones (rows 5..8)
        let mut demoted = result.demoted.clone();
        demoted.sort_unstable();
        assert_eq!(demoted, vec![5, 6, 7]);
    }

    #[test]
    fn already_fair_data_untouched() {
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], vec![0, 0, 1, 1], Role::Protected)
            .boolean_with_role("y", vec![true, false, true, false], Role::Label)
            .build()
            .unwrap();
        let result = massage(&ds, "sex", &[0.9, 0.1, 0.8, 0.2]).unwrap();
        assert!(result.promoted.is_empty());
        assert!(result.demoted.is_empty());
        assert_eq!(result.dataset.labels().unwrap(), ds.labels().unwrap());
    }

    #[test]
    fn validates_inputs() {
        let (ds, _) = biased();
        assert!(massage(&ds, "sex", &[0.0; 3]).is_err());
        let multi = Dataset::builder()
            .categorical_with_role("g", vec!["a", "b", "c"], vec![0, 1, 2], Role::Protected)
            .boolean_with_role("y", vec![true, false, true], Role::Label)
            .build()
            .unwrap();
        assert!(massage(&multi, "g", &[0.1, 0.2, 0.3]).is_err());
    }
}
