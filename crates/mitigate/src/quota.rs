//! Affirmative-action quota selection (paper Section IV.A).
//!
//! "Affirmative action or a company's policy would require a minimum
//! quota in female acceptances for every job." The selector takes model
//! scores and a total capacity and fills it so that each group receives at
//! least its quota (proportional by default), choosing the highest-scored
//! members within each group — the equal-outcome instrument in its purest
//! form.

use fairbridge_tabular::{Dataset, GroupIndex, GroupKey, GroupSpec};
use std::collections::BTreeMap;

/// Quota policy for one selection round.
#[derive(Debug, Clone, PartialEq)]
pub enum QuotaPolicy {
    /// Each group is guaranteed ⌊share_of_applicants × capacity⌋ slots.
    Proportional,
    /// Explicit minimum share of the capacity per group key (groups not
    /// listed get no guarantee). Shares must sum to ≤ 1.
    MinimumShares(BTreeMap<GroupKey, f64>),
}

/// The quota selection result.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaSelection {
    /// Selected decision per row.
    pub selected: Vec<bool>,
    /// Guaranteed slots per group.
    pub guaranteed: BTreeMap<GroupKey, usize>,
    /// Rows selected due to a quota that pure score ranking would have
    /// passed over.
    pub quota_beneficiaries: Vec<usize>,
}

/// Selects `capacity` rows by score, honouring the quota policy.
///
/// Algorithm: first give each group its guaranteed slots (top-scored
/// within the group), then fill the remaining capacity from the global
/// score ranking.
pub fn quota_select(
    ds: &Dataset,
    protected: &[&str],
    scores: &[f64],
    capacity: usize,
    policy: &QuotaPolicy,
) -> Result<QuotaSelection, String> {
    if scores.len() != ds.n_rows() {
        return Err("scores length must match dataset rows".to_owned());
    }
    if capacity > ds.n_rows() {
        return Err("capacity exceeds number of candidates".to_owned());
    }
    let groups = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
        .map_err(|e| e.to_string())?;

    // Guaranteed slots per group.
    let mut guaranteed: BTreeMap<GroupKey, usize> = BTreeMap::new();
    match policy {
        QuotaPolicy::Proportional => {
            let n = ds.n_rows() as f64;
            for (key, rows) in groups.iter() {
                let share = rows.len() as f64 / n;
                guaranteed.insert(key.clone(), (share * capacity as f64).floor() as usize);
            }
        }
        QuotaPolicy::MinimumShares(shares) => {
            let total: f64 = shares.values().sum();
            if total > 1.0 + 1e-9 {
                return Err(format!("quota shares sum to {total} > 1"));
            }
            for (key, share) in shares {
                if !(0.0..=1.0).contains(share) {
                    return Err("quota shares must be in [0,1]".to_owned());
                }
                guaranteed.insert(key.clone(), (share * capacity as f64).floor() as usize);
            }
        }
    }

    let mut selected = vec![false; ds.n_rows()];
    let mut slots_used = 0usize;

    // Phase 1: per-group guarantees, top-scored first.
    for (key, rows) in groups.iter() {
        let quota = guaranteed.get(key).copied().unwrap_or(0).min(rows.len());
        let mut ranked: Vec<usize> = rows.to_vec();
        ranked.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
        for &i in ranked.iter().take(quota) {
            if slots_used >= capacity {
                break;
            }
            selected[i] = true;
            slots_used += 1;
        }
    }

    // Phase 2: remaining capacity by global score ranking.
    let mut remaining: Vec<usize> = (0..ds.n_rows()).filter(|&i| !selected[i]).collect();
    remaining.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    for &i in &remaining {
        if slots_used >= capacity {
            break;
        }
        selected[i] = true;
        slots_used += 1;
    }

    // Beneficiaries: selected rows that pure top-`capacity` ranking skips.
    let mut pure: Vec<usize> = (0..ds.n_rows()).collect();
    pure.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    let pure_set: Vec<bool> = {
        let mut v = vec![false; ds.n_rows()];
        for &i in pure.iter().take(capacity) {
            v[i] = true;
        }
        v
    };
    let quota_beneficiaries: Vec<usize> = (0..ds.n_rows())
        .filter(|&i| selected[i] && !pure_set[i])
        .collect();

    Ok(QuotaSelection {
        selected,
        guaranteed,
        quota_beneficiaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    /// 20 males scored high, 10 females scored low (depressed by bias).
    fn cohort() -> (Dataset, Vec<f64>) {
        let mut sex = Vec::new();
        let mut scores = Vec::new();
        for i in 0..20 {
            sex.push(0);
            scores.push(0.9 - i as f64 * 0.01);
        }
        for i in 0..10 {
            sex.push(1);
            scores.push(0.5 - i as f64 * 0.01);
        }
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .boolean_with_role("y", vec![true; 30], Role::Label)
            .build()
            .unwrap();
        (ds, scores)
    }

    #[test]
    fn pure_ranking_excludes_females_quota_fixes_it() {
        let (ds, scores) = cohort();
        // capacity 15: pure ranking = 15 males. Proportional quota
        // guarantees females 1/3 × 15 = 5 slots.
        let sel = quota_select(&ds, &["sex"], &scores, 15, &QuotaPolicy::Proportional).unwrap();
        let (_, sex) = ds.categorical("sex").unwrap();
        let female_selected = sel
            .selected
            .iter()
            .zip(sex)
            .filter(|(&s, &c)| s && c == 1)
            .count();
        assert_eq!(female_selected, 5);
        assert_eq!(sel.selected.iter().filter(|&&s| s).count(), 15);
        assert_eq!(sel.quota_beneficiaries.len(), 5);
        // beneficiaries are the top-scored females
        assert!(sel
            .quota_beneficiaries
            .iter()
            .all(|&i| (20..25).contains(&i)));
    }

    #[test]
    fn proportional_quota_matches_paper_example() {
        // Paper III.A arithmetic: 20 male/10 female, 15 hired → 5 females.
        let (ds, scores) = cohort();
        let sel = quota_select(&ds, &["sex"], &scores, 15, &QuotaPolicy::Proportional).unwrap();
        assert_eq!(
            sel.guaranteed
                .get(&GroupKey(vec!["female".into()]))
                .copied(),
            Some(5)
        );
        assert_eq!(
            sel.guaranteed.get(&GroupKey(vec!["male".into()])).copied(),
            Some(10)
        );
    }

    #[test]
    fn minimum_shares_policy() {
        let (ds, scores) = cohort();
        let mut shares = BTreeMap::new();
        shares.insert(GroupKey(vec!["female".into()]), 0.4);
        let sel = quota_select(
            &ds,
            &["sex"],
            &scores,
            10,
            &QuotaPolicy::MinimumShares(shares),
        )
        .unwrap();
        let (_, sex) = ds.categorical("sex").unwrap();
        let females = sel
            .selected
            .iter()
            .zip(sex)
            .filter(|(&s, &c)| s && c == 1)
            .count();
        assert_eq!(females, 4);
    }

    #[test]
    fn capacity_is_respected_exactly() {
        let (ds, scores) = cohort();
        for cap in [0, 1, 7, 30] {
            let sel =
                quota_select(&ds, &["sex"], &scores, cap, &QuotaPolicy::Proportional).unwrap();
            assert_eq!(sel.selected.iter().filter(|&&s| s).count(), cap);
        }
    }

    #[test]
    fn validates_inputs() {
        let (ds, scores) = cohort();
        assert!(quota_select(&ds, &["sex"], &scores, 31, &QuotaPolicy::Proportional).is_err());
        assert!(quota_select(&ds, &["sex"], &[0.0; 2], 1, &QuotaPolicy::Proportional).is_err());
        let mut bad = BTreeMap::new();
        bad.insert(GroupKey(vec!["female".into()]), 0.7);
        bad.insert(GroupKey(vec!["male".into()]), 0.7);
        assert!(
            quota_select(&ds, &["sex"], &scores, 10, &QuotaPolicy::MinimumShares(bad)).is_err()
        );
    }

    #[test]
    fn quota_cannot_exceed_group_size() {
        let ds = Dataset::builder()
            .categorical_with_role("g", vec!["a", "b"], vec![0, 0, 0, 1], Role::Protected)
            .boolean_with_role("y", vec![true; 4], Role::Label)
            .build()
            .unwrap();
        let mut shares = BTreeMap::new();
        shares.insert(GroupKey(vec!["b".into()]), 0.9);
        // group b has one member; quota of floor(0.9*4)=3 clamps to 1.
        let sel = quota_select(
            &ds,
            &["g"],
            &[0.9, 0.8, 0.7, 0.1],
            4,
            &QuotaPolicy::MinimumShares(shares),
        )
        .unwrap();
        assert_eq!(sel.selected.iter().filter(|&&s| s).count(), 4);
    }
}
