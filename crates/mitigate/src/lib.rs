//! # fairbridge-mitigate
//!
//! Bias mitigation across all three intervention points the fairness
//! literature distinguishes, each tied to the paper's discussion:
//!
//! **Pre-processing** (fix the data):
//! * [`reweigh()`] — Kamiran–Calders reweighing (paper ref \[8\]): instance
//!   weights that make the protected attribute independent of the label;
//! * [`massage`] — label massaging: minimally flip borderline labels until
//!   the training labels satisfy parity;
//! * [`suppress`] — attribute suppression incl. correlated proxies — the
//!   "fairness through unawareness" strategy whose insufficiency Section
//!   IV.B demonstrates (provided so experiments can demonstrate exactly
//!   that);
//!
//! **In-processing** (fix the training objective):
//! * [`inprocess`] — logistic regression with a decision-boundary
//!   covariance penalty tying scores to the protected attribute;
//!
//! **Post-processing** (fix the decisions):
//! * [`threshold`] — per-group decision thresholds à la Hardt et al.
//!   (paper ref \[6\]) for equal opportunity or demographic parity;
//! * [`reject_option`] — reject-option classification: boundary-band
//!   reassignment in favour of the disadvantaged group;
//! * [`quota`] — affirmative-action quotas (Section IV.A: "a company's
//!   policy would require a minimum quota in female acceptances");
//!
//! **Distributional repair** (Section IV.F):
//! * [`ot`] — quantile-map (optimal-transport) feature repair toward the
//!   group barycenter, with partial-repair interpolation;
//! * [`group_blind`] — repair *without the protected attribute*, using
//!   only population marginals (paper refs \[13\], \[24\]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod group_blind;
pub mod inprocess;
pub mod massage;
pub mod ot;
pub mod quota;
pub mod reject_option;
pub mod reweigh;
pub mod suppress;
pub mod threshold;

pub use reweigh::reweigh;
pub use threshold::{GroupThresholds, ThresholdObjective};
