//! Kamiran–Calders reweighing (paper reference \[8\]).
//!
//! Assigns each instance the weight `P(A=a)·P(Y=y) / P(A=a, Y=y)`, which
//! makes the *weighted* joint distribution of protected attribute and
//! label exactly independent: a weight-aware learner then sees a dataset
//! in which group membership carries no label information.

use fairbridge_tabular::{Column, Dataset, GroupIndex, GroupSpec, Role};

/// The reweighing result.
#[derive(Debug, Clone)]
pub struct ReweighResult {
    /// The input dataset with a `reweigh_weight` column attached
    /// ([`Role::Weight`]).
    pub dataset: Dataset,
    /// Per-(group, label) weights in the order (group key asc, label
    /// false/true): `(group_index, label, weight)`.
    pub cell_weights: Vec<(usize, bool, f64)>,
}

/// Computes reweighing weights over the dataset's protected column(s) and
/// label, attaching them as a weight column.
///
/// # Examples
///
/// ```
/// use fairbridge_mitigate::reweigh;
/// use fairbridge_tabular::{Dataset, Role};
///
/// // 4 males (3 hired), 4 females (1 hired): dependent.
/// let ds = Dataset::builder()
///     .categorical_with_role("sex", vec!["m", "f"],
///         vec![0, 0, 0, 0, 1, 1, 1, 1], Role::Protected)
///     .boolean_with_role("hired",
///         vec![true, true, true, false, true, false, false, false],
///         Role::Label)
///     .build()
///     .unwrap();
///
/// let result = reweigh(&ds, &["sex"]).unwrap();
/// let w = result.dataset.weights();
/// // the rare hired female is up-weighted, the common hired male down-weighted
/// assert!(w[4] > 1.0 && w[0] < 1.0);
/// // total mass preserved
/// assert!((w.iter().sum::<f64>() - 8.0).abs() < 1e-9);
/// ```
pub fn reweigh(ds: &Dataset, protected: &[&str]) -> Result<ReweighResult, String> {
    let labels = ds.labels().map_err(|e| e.to_string())?.to_vec();
    let n = ds.n_rows() as f64;
    if n == 0.0 {
        return Err("reweigh requires a non-empty dataset".to_owned());
    }
    let groups = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
        .map_err(|e| e.to_string())?;

    let p_pos = labels.iter().filter(|&&y| y).count() as f64 / n;
    let p_neg = 1.0 - p_pos;

    let mut weights = vec![0.0f64; ds.n_rows()];
    let mut cell_weights = Vec::new();
    for (gi, (_, rows)) in groups.iter().enumerate() {
        let p_group = rows.len() as f64 / n;
        let pos_rows = rows.iter().filter(|&&i| labels[i]).count() as f64;
        let neg_rows = rows.len() as f64 - pos_rows;
        let w_pos = if pos_rows > 0.0 {
            p_group * p_pos / (pos_rows / n)
        } else {
            0.0
        };
        let w_neg = if neg_rows > 0.0 {
            p_group * p_neg / (neg_rows / n)
        } else {
            0.0
        };
        cell_weights.push((gi, false, w_neg));
        cell_weights.push((gi, true, w_pos));
        for &i in rows {
            weights[i] = if labels[i] { w_pos } else { w_neg };
        }
    }

    let dataset = ds
        .with_column("reweigh_weight", Column::Numeric(weights), Role::Weight)
        .map_err(|e| e.to_string())?;
    Ok(ReweighResult {
        dataset,
        cell_weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    /// 10 males (8 hired), 10 females (2 hired): strongly dependent.
    fn biased() -> Dataset {
        let mut sex = Vec::new();
        let mut hired = Vec::new();
        for i in 0..10 {
            sex.push(0);
            hired.push(i < 8);
        }
        for i in 0..10 {
            sex.push(1);
            hired.push(i < 2);
        }
        Dataset::builder()
            .categorical_with_role("sex", vec!["male", "female"], sex, Role::Protected)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn weighted_joint_is_independent() {
        let result = reweigh(&biased(), &["sex"]).unwrap();
        let ds = &result.dataset;
        let w = ds.weights();
        let labels = ds.labels().unwrap();
        let (_, sex) = ds.categorical("sex").unwrap();

        let total: f64 = w.iter().sum();
        // Weighted P(A=a, Y=y) must equal weighted P(A=a)·P(Y=y) exactly.
        for a in 0..2u32 {
            for y in [false, true] {
                let p_ay: f64 = w
                    .iter()
                    .zip(sex)
                    .zip(labels)
                    .filter(|((_, &s), &l)| s == a && l == y)
                    .map(|((wi, _), _)| wi)
                    .sum::<f64>()
                    / total;
                let p_a: f64 = w
                    .iter()
                    .zip(sex)
                    .filter(|(_, &s)| s == a)
                    .map(|(wi, _)| wi)
                    .sum::<f64>()
                    / total;
                let p_y: f64 = w
                    .iter()
                    .zip(labels)
                    .filter(|(_, &l)| l == y)
                    .map(|(wi, _)| wi)
                    .sum::<f64>()
                    / total;
                assert!(
                    (p_ay - p_a * p_y).abs() < 1e-12,
                    "a={a} y={y}: {p_ay} vs {}",
                    p_a * p_y
                );
            }
        }
    }

    #[test]
    fn disadvantaged_positives_upweighted() {
        let result = reweigh(&biased(), &["sex"]).unwrap();
        let ds = &result.dataset;
        let w = ds.weights();
        let labels = ds.labels().unwrap();
        let (_, sex) = ds.categorical("sex").unwrap();
        // A hired female is rare (2 of 10 expected 5) → weight > 1.
        let hired_female = w
            .iter()
            .zip(sex)
            .zip(labels)
            .find(|((_, &s), &l)| s == 1 && l)
            .map(|((wi, _), _)| *wi)
            .unwrap();
        assert!(hired_female > 1.5, "weight {hired_female}");
        // A hired male is over-represented → weight < 1.
        let hired_male = w
            .iter()
            .zip(sex)
            .zip(labels)
            .find(|((_, &s), &l)| s == 0 && l)
            .map(|((wi, _), _)| *wi)
            .unwrap();
        assert!(hired_male < 1.0);
    }

    #[test]
    fn already_independent_weights_are_one() {
        let mut sex = Vec::new();
        let mut hired = Vec::new();
        for g in 0..2 {
            for i in 0..10 {
                sex.push(g);
                hired.push(i < 5);
            }
        }
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], sex, Role::Protected)
            .boolean_with_role("hired", hired, Role::Label)
            .build()
            .unwrap();
        let result = reweigh(&ds, &["sex"]).unwrap();
        for w in result.dataset.weights() {
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn intersectional_reweighing_works() {
        // group by two protected columns at once
        let ds = Dataset::builder()
            .categorical_with_role("g1", vec!["a", "b"], vec![0, 0, 1, 1], Role::Protected)
            .categorical_with_role("g2", vec!["x", "y"], vec![0, 1, 0, 1], Role::Protected)
            .boolean_with_role("y", vec![true, false, false, true], Role::Label)
            .build()
            .unwrap();
        let result = reweigh(&ds, &["g1", "g2"]).unwrap();
        assert_eq!(result.cell_weights.len(), 8); // 4 cells × 2 labels
        assert_eq!(result.dataset.weights().len(), 4);
    }

    #[test]
    fn weight_mass_is_preserved() {
        let result = reweigh(&biased(), &["sex"]).unwrap();
        let total: f64 = result.dataset.weights().iter().sum();
        assert!((total - 20.0).abs() < 1e-9, "total weight {total}");
    }
}
