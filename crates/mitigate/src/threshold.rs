//! Per-group decision thresholds (Hardt, Price & Srebro — paper ref \[6\]).
//!
//! Post-processing repair: keep the scorer, move each group's decision
//! threshold so that the chosen rate condition holds on a calibration set.
//! Supported objectives: equal opportunity (match TPRs, Eq. 3) and
//! demographic parity (match selection rates, Eq. 1).

use fairbridge_tabular::{Dataset, GroupIndex, GroupKey, GroupSpec};
use std::collections::BTreeMap;

/// Which rate the per-group thresholds equalize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdObjective {
    /// Match each group's TPR to the overall TPR at threshold 0.5
    /// (equal opportunity, Eq. 3). Requires labels.
    EqualOpportunity,
    /// Match each group's selection rate to the overall selection rate at
    /// threshold 0.5 (demographic parity, Eq. 1).
    DemographicParity,
}

/// Fitted per-group thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupThresholds {
    /// The objective the thresholds were fitted for.
    pub objective: ThresholdObjective,
    /// Per-group thresholds.
    pub thresholds: BTreeMap<GroupKey, f64>,
    /// Fallback threshold for groups unseen at fit time.
    pub default_threshold: f64,
    /// The rate targeted (overall TPR or selection rate at 0.5).
    pub target_rate: f64,
}

impl GroupThresholds {
    /// Fits thresholds on a calibration dataset: `scores` are the model's
    /// probabilistic outputs for `ds`'s rows; groups come from the named
    /// protected columns. Labels are required for
    /// [`ThresholdObjective::EqualOpportunity`].
    pub fn fit(
        ds: &Dataset,
        protected: &[&str],
        scores: &[f64],
        objective: ThresholdObjective,
    ) -> Result<GroupThresholds, String> {
        if scores.len() != ds.n_rows() {
            return Err("scores length must match dataset rows".to_owned());
        }
        let groups = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
            .map_err(|e| e.to_string())?;
        let labels: Option<Vec<bool>> = match objective {
            ThresholdObjective::EqualOpportunity => {
                Some(ds.labels().map_err(|e| e.to_string())?.to_vec())
            }
            ThresholdObjective::DemographicParity => ds.labels().ok().map(<[bool]>::to_vec),
        };

        // Target rate: the rate achieved by the plain 0.5 threshold overall.
        let target_rate = match objective {
            ThresholdObjective::DemographicParity => {
                scores.iter().filter(|&&s| s >= 0.5).count() as f64 / scores.len().max(1) as f64
            }
            ThresholdObjective::EqualOpportunity => {
                let labels = labels.as_ref().expect("labels checked above");
                let pos: Vec<&f64> = scores
                    .iter()
                    .zip(labels)
                    .filter_map(|(s, &y)| y.then_some(s))
                    .collect();
                if pos.is_empty() {
                    return Err("equal opportunity fit requires positive instances".to_owned());
                }
                pos.iter().filter(|&&&s| s >= 0.5).count() as f64 / pos.len() as f64
            }
        };

        let mut thresholds = BTreeMap::new();
        for (key, rows) in groups.iter() {
            // The relevant score population for the rate condition.
            let pool: Vec<f64> = match objective {
                ThresholdObjective::DemographicParity => rows.iter().map(|&i| scores[i]).collect(),
                ThresholdObjective::EqualOpportunity => {
                    let labels = labels.as_ref().expect("labels checked above");
                    rows.iter()
                        .filter(|&&i| labels[i])
                        .map(|&i| scores[i])
                        .collect()
                }
            };
            let t = threshold_for_rate(&pool, target_rate);
            thresholds.insert(key.clone(), t);
        }
        Ok(GroupThresholds {
            objective,
            thresholds,
            default_threshold: 0.5,
            target_rate,
        })
    }

    /// Applies the thresholds: decisions for `ds`'s rows given `scores`.
    pub fn apply(
        &self,
        ds: &Dataset,
        protected: &[&str],
        scores: &[f64],
    ) -> Result<Vec<bool>, String> {
        if scores.len() != ds.n_rows() {
            return Err("scores length must match dataset rows".to_owned());
        }
        let groups = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
            .map_err(|e| e.to_string())?;
        let mut out = vec![false; ds.n_rows()];
        for (key, rows) in groups.iter() {
            let t = self
                .thresholds
                .get(key)
                .copied()
                .unwrap_or(self.default_threshold);
            for &i in rows {
                out[i] = scores[i] >= t;
            }
        }
        Ok(out)
    }

    /// The threshold fitted for a group, if any.
    pub fn threshold_for(&self, key: &GroupKey) -> Option<f64> {
        self.thresholds.get(key).copied()
    }
}

/// The threshold making `fraction ≥ t` of `pool` as close as possible to
/// `rate` from above (ties resolved toward selecting more).
fn threshold_for_rate(pool: &[f64], rate: f64) -> f64 {
    if pool.is_empty() {
        return 0.5;
    }
    let mut sorted = pool.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    let n = sorted.len();
    // Selecting k of n gives rate k/n; want k ≈ rate·n.
    let k = (rate * n as f64).round() as usize;
    let k = k.min(n);
    if k == 0 {
        // threshold above the max selects nobody
        return sorted[n - 1] + 1e-9;
    }
    // Select the top k: threshold at the k-th largest value.
    sorted[n - k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_metrics::outcome::Outcomes;
    use fairbridge_metrics::parity::demographic_parity;
    use fairbridge_tabular::Role;

    /// Scores systematically depressed for group f.
    fn biased_scores() -> (Dataset, Vec<f64>) {
        let n = 100;
        let sex: Vec<u32> = (0..n).map(|i| u32::from(i >= 50)).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let merit = if i % 2 == 0 { 0.7 } else { 0.3 };
                let penalty = if i >= 50 { 0.25 } else { 0.0 };
                (merit - penalty + (i % 5) as f64 * 0.01).clamp(0.0, 1.0)
            })
            .collect();
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], sex, Role::Protected)
            .boolean_with_role("y", labels, Role::Label)
            .build()
            .unwrap();
        (ds, scores)
    }

    #[test]
    fn demographic_parity_thresholds_close_the_gap() {
        let (ds, scores) = biased_scores();
        // Before: plain 0.5 threshold is grossly unfair.
        let naive: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        let ds_naive = ds.with_predictions("pred", naive).unwrap();
        let o = Outcomes::from_dataset(&ds_naive, &["sex"]).unwrap();
        let before = demographic_parity(&o, 0);
        assert!(before.summary.gap > 0.4);

        // After: fitted group thresholds equalize selection rates.
        let gt = GroupThresholds::fit(
            &ds,
            &["sex"],
            &scores,
            ThresholdObjective::DemographicParity,
        )
        .unwrap();
        let repaired = gt.apply(&ds, &["sex"], &scores).unwrap();
        let ds_fixed = ds.with_predictions("pred", repaired).unwrap();
        let o = Outcomes::from_dataset(&ds_fixed, &["sex"]).unwrap();
        let after = demographic_parity(&o, 0);
        assert!(after.summary.gap < 0.05, "gap {}", after.summary.gap);
        // the disadvantaged group got the lower threshold
        let tf = gt.threshold_for(&GroupKey(vec!["f".into()])).unwrap();
        let tm = gt.threshold_for(&GroupKey(vec!["m".into()])).unwrap();
        assert!(tf < tm);
    }

    #[test]
    fn equal_opportunity_thresholds_equalize_tpr() {
        let (ds, scores) = biased_scores();
        let gt = GroupThresholds::fit(&ds, &["sex"], &scores, ThresholdObjective::EqualOpportunity)
            .unwrap();
        let repaired = gt.apply(&ds, &["sex"], &scores).unwrap();
        let ds_fixed = ds.with_predictions("pred", repaired).unwrap();
        let o = Outcomes::from_dataset(&ds_fixed, &["sex"]).unwrap();
        let eo = fairbridge_metrics::opportunity::equal_opportunity(&o, 0).unwrap();
        assert!(eo.summary.gap < 0.06, "TPR gap {}", eo.summary.gap);
    }

    #[test]
    fn unseen_group_uses_default() {
        let (ds, scores) = biased_scores();
        let gt = GroupThresholds::fit(
            &ds,
            &["sex"],
            &scores,
            ThresholdObjective::DemographicParity,
        )
        .unwrap();
        // apply on a dataset with an extra unseen level
        let ds2 = Dataset::builder()
            .categorical_with_role("sex", vec!["x"], vec![0, 0], Role::Protected)
            .boolean_with_role("y", vec![true, false], Role::Label)
            .build()
            .unwrap();
        let out = gt.apply(&ds2, &["sex"], &[0.6, 0.4]).unwrap();
        assert_eq!(out, vec![true, false]); // default 0.5
    }

    #[test]
    fn threshold_for_rate_extremes() {
        assert_eq!(threshold_for_rate(&[], 0.5), 0.5);
        let pool = [0.1, 0.2, 0.3, 0.4];
        // rate 0 → nobody selected
        let t = threshold_for_rate(&pool, 0.0);
        assert!(pool.iter().all(|&s| s < t));
        // rate 1 → everybody
        let t = threshold_for_rate(&pool, 1.0);
        assert!(pool.iter().all(|&s| s >= t));
        // rate 0.5 → top 2
        let t = threshold_for_rate(&pool, 0.5);
        assert_eq!(pool.iter().filter(|&&s| s >= t).count(), 2);
    }

    #[test]
    fn validates_score_length() {
        let (ds, _) = biased_scores();
        assert!(GroupThresholds::fit(
            &ds,
            &["sex"],
            &[0.5; 3],
            ThresholdObjective::DemographicParity
        )
        .is_err());
    }
}
