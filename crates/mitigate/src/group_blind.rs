//! Group-blind distributional repair (paper references \[13\] Langbridge,
//! Quinn & Shorten and \[24\] Zhou & Marecek).
//!
//! Section IV.F: "there exist novel methods for so-called fairness repair
//! that do not require the protected attribute in the training data, but
//! rather only the population-wide marginals of the protected attribute,
//! which are widely available. While it may be impossible to quantify the
//! amount of bias without access to the protected attribute, it may be
//! possible to guarantee that any amount of bias has been compensated
//! for."
//!
//! Concretely: a small *research* sample (with protected attributes)
//! supplies per-group reference quantiles; the public marginals π supply
//! barycenter weights; the *deployment* data — which never reveals any
//! row's group — is repaired by the single monotone map
//! `T = G⁻¹ ∘ F_pooled`, where `F_pooled` is the deployment pooled CDF and
//! `G` the π-weighted barycenter of the research groups. Because `T` is
//! one map applied to every row, no per-row protected attribute is needed.

use fairbridge_stats::descriptive::quantile_sorted;

/// A fitted group-blind repairer.
///
/// Two maps are provided:
///
/// * [`GroupBlindRepairer::repair_value`] — the *pooled* map
///   `T = G⁻¹ ∘ F_pooled`: strictly rank-preserving, so it repairs the
///   overall scale but cannot re-order individuals; appropriate when group
///   distributions overlap heavily or when rank preservation is itself a
///   legal requirement.
/// * [`GroupBlindRepairer::repair_value_soft`] — the *posterior-weighted*
///   map `T(v) = Σ_g P(g|v) · G⁻¹(F_g(v))`: uses the research sample's
///   group-conditional densities and the public marginals to estimate
///   which group a value likely came from, then applies the corresponding
///   per-group quantile map in expectation. When group distributions are
///   well separated the posteriors are near-certain and this matches the
///   oracle (group-aware) repair — without ever seeing a row's group. The
///   guarantee degrades gracefully with overlap, exactly the caveat the
///   paper states ("it may be impossible to quantify the amount of bias
///   without access to the protected attribute").
#[derive(Debug, Clone)]
pub struct GroupBlindRepairer {
    /// Sorted per-group reference values from the research sample.
    research_sorted: Vec<Vec<f64>>,
    /// Population marginals π of the protected attribute.
    marginals: Vec<f64>,
    /// Sorted pooled deployment values (the domain of the pooled map).
    pooled_sorted: Vec<f64>,
    /// Histogram bin edges over the research range (for posteriors).
    bin_lo: f64,
    bin_width: f64,
    n_bins: usize,
    /// Per-group bin densities from the research sample.
    group_density: Vec<Vec<f64>>,
}

impl GroupBlindRepairer {
    /// Fits the repairer.
    ///
    /// * `research_values` / `research_groups` — the small sample *with*
    ///   protected attributes (archival or survey data);
    /// * `marginals` — population-wide group shares (must sum to 1);
    /// * `deployment_values` — the protected-attribute-free data to be
    ///   repaired (defines the pooled CDF).
    pub fn fit(
        research_values: &[f64],
        research_groups: &[u32],
        marginals: &[f64],
        deployment_values: &[f64],
    ) -> Result<GroupBlindRepairer, String> {
        if research_values.len() != research_groups.len() {
            return Err("research values/groups differ in length".to_owned());
        }
        if deployment_values.is_empty() {
            return Err("deployment data must be non-empty".to_owned());
        }
        let k = marginals.len();
        if k == 0 {
            return Err("need at least one group marginal".to_owned());
        }
        let total: f64 = marginals.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("marginals sum to {total}, expected 1"));
        }
        if marginals.iter().any(|&m| m < 0.0) {
            return Err("marginals must be non-negative".to_owned());
        }
        let mut research_sorted: Vec<Vec<f64>> = vec![Vec::new(); k];
        for (&v, &g) in research_values.iter().zip(research_groups) {
            let g = g as usize;
            if g >= k {
                return Err(format!("research group code {g} out of range"));
            }
            if v.is_nan() {
                return Err("research values must not contain NaN".to_owned());
            }
            research_sorted[g].push(v);
        }
        if research_sorted
            .iter()
            .zip(marginals)
            .any(|(g, &m)| m > 0.0 && g.is_empty())
        {
            return Err("every group with positive marginal needs research samples".to_owned());
        }
        for g in &mut research_sorted {
            g.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        }
        let mut pooled_sorted = deployment_values.to_vec();
        if pooled_sorted.iter().any(|v| v.is_nan()) {
            return Err("deployment values must not contain NaN".to_owned());
        }
        pooled_sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));

        // Research-sample histogram densities per group (shared bins over
        // the research range), with add-one smoothing so posteriors stay
        // defined everywhere.
        let lo = research_values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = research_values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let n_bins = 20usize;
        let (bin_lo, bin_width) = if hi > lo {
            (lo, (hi - lo) / n_bins as f64)
        } else {
            (lo - 0.5, 1.0 / n_bins as f64)
        };
        let mut group_density = vec![vec![1.0; n_bins]; k]; // smoothing
        for (&v, &g) in research_values.iter().zip(research_groups) {
            let idx =
                (((v - bin_lo) / bin_width).floor() as i64).clamp(0, n_bins as i64 - 1) as usize;
            group_density[g as usize][idx] += 1.0;
        }
        for dens in &mut group_density {
            let total: f64 = dens.iter().sum();
            dens.iter_mut().for_each(|d| *d /= total);
        }

        Ok(GroupBlindRepairer {
            research_sorted,
            marginals: marginals.to_vec(),
            pooled_sorted,
            bin_lo,
            bin_width,
            n_bins,
            group_density,
        })
    }

    /// Posterior group probabilities P(g | v) ∝ π_g · f̂_g(v) from the
    /// research histogram densities.
    pub fn posterior(&self, v: f64) -> Vec<f64> {
        let idx = (((v - self.bin_lo) / self.bin_width).floor() as i64)
            .clamp(0, self.n_bins as i64 - 1) as usize;
        let mut post: Vec<f64> = self
            .group_density
            .iter()
            .zip(&self.marginals)
            .map(|(dens, &m)| m * dens[idx])
            .collect();
        let total: f64 = post.iter().sum();
        if total > 0.0 {
            post.iter_mut().for_each(|p| *p /= total);
        }
        post
    }

    /// Quantile level of `v` within research group `g` (mid-rank).
    fn research_level(&self, g: usize, v: f64) -> f64 {
        let sorted = &self.research_sorted[g];
        if sorted.is_empty() {
            return 0.5;
        }
        let below = sorted.partition_point(|&s| s < v);
        let not_above = sorted.partition_point(|&s| s <= v);
        (((below + not_above) as f64 / 2.0) / sorted.len() as f64).clamp(0.0, 1.0)
    }

    /// Posterior-weighted repair: `T(v) = Σ_g P(g|v) · G⁻¹(F_g(v))`,
    /// blended with the original value at strength `lambda`.
    pub fn repair_value_soft(&self, v: f64, lambda: f64) -> f64 {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        let post = self.posterior(v);
        let target: f64 = post
            .iter()
            .enumerate()
            .filter(|(g, &p)| p > 0.0 && !self.research_sorted[*g].is_empty())
            .map(|(g, &p)| {
                let t = self.research_level(g, v);
                p * self.barycenter_quantile(t)
            })
            .sum();
        (1.0 - lambda) * v + lambda * target
    }

    /// Soft-repairs a full deployment column.
    pub fn repair_all_soft(&self, values: &[f64], lambda: f64) -> Vec<f64> {
        values
            .iter()
            .map(|&v| self.repair_value_soft(v, lambda))
            .collect()
    }

    /// The barycenter quantile G⁻¹(t) under the population marginals.
    pub fn barycenter_quantile(&self, t: f64) -> f64 {
        self.research_sorted
            .iter()
            .zip(&self.marginals)
            .filter(|(g, &m)| m > 0.0 && !g.is_empty())
            .map(|(g, &m)| m * quantile_sorted(g, t))
            .sum()
    }

    /// Repairs a single deployment value (no group needed) at strength
    /// `lambda` ∈ \[0,1\].
    pub fn repair_value(&self, v: f64, lambda: f64) -> f64 {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        // t = F_pooled(v) with mid-rank handling of ties.
        let below = self.pooled_sorted.partition_point(|&s| s < v);
        let not_above = self.pooled_sorted.partition_point(|&s| s <= v);
        let t = ((below + not_above) as f64 / 2.0) / self.pooled_sorted.len() as f64;
        let target = self.barycenter_quantile(t.clamp(0.0, 1.0));
        (1.0 - lambda) * v + lambda * target
    }

    /// Repairs a full deployment column.
    pub fn repair_all(&self, values: &[f64], lambda: f64) -> Vec<f64> {
        values
            .iter()
            .map(|&v| self.repair_value(v, lambda))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_stats::distribution::Empirical;
    use fairbridge_stats::rng::Rng;
    use fairbridge_stats::rng::StdRng;
    use fairbridge_stats::wasserstein_1d;

    /// Two groups with shifted score distributions; deployment data drawn
    /// from the π-mixture. Groups of deployment rows are KNOWN to the test
    /// (for evaluation) but NEVER given to the repairer.
    struct World {
        research_values: Vec<f64>,
        research_groups: Vec<u32>,
        deployment_values: Vec<f64>,
        deployment_groups: Vec<u32>, // evaluation-only
        marginals: Vec<f64>,
    }

    fn world(seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let marginals = vec![0.7, 0.3];
        let draw = |g: u32, rng: &mut StdRng| -> f64 {
            // group 0 ~ U[1, 2], group 1 ~ U[0, 1] (disadvantaged)
            if g == 0 {
                1.0 + rng.gen::<f64>()
            } else {
                rng.gen::<f64>()
            }
        };
        let mut research_values = Vec::new();
        let mut research_groups = Vec::new();
        // large enough that the per-group density estimates are stable —
        // the assertions below probe estimator quality, not sample noise
        for _ in 0..500 {
            let g = u32::from(rng.gen::<f64>() < marginals[1]);
            research_groups.push(g);
            research_values.push(draw(g, &mut rng));
        }
        let mut deployment_values = Vec::new();
        let mut deployment_groups = Vec::new();
        for _ in 0..3000 {
            let g = u32::from(rng.gen::<f64>() < marginals[1]);
            deployment_groups.push(g);
            deployment_values.push(draw(g, &mut rng));
        }
        World {
            research_values,
            research_groups,
            deployment_values,
            deployment_groups,
            marginals,
        }
    }

    fn group_gap(values: &[f64], groups: &[u32]) -> f64 {
        let g0: Vec<f64> = values
            .iter()
            .zip(groups)
            .filter_map(|(&v, &g)| (g == 0).then_some(v))
            .collect();
        let g1: Vec<f64> = values
            .iter()
            .zip(groups)
            .filter_map(|(&v, &g)| (g == 1).then_some(v))
            .collect();
        wasserstein_1d(&Empirical::new(g0).unwrap(), &Empirical::new(g1).unwrap())
    }

    #[test]
    fn repair_reduces_group_gap_without_seeing_groups() {
        let w = world(7);
        let before = group_gap(&w.deployment_values, &w.deployment_groups);
        assert!(before > 0.9, "planted gap {before}");

        let repairer = GroupBlindRepairer::fit(
            &w.research_values,
            &w.research_groups,
            &w.marginals,
            &w.deployment_values,
        )
        .unwrap();
        let repaired = repairer.repair_all(&w.deployment_values, 1.0);
        let after = group_gap(&repaired, &w.deployment_groups);
        // For these disjoint uniforms the rank-preserving pooled map
        // yields exactly half the original W1 gap in the population limit
        // (groups land on U[0.7,1.0] and U[1.0,1.7]), so test just above
        // that boundary; the posterior-weighted map (tested separately)
        // is what collapses the gap further.
        assert!(after < before * 0.55, "gap before {before}, after {after}");
    }

    #[test]
    fn repair_shrinks_selection_rate_gap_at_absolute_cutoff() {
        // A fixed qualification cutoff on the barycenter scale (the
        // repaired feature feeds a downstream rule with an absolute
        // threshold). The repair map is monotone, so rank-based selection
        // is untouched by design; absolute-cutoff selection equalizes.
        let w = world(8);
        let repairer = GroupBlindRepairer::fit(
            &w.research_values,
            &w.research_groups,
            &w.marginals,
            &w.deployment_values,
        )
        .unwrap();
        let thr = repairer.barycenter_quantile(0.6);
        let rate = |vals: &[f64], groups: &[u32], g: u32| {
            let sel: Vec<bool> = vals
                .iter()
                .zip(groups)
                .filter_map(|(&v, &gg)| (gg == g).then_some(v >= thr))
                .collect();
            sel.iter().filter(|&&s| s).count() as f64 / sel.len() as f64
        };
        let gap_before = (rate(&w.deployment_values, &w.deployment_groups, 0)
            - rate(&w.deployment_values, &w.deployment_groups, 1))
        .abs();
        let repaired = repairer.repair_all_soft(&w.deployment_values, 1.0);
        let gap_after = (rate(&repaired, &w.deployment_groups, 0)
            - rate(&repaired, &w.deployment_groups, 1))
        .abs();
        assert!(gap_before > 0.5, "planted gap {gap_before}");
        assert!(
            gap_after < gap_before * 0.3,
            "before {gap_before}, after {gap_after}"
        );
    }

    #[test]
    fn soft_repair_collapses_group_gap_like_oracle() {
        let w = world(12);
        let repairer = GroupBlindRepairer::fit(
            &w.research_values,
            &w.research_groups,
            &w.marginals,
            &w.deployment_values,
        )
        .unwrap();
        let before = group_gap(&w.deployment_values, &w.deployment_groups);
        let repaired = repairer.repair_all_soft(&w.deployment_values, 1.0);
        let after = group_gap(&repaired, &w.deployment_groups);
        assert!(after < before * 0.2, "W1 before {before}, after {after}");
    }

    #[test]
    fn posterior_identifies_separated_groups() {
        let w = world(13);
        let repairer = GroupBlindRepairer::fit(
            &w.research_values,
            &w.research_groups,
            &w.marginals,
            &w.deployment_values,
        )
        .unwrap();
        // deep inside group 1's support ([0,1]) the posterior favors 1
        let p = repairer.posterior(0.2);
        assert!(p[1] > 0.8, "posterior {p:?}");
        // deep inside group 0's support ([1,2]) it favors 0
        let p = repairer.posterior(1.8);
        assert!(p[0] > 0.8, "posterior {p:?}");
        // posteriors always sum to 1
        let p = repairer.posterior(1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_is_identity() {
        let w = world(9);
        let repairer = GroupBlindRepairer::fit(
            &w.research_values,
            &w.research_groups,
            &w.marginals,
            &w.deployment_values,
        )
        .unwrap();
        let repaired = repairer.repair_all(&w.deployment_values, 0.0);
        assert_eq!(repaired, w.deployment_values);
    }

    #[test]
    fn map_is_monotone() {
        let w = world(10);
        let repairer = GroupBlindRepairer::fit(
            &w.research_values,
            &w.research_groups,
            &w.marginals,
            &w.deployment_values,
        )
        .unwrap();
        let mut vals = w.deployment_values.clone();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let repaired = repairer.repair_all(&vals, 1.0);
        for pair in repaired.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(GroupBlindRepairer::fit(&[1.0], &[0, 1], &[1.0], &[1.0]).is_err());
        assert!(GroupBlindRepairer::fit(&[1.0], &[0], &[0.5, 0.4], &[1.0]).is_err()); // bad marginals
        assert!(GroupBlindRepairer::fit(&[1.0], &[0], &[0.5, 0.5], &[1.0]).is_err()); // empty group 1
        assert!(GroupBlindRepairer::fit(&[1.0], &[0], &[1.0], &[]).is_err()); // empty deployment
    }
}
