//! Reject-option classification (Kamiran, Karim & Zhang 2012) —
//! post-processing in the spirit of the paper's Section IV.A: decisions
//! near the decision boundary (where the model is least certain) are
//! reassigned in favour of the disadvantaged group.
//!
//! Outside the critical band `|score − 0.5| ≥ margin` decisions are left
//! untouched, so the intervention is minimal and auditable — a property
//! the proportionality test of EU indirect-discrimination doctrine
//! (Section II.A.3) cares about.

use fairbridge_tabular::{Dataset, GroupIndex, GroupKey, GroupSpec};

/// The reject-option rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectOptionRule {
    /// Half-width of the critical band around 0.5.
    pub margin: f64,
    /// Key of the disadvantaged group (gets + inside the band).
    pub disadvantaged: GroupKey,
}

/// The application result.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectOptionResult {
    /// Final decisions.
    pub decisions: Vec<bool>,
    /// Rows whose decision was changed by the rule.
    pub changed: Vec<usize>,
}

impl RejectOptionRule {
    /// Creates the rule; `margin` must be in (0, 0.5].
    pub fn new(margin: f64, disadvantaged: GroupKey) -> Result<RejectOptionRule, String> {
        if !(margin > 0.0 && margin <= 0.5) {
            return Err("margin must be in (0, 0.5]".to_owned());
        }
        Ok(RejectOptionRule {
            margin,
            disadvantaged,
        })
    }

    /// Applies the rule: inside the critical band, disadvantaged-group
    /// members get the favorable outcome and everyone else the
    /// unfavorable one; outside the band, the score's own verdict stands.
    pub fn apply(
        &self,
        ds: &Dataset,
        protected: &[&str],
        scores: &[f64],
    ) -> Result<RejectOptionResult, String> {
        if scores.len() != ds.n_rows() {
            return Err("scores length must match dataset rows".to_owned());
        }
        let groups = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
            .map_err(|e| e.to_string())?;
        let mut in_disadvantaged = vec![false; ds.n_rows()];
        match groups.rows(&self.disadvantaged) {
            Some(rows) => {
                for &r in rows {
                    in_disadvantaged[r] = true;
                }
            }
            None => {
                return Err(format!(
                    "disadvantaged group {} not present in the data",
                    self.disadvantaged
                ))
            }
        }
        let mut decisions = Vec::with_capacity(ds.n_rows());
        let mut changed = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            let base = s >= 0.5;
            let final_decision = if (s - 0.5).abs() < self.margin {
                in_disadvantaged[i]
            } else {
                base
            };
            if final_decision != base {
                changed.push(i);
            }
            decisions.push(final_decision);
        }
        Ok(RejectOptionResult { decisions, changed })
    }
}

/// Fits the smallest margin (from `candidates`) whose post-rule
/// demographic-parity gap falls below `tolerance` on the calibration
/// data. Returns the fitted rule, or the largest candidate if none
/// reaches the tolerance (best effort).
pub fn fit_margin(
    ds: &Dataset,
    protected: &[&str],
    scores: &[f64],
    disadvantaged: GroupKey,
    candidates: &[f64],
    tolerance: f64,
) -> Result<RejectOptionRule, String> {
    if candidates.is_empty() {
        return Err("no margin candidates supplied".to_owned());
    }
    let mut sorted = candidates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN margin"));
    let groups = GroupIndex::build(ds, &GroupSpec::intersection(protected.to_vec()))
        .map_err(|e| e.to_string())?;

    let gap_of = |decisions: &[bool]| -> f64 {
        let mut rates = Vec::new();
        for (_, rows) in groups.iter() {
            if rows.is_empty() {
                continue;
            }
            let pos = rows.iter().filter(|&&i| decisions[i]).count();
            rates.push(pos as f64 / rows.len() as f64);
        }
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };

    // Return the smallest margin meeting the tolerance; if none does,
    // fall back to the candidate with the smallest achieved gap (a larger
    // margin can overshoot and invert the disparity, so "largest tried"
    // is not a safe default).
    let mut best: Option<(f64, RejectOptionRule)> = None;
    for &margin in &sorted {
        let rule = RejectOptionRule::new(margin, disadvantaged.clone())?;
        let result = rule.apply(ds, protected, scores)?;
        let gap = gap_of(&result.decisions);
        if gap <= tolerance {
            return Ok(rule);
        }
        if best.as_ref().map_or(true, |(g, _)| gap < *g) {
            best = Some((gap, rule));
        }
    }
    Ok(best.expect("candidates non-empty").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairbridge_tabular::Role;

    /// Scores depressed by 0.2 for group "f", on a fine grid so the band
    /// contains members of both groups at distinct positions.
    fn world() -> (Dataset, Vec<f64>) {
        let n = 400;
        let mut codes = Vec::new();
        let mut scores = Vec::new();
        for i in 0..n {
            let f = i % 2 == 1;
            let base = ((i / 2) % 40) as f64 / 40.0 + 0.0125;
            codes.push(u32::from(f));
            scores.push((base - if f { 0.2 } else { 0.0 }).clamp(0.0, 1.0));
        }
        let ds = Dataset::builder()
            .categorical_with_role("sex", vec!["m", "f"], codes, Role::Protected)
            .boolean_with_role("y", vec![true; n], Role::Label)
            .build()
            .unwrap();
        (ds, scores)
    }

    fn gap(ds: &Dataset, decisions: &[bool]) -> f64 {
        let (_, codes) = ds.categorical("sex").unwrap();
        let rate = |c: u32| {
            let v: Vec<bool> = codes
                .iter()
                .zip(decisions)
                .filter_map(|(&g, &d)| (g == c).then_some(d))
                .collect();
            v.iter().filter(|&&d| d).count() as f64 / v.len() as f64
        };
        (rate(0) - rate(1)).abs()
    }

    #[test]
    fn rule_shrinks_the_gap_and_touches_only_the_band() {
        let (ds, scores) = world();
        let naive: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        let before = gap(&ds, &naive);
        assert!(before > 0.15, "planted gap {before}");

        let rule = RejectOptionRule::new(0.15, GroupKey(vec!["f".into()])).unwrap();
        let result = rule.apply(&ds, &["sex"], &scores).unwrap();
        let after = gap(&ds, &result.decisions);
        assert!(after < before, "gap {before} -> {after}");
        // every changed row was inside the band
        for &i in &result.changed {
            assert!((scores[i] - 0.5).abs() < 0.15, "row {i} outside band");
        }
        // rows far from the boundary untouched
        for (i, &s) in scores.iter().enumerate() {
            if (s - 0.5).abs() >= 0.15 {
                assert_eq!(result.decisions[i], s >= 0.5);
            }
        }
    }

    #[test]
    fn wider_margin_changes_more_rows() {
        let (ds, scores) = world();
        let narrow = RejectOptionRule::new(0.05, GroupKey(vec!["f".into()]))
            .unwrap()
            .apply(&ds, &["sex"], &scores)
            .unwrap();
        let wide = RejectOptionRule::new(0.3, GroupKey(vec!["f".into()]))
            .unwrap()
            .apply(&ds, &["sex"], &scores)
            .unwrap();
        assert!(wide.changed.len() >= narrow.changed.len());
    }

    #[test]
    fn fit_margin_picks_smallest_sufficient() {
        let (ds, scores) = world();
        let rule = fit_margin(
            &ds,
            &["sex"],
            &scores,
            GroupKey(vec!["f".into()]),
            &[0.05, 0.1, 0.15, 0.25, 0.35],
            0.05,
        )
        .unwrap();
        let result = rule.apply(&ds, &["sex"], &scores).unwrap();
        assert!(gap(&ds, &result.decisions) <= 0.05 + 1e-9);
        // a smaller candidate would not have sufficed
        if rule.margin > 0.05 {
            let smaller = RejectOptionRule::new(rule.margin - 0.05, GroupKey(vec!["f".into()]))
                .unwrap()
                .apply(&ds, &["sex"], &scores)
                .unwrap();
            assert!(gap(&ds, &smaller.decisions) > 0.05);
        }
    }

    #[test]
    fn validates_inputs() {
        let (ds, scores) = world();
        assert!(RejectOptionRule::new(0.0, GroupKey(vec!["f".into()])).is_err());
        assert!(RejectOptionRule::new(0.6, GroupKey(vec!["f".into()])).is_err());
        let rule = RejectOptionRule::new(0.1, GroupKey(vec!["nope".into()])).unwrap();
        assert!(rule.apply(&ds, &["sex"], &scores).is_err());
        let ok = RejectOptionRule::new(0.1, GroupKey(vec!["f".into()])).unwrap();
        assert!(ok.apply(&ds, &["sex"], &scores[..3]).is_err());
    }
}
