//! The [`Dataset`] type and its builder.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::schema::{FieldMeta, Role, Schema};
use crate::value::Value;

/// An immutable, column-oriented table with fairness-aware schema roles.
///
/// Rows are instances (individuals); columns are attributes. Columns carry a
/// [`Role`] so that metric and audit code can locate the protected attribute
/// `A`, the label `Y` and the prediction `R` without string conventions.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// Starts building a dataset column by column.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder::default()
    }

    /// Number of rows (instances).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (attributes).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Numeric data of the named column.
    pub fn numeric(&self, name: &str) -> Result<&[f64]> {
        self.column(name)?.as_numeric(name)
    }

    /// Boolean data of the named column.
    pub fn boolean(&self, name: &str) -> Result<&[bool]> {
        self.column(name)?.as_boolean(name)
    }

    /// Categorical `(levels, codes)` of the named column.
    pub fn categorical(&self, name: &str) -> Result<(&[String], &[u32])> {
        self.column(name)?.as_categorical(name)
    }

    /// Names of all protected columns, in column order.
    pub fn protected_columns(&self) -> Vec<&str> {
        self.schema.names_with_role(Role::Protected)
    }

    /// Names of all feature columns, in column order.
    pub fn feature_columns(&self) -> Vec<&str> {
        self.schema.names_with_role(Role::Feature)
    }

    /// The unique label column as booleans (`Y` in the paper).
    pub fn labels(&self) -> Result<&[bool]> {
        let meta = self.schema.single_with_role(Role::Label)?;
        let name = meta.name.clone();
        self.boolean(&name)
    }

    /// The unique prediction column as booleans (`R` in the paper).
    pub fn predictions(&self) -> Result<&[bool]> {
        let meta = self.schema.single_with_role(Role::Prediction)?;
        let name = meta.name.clone();
        self.boolean(&name)
    }

    /// The unique weight column, if any; defaults to uniform weights of 1.
    pub fn weights(&self) -> Vec<f64> {
        match self.schema.single_with_role(Role::Weight) {
            Ok(meta) => {
                let name = meta.name.clone();
                self.numeric(&name)
                    .map(<[f64]>::to_vec)
                    .unwrap_or_else(|_| vec![1.0; self.n_rows])
            }
            Err(_) => vec![1.0; self.n_rows],
        }
    }

    /// The full row at `row`, with categorical codes resolved to levels.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(Error::RowOutOfRange {
                row,
                n_rows: self.n_rows,
            });
        }
        Ok(self
            .columns
            .iter()
            .map(|c| c.value(row).expect("validated length"))
            .collect())
    }

    /// A new dataset with an extra column appended.
    pub fn with_column(&self, name: &str, column: Column, role: Role) -> Result<Dataset> {
        if column.len() != self.n_rows {
            return Err(Error::LengthMismatch {
                column: name.to_owned(),
                expected: self.n_rows,
                actual: column.len(),
            });
        }
        let mut schema = self.schema.clone();
        schema.push(FieldMeta {
            name: name.to_owned(),
            dtype: column.dtype(),
            role,
        })?;
        let mut columns = self.columns.clone();
        columns.push(column);
        Ok(Dataset {
            schema,
            columns,
            n_rows: self.n_rows,
        })
    }

    /// Convenience: appends boolean predictions under the given name.
    ///
    /// If a prediction column already exists its role is demoted to
    /// [`Role::Ignored`], so the new column becomes *the* prediction.
    pub fn with_predictions(&self, name: &str, preds: Vec<bool>) -> Result<Dataset> {
        let mut ds = self.clone();
        if let Ok(old) = ds.schema.single_with_role(Role::Prediction) {
            let old_name = old.name.clone();
            ds.schema.set_role(&old_name, Role::Ignored)?;
        }
        ds.with_column(name, Column::Boolean(preds), Role::Prediction)
    }

    /// A new dataset without the named column.
    pub fn drop_column(&self, name: &str) -> Result<Dataset> {
        let idx = self.schema.index_of(name)?;
        let mut schema = Schema::new();
        let mut columns = Vec::with_capacity(self.columns.len() - 1);
        for (i, (meta, col)) in self
            .schema
            .fields()
            .iter()
            .zip(self.columns.iter())
            .enumerate()
        {
            if i != idx {
                schema.push(meta.clone())?;
                columns.push(col.clone());
            }
        }
        Ok(Dataset {
            schema,
            columns,
            n_rows: self.n_rows,
        })
    }

    /// A new dataset with the named column's role changed.
    pub fn with_role(&self, name: &str, role: Role) -> Result<Dataset> {
        let mut ds = self.clone();
        ds.schema.set_role(name, role)?;
        Ok(ds)
    }

    /// A new dataset containing only the rows in `indices`, in that order.
    /// Indices may repeat (bootstrap resampling).
    pub fn select(&self, indices: &[usize]) -> Result<Dataset> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.n_rows) {
            return Err(Error::RowOutOfRange {
                row: bad,
                n_rows: self.n_rows,
            });
        }
        Ok(Dataset {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            n_rows: indices.len(),
        })
    }

    /// A new dataset containing only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Dataset> {
        if mask.len() != self.n_rows {
            return Err(Error::LengthMismatch {
                column: "<mask>".to_owned(),
                expected: self.n_rows,
                actual: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.select(&indices)
    }

    /// Vertically concatenates two datasets with identical schemas.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.schema != other.schema {
            return Err(Error::Invalid(
                "cannot concat datasets with different schemas".to_owned(),
            ));
        }
        let mut columns = Vec::with_capacity(self.columns.len());
        for ((a, b), meta) in self
            .columns
            .iter()
            .zip(other.columns.iter())
            .zip(self.schema.fields())
        {
            let merged = match (a, b) {
                (Column::Numeric(x), Column::Numeric(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Numeric(v)
                }
                (Column::Boolean(x), Column::Boolean(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Column::Boolean(v)
                }
                (
                    Column::Categorical { levels, codes },
                    Column::Categorical {
                        levels: l2,
                        codes: c2,
                    },
                ) => {
                    // Remap other's codes into this dictionary, extending it
                    // with unseen levels.
                    let mut levels = levels.clone();
                    let mut codes = codes.clone();
                    let remap: Vec<u32> = l2
                        .iter()
                        .map(|lv| match levels.iter().position(|l| l == lv) {
                            Some(i) => i as u32,
                            None => {
                                levels.push(lv.clone());
                                (levels.len() - 1) as u32
                            }
                        })
                        .collect();
                    codes.extend(c2.iter().map(|&c| remap[c as usize]));
                    Column::Categorical { levels, codes }
                }
                _ => {
                    return Err(Error::TypeMismatch {
                        column: meta.name.clone(),
                        expected: a.dtype().name(),
                        actual: b.dtype().name(),
                    })
                }
            };
            columns.push(merged);
        }
        Ok(Dataset {
            schema: self.schema.clone(),
            columns,
            n_rows: self.n_rows + other.n_rows,
        })
    }
}

/// Incremental, validating constructor for [`Dataset`].
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
    error: Option<Error>,
}

impl DatasetBuilder {
    fn push(mut self, name: &str, column: Column, role: Role) -> Self {
        if self.error.is_some() {
            return self;
        }
        let meta = FieldMeta {
            name: name.to_owned(),
            dtype: column.dtype(),
            role,
        };
        if let Err(e) = self.schema.push(meta) {
            self.error = Some(e);
            return self;
        }
        self.columns.push(column);
        self
    }

    /// Adds a numeric feature column.
    pub fn numeric(self, name: &str, values: Vec<f64>) -> Self {
        self.push(name, Column::Numeric(values), Role::Feature)
    }

    /// Adds a numeric column with an explicit role.
    pub fn numeric_with_role(self, name: &str, values: Vec<f64>, role: Role) -> Self {
        self.push(name, Column::Numeric(values), role)
    }

    /// Adds a boolean feature column.
    pub fn boolean(self, name: &str, values: Vec<bool>) -> Self {
        self.push(name, Column::Boolean(values), Role::Feature)
    }

    /// Adds a boolean column with an explicit role (e.g. [`Role::Label`]).
    pub fn boolean_with_role(self, name: &str, values: Vec<bool>, role: Role) -> Self {
        self.push(name, Column::Boolean(values), role)
    }

    /// Adds a categorical feature column from raw strings, building the
    /// dictionary in first-appearance order.
    pub fn categorical_strs<S: AsRef<str>>(self, name: &str, values: &[S]) -> Self {
        self.push(name, Column::categorical_from_strs(values), Role::Feature)
    }

    /// Adds a categorical column with a fixed dictionary, explicit codes and
    /// an explicit role. This is the usual way to add a protected attribute.
    pub fn categorical_with_role<S: Into<String>>(
        mut self,
        name: &str,
        levels: Vec<S>,
        codes: Vec<u32>,
        role: Role,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let levels: Vec<String> = levels.into_iter().map(Into::into).collect();
        match Column::categorical_from_codes(levels, codes, name) {
            Ok(col) => self.push(name, col, role),
            Err(e) => {
                self.error = Some(e);
                self
            }
        }
    }

    /// Validates column lengths and produces the dataset.
    pub fn build(self) -> Result<Dataset> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.columns.is_empty() {
            return Err(Error::Invalid(
                "dataset must have at least one column".into(),
            ));
        }
        let n_rows = self.columns.first().map(Column::len).unwrap_or(0);
        for (meta, col) in self.schema.fields().iter().zip(self.columns.iter()) {
            if col.len() != n_rows {
                return Err(Error::LengthMismatch {
                    column: meta.name.clone(),
                    expected: n_rows,
                    actual: col.len(),
                });
            }
        }
        Ok(Dataset {
            schema: self.schema,
            columns: self.columns,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 0, 1, 1],
                Role::Protected,
            )
            .numeric("exp", vec![5.0, 3.0, 4.0, 2.0])
            .boolean_with_role("hired", vec![true, false, true, false], Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_dataset() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.protected_columns(), vec!["sex"]);
        assert_eq!(ds.feature_columns(), vec!["exp"]);
        assert_eq!(ds.labels().unwrap(), &[true, false, true, false]);
    }

    #[test]
    fn builder_rejects_length_mismatch() {
        let err = Dataset::builder()
            .numeric("a", vec![1.0, 2.0])
            .numeric("b", vec![1.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::LengthMismatch { .. }));
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(Dataset::builder().build().is_err());
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let err = Dataset::builder()
            .numeric("a", vec![1.0])
            .numeric("a", vec![2.0])
            .build()
            .unwrap_err();
        assert_eq!(err, Error::DuplicateColumn("a".into()));
    }

    #[test]
    fn select_and_filter() {
        let ds = sample();
        let sub = ds.select(&[3, 1]).unwrap();
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.numeric("exp").unwrap(), &[2.0, 3.0]);

        let females = ds.filter(&[false, false, true, true]).unwrap();
        assert_eq!(females.n_rows(), 2);
        let (_, codes) = females.categorical("sex").unwrap();
        assert_eq!(codes, &[1, 1]);

        assert!(ds.select(&[9]).is_err());
        assert!(ds.filter(&[true]).is_err());
    }

    #[test]
    fn with_predictions_demotes_old() {
        let ds = sample();
        let ds = ds
            .with_predictions("pred_a", vec![true, true, false, false])
            .unwrap();
        assert_eq!(ds.predictions().unwrap(), &[true, true, false, false]);
        let ds = ds
            .with_predictions("pred_b", vec![false, false, true, true])
            .unwrap();
        assert_eq!(ds.predictions().unwrap(), &[false, false, true, true]);
        // old column still present, but ignored
        assert_eq!(ds.schema().field("pred_a").unwrap().role, Role::Ignored);
    }

    #[test]
    fn drop_column_removes() {
        let ds = sample().drop_column("exp").unwrap();
        assert_eq!(ds.n_cols(), 2);
        assert!(ds.column("exp").is_err());
        assert_eq!(ds.n_rows(), 4);
    }

    #[test]
    fn row_resolves_values() {
        let ds = sample();
        let row = ds.row(2).unwrap();
        assert_eq!(row[0], Value::Cat("female".into()));
        assert_eq!(row[1], Value::Num(4.0));
        assert_eq!(row[2], Value::Bool(true));
        assert!(ds.row(4).is_err());
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = Dataset::builder()
            .categorical_strs("city", &["a", "b"])
            .build()
            .unwrap();
        let b = Dataset::builder()
            .categorical_strs("city", &["c", "a"])
            .build()
            .unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.n_rows(), 4);
        let (levels, codes) = c.categorical("city").unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(codes[3], 0); // "a" again
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let a = sample();
        let b = sample().drop_column("exp").unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn weights_default_to_uniform() {
        let ds = sample();
        assert_eq!(ds.weights(), vec![1.0; 4]);
        let ds = ds
            .with_column("w", Column::Numeric(vec![0.5, 1.5, 1.0, 1.0]), Role::Weight)
            .unwrap();
        assert_eq!(ds.weights(), vec![0.5, 1.5, 1.0, 1.0]);
    }
}
