//! Typed columns.

use crate::error::{Error, Result};
use crate::value::{DType, Value};

/// A single typed column of data.
///
/// Categorical columns are dictionary-encoded: `levels` holds the distinct
/// level names and `codes[i]` indexes into it. This makes group-by — the
/// fundamental operation of group-fairness metrics — integer bucketing.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dictionary-encoded categorical column.
    Categorical {
        /// Distinct level names; `codes` index into this.
        levels: Vec<String>,
        /// Per-row level codes.
        codes: Vec<u32>,
    },
    /// Dense floating-point column.
    Numeric(Vec<f64>),
    /// Dense boolean column.
    Boolean(Vec<bool>),
}

impl Column {
    /// Builds a categorical column from raw level strings, constructing the
    /// dictionary in first-appearance order.
    pub fn categorical_from_strs<S: AsRef<str>>(values: &[S]) -> Column {
        let mut levels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let v = v.as_ref();
            let code = match levels.iter().position(|l| l == v) {
                Some(i) => i as u32,
                None => {
                    levels.push(v.to_owned());
                    (levels.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        Column::Categorical { levels, codes }
    }

    /// Builds a categorical column from a fixed dictionary and codes,
    /// validating every code against the dictionary.
    pub fn categorical_from_codes(
        levels: Vec<String>,
        codes: Vec<u32>,
        column_name: &str,
    ) -> Result<Column> {
        let n_levels = levels.len();
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= n_levels) {
            return Err(Error::CodeOutOfRange {
                column: column_name.to_owned(),
                code: bad,
                n_levels,
            });
        }
        Ok(Column::Categorical { levels, codes })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Numeric(v) => v.len(),
            Column::Boolean(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Categorical { .. } => DType::Categorical,
            Column::Numeric(_) => DType::Numeric,
            Column::Boolean(_) => DType::Boolean,
        }
    }

    /// The cell at `row`, with categorical codes resolved to level names.
    pub fn value(&self, row: usize) -> Option<Value> {
        match self {
            Column::Categorical { levels, codes } => codes
                .get(row)
                .map(|&c| Value::Cat(levels[c as usize].clone())),
            Column::Numeric(v) => v.get(row).map(|&x| Value::Num(x)),
            Column::Boolean(v) => v.get(row).map(|&b| Value::Bool(b)),
        }
    }

    /// Numeric data slice, or a type error mentioning `name`.
    pub fn as_numeric(&self, name: &str) -> Result<&[f64]> {
        match self {
            Column::Numeric(v) => Ok(v),
            other => Err(Error::TypeMismatch {
                column: name.to_owned(),
                expected: DType::Numeric.name(),
                actual: other.dtype().name(),
            }),
        }
    }

    /// Boolean data slice, or a type error mentioning `name`.
    pub fn as_boolean(&self, name: &str) -> Result<&[bool]> {
        match self {
            Column::Boolean(v) => Ok(v),
            other => Err(Error::TypeMismatch {
                column: name.to_owned(),
                expected: DType::Boolean.name(),
                actual: other.dtype().name(),
            }),
        }
    }

    /// Categorical `(levels, codes)`, or a type error mentioning `name`.
    pub fn as_categorical(&self, name: &str) -> Result<(&[String], &[u32])> {
        match self {
            Column::Categorical { levels, codes } => Ok((levels, codes)),
            other => Err(Error::TypeMismatch {
                column: name.to_owned(),
                expected: DType::Categorical.name(),
                actual: other.dtype().name(),
            }),
        }
    }

    /// Looks up a categorical level's code.
    pub fn level_code(&self, name: &str, level: &str) -> Result<u32> {
        let (levels, _) = self.as_categorical(name)?;
        levels
            .iter()
            .position(|l| l == level)
            .map(|i| i as u32)
            .ok_or_else(|| Error::UnknownLevel {
                column: name.to_owned(),
                level: level.to_owned(),
            })
    }

    /// Number of distinct levels (categorical), 2 (boolean), or `None`.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Column::Categorical { levels, .. } => Some(levels.len()),
            Column::Boolean(_) => Some(2),
            Column::Numeric(_) => None,
        }
    }

    /// A new column containing only the rows in `indices` (in that order).
    ///
    /// Panics if any index is out of bounds; callers validate first via
    /// [`crate::Dataset::select`].
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Categorical { levels, codes } => Column::Categorical {
                levels: levels.clone(),
                codes: indices.iter().map(|&i| codes[i]).collect(),
            },
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Boolean(v) => Column::Boolean(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Converts the column to per-row `f64` values: numeric pass-through,
    /// boolean as 0/1, categorical as the code value.
    ///
    /// Used by encoders and distance computations that need a uniform
    /// numeric view.
    pub fn to_f64(&self) -> Vec<f64> {
        match self {
            Column::Categorical { codes, .. } => codes.iter().map(|&c| c as f64).collect(),
            Column::Numeric(v) => v.clone(),
            Column::Boolean(v) => v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_from_strs_builds_dictionary_in_order() {
        let c = Column::categorical_from_strs(&["b", "a", "b", "c"]);
        let (levels, codes) = c.as_categorical("x").unwrap();
        assert_eq!(levels, &["b".to_owned(), "a".to_owned(), "c".to_owned()]);
        assert_eq!(codes, &[0, 1, 0, 2]);
    }

    #[test]
    fn categorical_from_codes_validates() {
        let err = Column::categorical_from_codes(vec!["m".into(), "f".into()], vec![0, 2], "sex")
            .unwrap_err();
        assert!(matches!(err, Error::CodeOutOfRange { code: 2, .. }));
    }

    #[test]
    fn typed_accessors_enforce_types() {
        let c = Column::Numeric(vec![1.0, 2.0]);
        assert!(c.as_numeric("x").is_ok());
        assert!(c.as_boolean("x").is_err());
        assert!(c.as_categorical("x").is_err());
    }

    #[test]
    fn value_resolves_levels() {
        let c = Column::categorical_from_strs(&["m", "f"]);
        assert_eq!(c.value(1), Some(Value::Cat("f".into())));
        assert_eq!(c.value(2), None);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::Numeric(vec![10.0, 20.0, 30.0]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.as_numeric("x").unwrap(), &[30.0, 10.0, 10.0]);
    }

    #[test]
    fn to_f64_uniform_view() {
        assert_eq!(Column::Boolean(vec![true, false]).to_f64(), vec![1.0, 0.0]);
        let c = Column::categorical_from_strs(&["a", "b", "a"]);
        assert_eq!(c.to_f64(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn cardinality_by_type() {
        assert_eq!(Column::Boolean(vec![true]).cardinality(), Some(2));
        assert_eq!(Column::Numeric(vec![1.0]).cardinality(), None);
        assert_eq!(
            Column::categorical_from_strs(&["a", "b"]).cardinality(),
            Some(2)
        );
    }

    #[test]
    fn level_code_lookup() {
        let c = Column::categorical_from_strs(&["m", "f"]);
        assert_eq!(c.level_code("sex", "f").unwrap(), 1);
        assert!(matches!(
            c.level_code("sex", "x").unwrap_err(),
            Error::UnknownLevel { .. }
        ));
    }
}
