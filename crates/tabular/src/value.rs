//! Scalar values and data types.

use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Dictionary-encoded categorical data.
    Categorical,
    /// 64-bit floating point data.
    Numeric,
    /// Boolean data (used for binary labels and predictions).
    Boolean,
}

impl DType {
    /// Static name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DType::Categorical => "categorical",
            DType::Numeric => "numeric",
            DType::Boolean => "boolean",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single cell value, produced when reading a dataset row-wise.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A categorical level (the resolved level name, not the code).
    Cat(String),
    /// A numeric value.
    Num(f64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// The type of this value.
    pub fn dtype(&self) -> DType {
        match self {
            Value::Cat(_) => DType::Categorical,
            Value::Num(_) => DType::Numeric,
            Value::Bool(_) => DType::Boolean,
        }
    }

    /// Returns the categorical level if this is a `Cat` value.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value if this is a `Num` value.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the boolean value if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Cat(s) => f.write_str(s),
            Value::Num(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Cat(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Cat(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names() {
        assert_eq!(DType::Categorical.name(), "categorical");
        assert_eq!(DType::Numeric.to_string(), "numeric");
        assert_eq!(DType::Boolean.name(), "boolean");
    }

    #[test]
    fn value_accessors() {
        let v = Value::from("female");
        assert_eq!(v.dtype(), DType::Categorical);
        assert_eq!(v.as_cat(), Some("female"));
        assert_eq!(v.as_num(), None);

        let v = Value::from(3.5);
        assert_eq!(v.as_num(), Some(3.5));
        assert_eq!(v.as_bool(), None);

        let v = Value::from(true);
        assert_eq!(v.as_bool(), Some(true));
        assert_eq!(v.as_cat(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(2.0).to_string(), "2");
        assert_eq!(Value::from(false).to_string(), "false");
    }
}
