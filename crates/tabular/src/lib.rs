//! # fairbridge-tabular
//!
//! Columnar tabular dataset substrate for the fairbridge fairness toolkit.
//!
//! This crate provides the data model that every other fairbridge crate
//! builds on: a strongly typed, column-oriented [`Dataset`] whose schema
//! distinguishes *features*, *protected attributes*, *labels*, *predictions*
//! and *instance weights* — the roles that anti-discrimination analysis
//! needs to keep apart (see Section III of the ICDE'24 paper: the protected
//! attribute `A`, other attributes `S`, the actual class `Y` and the
//! classifier prediction `R`).
//!
//! Design notes:
//! * Columns are typed enums ([`Column`]), not boxed `Any`s, so metric code
//!   iterates over plain `&[f64]` / `&[u32]` slices.
//! * Categorical columns store a dictionary of levels plus `u32` codes,
//!   which makes group-by operations (the heart of group fairness metrics)
//!   cheap integer bucketing.
//! * The dataset is immutable-by-default; transformations produce new
//!   datasets or row-index views, which keeps audit trails honest.
//! * [`bitset::RowMask`] packs row sets into `u64` words so subgroup
//!   enumeration runs on AND + popcount instead of index-vector
//!   filtering, and [`par`] provides the deterministic order-preserving
//!   parallel map that the engine's shard scan and the subgroup lattice
//!   both fan out over.
//!
//! ```
//! use fairbridge_tabular::{Dataset, Role};
//!
//! let ds = Dataset::builder()
//!     .categorical_with_role("sex", vec!["male", "female"],
//!         vec![0, 0, 1, 1], Role::Protected)
//!     .numeric("experience", vec![5.0, 3.0, 5.0, 2.0])
//!     .boolean_with_role("hired", vec![true, false, true, false], Role::Label)
//!     .build()
//!     .unwrap();
//! assert_eq!(ds.n_rows(), 4);
//! assert_eq!(ds.protected_columns(), vec!["sex"]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitset;
pub mod column;
pub mod dataset;
pub mod error;
pub mod groups;
pub mod io;
pub mod par;
pub mod profile;
pub mod schema;
pub mod tune;
pub mod value;

pub use bitset::RowMask;
pub use column::Column;
pub use dataset::{Dataset, DatasetBuilder};
pub use error::{Error, Result, TabularError};
pub use groups::{GroupIndex, GroupKey, GroupSpec};
pub use schema::{FieldMeta, Role, Schema};
pub use value::{DType, Value};
