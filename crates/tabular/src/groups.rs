//! Grouping rows by (combinations of) categorical attributes.
//!
//! Group fairness metrics compare outcome statistics across the groups
//! induced by one or more protected attributes; intersectional auditing
//! (paper Section IV.C) needs groups induced by *combinations* of
//! attributes. [`GroupIndex`] materializes those partitions once so metric
//! code can iterate over `(key, row-indices)` pairs.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Which columns to group by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// Names of the (categorical or boolean) columns defining groups.
    pub columns: Vec<String>,
}

impl GroupSpec {
    /// Groups by a single column.
    pub fn single(column: &str) -> Self {
        GroupSpec {
            columns: vec![column.to_owned()],
        }
    }

    /// Groups by the intersection of several columns.
    pub fn intersection<S: Into<String>>(columns: Vec<S>) -> Self {
        GroupSpec {
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }
}

/// A resolved group key: one level name per grouping column.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupKey(pub Vec<String>);

impl GroupKey {
    /// The key's levels in grouping-column order.
    pub fn levels(&self) -> &[String] {
        &self.0
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("×"))
    }
}

/// A partition of dataset rows into groups.
#[derive(Debug, Clone)]
pub struct GroupIndex {
    spec: GroupSpec,
    groups: BTreeMap<GroupKey, Vec<usize>>,
    n_rows: usize,
}

impl GroupIndex {
    /// Builds the partition for `spec` over `ds`.
    ///
    /// Boolean columns are treated as two-level categoricals with levels
    /// `"false"` and `"true"`. Numeric columns are rejected — bin them first.
    pub fn build(ds: &Dataset, spec: &GroupSpec) -> Result<GroupIndex> {
        if spec.columns.is_empty() {
            return Err(Error::Invalid(
                "group spec must name at least one column".into(),
            ));
        }
        // Per-column (levels, codes) views.
        let mut views: Vec<(Vec<String>, Vec<u32>)> = Vec::with_capacity(spec.columns.len());
        for name in &spec.columns {
            let col = ds.column(name)?;
            match col {
                crate::column::Column::Categorical { levels, codes } => {
                    views.push((levels.clone(), codes.clone()));
                }
                crate::column::Column::Boolean(v) => {
                    let levels = vec!["false".to_owned(), "true".to_owned()];
                    let codes = v.iter().map(|&b| u32::from(b)).collect();
                    views.push((levels, codes));
                }
                crate::column::Column::Numeric(_) => {
                    return Err(Error::TypeMismatch {
                        column: name.clone(),
                        expected: "categorical or boolean",
                        actual: "numeric",
                    });
                }
            }
        }
        // Bucket rows by interned codes first — the per-row key is a
        // reused `u32` buffer looked up via `Borrow<[u32]>`, so the scan
        // allocates only once per *distinct* group, never per row.
        let mut code_groups: BTreeMap<Vec<u32>, Vec<usize>> = BTreeMap::new();
        let mut key_buf = vec![0u32; views.len()];
        for row in 0..ds.n_rows() {
            for (slot, (_, codes)) in key_buf.iter_mut().zip(&views) {
                *slot = codes[row];
            }
            match code_groups.get_mut(key_buf.as_slice()) {
                Some(rows) => rows.push(row),
                None => {
                    code_groups.insert(key_buf.clone(), vec![row]);
                }
            }
        }
        // Resolve level strings once per distinct group; the string-keyed
        // map preserves the same key order as before (`GroupKey` orders
        // lexicographically by level names). Distinct codes can share a
        // level name if a dictionary repeats one — those groups merge,
        // re-sorted so rows stay in ascending order as they always were.
        let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
        for (codes, rows) in code_groups {
            let key = GroupKey(
                codes
                    .iter()
                    .zip(&views)
                    .map(|(&c, (levels, _))| levels[c as usize].clone())
                    .collect(),
            );
            match groups.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(rows);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = e.get_mut();
                    merged.extend(rows);
                    merged.sort_unstable();
                }
            }
        }
        Ok(GroupIndex {
            spec: spec.clone(),
            groups,
            n_rows: ds.n_rows(),
        })
    }

    /// The spec this index was built from.
    pub fn spec(&self) -> &GroupSpec {
        &self.spec
    }

    /// Number of non-empty groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of rows in the underlying dataset.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Iterates over `(key, row-indices)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &[usize])> {
        self.groups.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// The row indices of a specific group, if present.
    pub fn rows(&self, key: &GroupKey) -> Option<&[usize]> {
        self.groups.get(key).map(Vec::as_slice)
    }

    /// All group keys in order.
    pub fn keys(&self) -> Vec<&GroupKey> {
        self.groups.keys().collect()
    }

    /// The size of each group in key order.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.values().map(Vec::len).collect()
    }

    /// The fraction of rows in each group, in key order.
    pub fn proportions(&self) -> Vec<f64> {
        let n = self.n_rows.max(1) as f64;
        self.groups.values().map(|v| v.len() as f64 / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Role;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 0, 1, 1, 0, 1],
                Role::Protected,
            )
            .categorical_with_role(
                "race",
                vec!["a", "b"],
                vec![0, 1, 0, 1, 0, 0],
                Role::Protected,
            )
            .boolean_with_role(
                "hired",
                vec![true, false, true, false, true, false],
                Role::Label,
            )
            .numeric("exp", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .build()
            .unwrap()
    }

    #[test]
    fn single_column_grouping() {
        let ds = sample();
        let gi = GroupIndex::build(&ds, &GroupSpec::single("sex")).unwrap();
        assert_eq!(gi.n_groups(), 2);
        let male = gi.rows(&GroupKey(vec!["male".into()])).unwrap();
        assert_eq!(male, &[0, 1, 4]);
        let female = gi.rows(&GroupKey(vec!["female".into()])).unwrap();
        assert_eq!(female, &[2, 3, 5]);
    }

    #[test]
    fn intersectional_grouping() {
        let ds = sample();
        let gi = GroupIndex::build(&ds, &GroupSpec::intersection(vec!["sex", "race"])).unwrap();
        assert_eq!(gi.n_groups(), 4);
        let key = GroupKey(vec!["female".into(), "a".into()]);
        assert_eq!(gi.rows(&key).unwrap(), &[2, 5]);
        assert_eq!(gi.sizes().iter().sum::<usize>(), 6);
    }

    #[test]
    fn boolean_columns_group_as_two_levels() {
        let ds = sample();
        let gi = GroupIndex::build(&ds, &GroupSpec::single("hired")).unwrap();
        assert_eq!(gi.n_groups(), 2);
        assert_eq!(gi.rows(&GroupKey(vec!["true".into()])).unwrap(), &[0, 2, 4]);
    }

    #[test]
    fn numeric_columns_rejected() {
        let ds = sample();
        assert!(GroupIndex::build(&ds, &GroupSpec::single("exp")).is_err());
    }

    #[test]
    fn proportions_sum_to_one() {
        let ds = sample();
        let gi = GroupIndex::build(&ds, &GroupSpec::single("sex")).unwrap();
        let total: f64 = gi.proportions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_spec_rejected() {
        let ds = sample();
        let spec = GroupSpec {
            columns: Vec::new(),
        };
        assert!(GroupIndex::build(&ds, &spec).is_err());
    }

    #[test]
    fn duplicate_level_names_merge_with_rows_in_ascending_order() {
        // A dictionary that repeats a level name: both codes 0 and 2
        // render as "a" and must land in one group, rows ascending.
        let ds = Dataset::builder()
            .categorical_with_role(
                "g",
                vec!["a", "b", "a"],
                vec![2, 1, 0, 2, 0],
                Role::Protected,
            )
            .boolean_with_role("y", vec![true; 5], Role::Label)
            .build()
            .unwrap();
        let gi = GroupIndex::build(&ds, &GroupSpec::single("g")).unwrap();
        assert_eq!(gi.n_groups(), 2);
        assert_eq!(gi.rows(&GroupKey(vec!["a".into()])).unwrap(), &[0, 2, 3, 4]);
        assert_eq!(gi.rows(&GroupKey(vec!["b".into()])).unwrap(), &[1]);
    }

    #[test]
    fn group_key_display() {
        let k = GroupKey(vec!["female".into(), "non-caucasian".into()]);
        assert_eq!(k.to_string(), "female×non-caucasian");
    }
}
