//! Minimal CSV reading and writing.
//!
//! Supports the subset of CSV that fairness datasets in the wild use:
//! comma-separated, optional double-quoting, a mandatory header row.
//! Column types are inferred (numeric if every value parses as `f64`,
//! boolean if every value is `true`/`false`, categorical otherwise) and can
//! be refined with roles afterwards via [`Dataset::with_role`].

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use std::io::{BufRead, Write};
use std::path::Path;

/// Maps an `io::Error` on `path` to the crate's `Eq`-comparable error.
fn io_err(path: &Path, e: std::io::Error) -> Error {
    Error::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Parses one CSV record, honouring double quotes.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => {
                return Err(Error::Csv {
                    line: line_no,
                    message: "unexpected quote inside unquoted field".to_owned(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line: line_no,
            message: "unterminated quoted field".to_owned(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Quotes a field if it contains a comma, quote or newline.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Reads a dataset from CSV text. All columns get [`crate::Role::Feature`];
/// adjust roles afterwards.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Dataset> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(line))) => parse_record(&line, 1)?,
        Some((_, Err(e))) => {
            return Err(Error::Csv {
                line: 1,
                message: e.to_string(),
            })
        }
        None => {
            return Err(Error::Csv {
                line: 1,
                message: "empty input".to_owned(),
            })
        }
    };
    let n_cols = header.len();
    let mut raw: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| Error::Csv {
            line: line_no,
            message: e.to_string(),
        })?;
        if line.is_empty() {
            continue;
        }
        let record = parse_record(&line, line_no)?;
        if record.len() != n_cols {
            return Err(Error::Csv {
                line: line_no,
                message: format!("expected {n_cols} fields, found {}", record.len()),
            });
        }
        for (col, value) in raw.iter_mut().zip(record) {
            col.push(value);
        }
    }

    let mut builder = Dataset::builder();
    for (name, values) in header.iter().zip(raw.iter()) {
        builder = builder_push_inferred(builder, name, values);
    }
    builder.build()
}

fn builder_push_inferred(
    builder: crate::dataset::DatasetBuilder,
    name: &str,
    values: &[String],
) -> crate::dataset::DatasetBuilder {
    if !values.is_empty() && values.iter().all(|v| v == "true" || v == "false") {
        return builder.boolean(name, values.iter().map(|v| v == "true").collect());
    }
    let nums: Option<Vec<f64>> = values.iter().map(|v| v.trim().parse().ok()).collect();
    match nums {
        Some(nums) if !values.is_empty() => builder.numeric(name, nums),
        _ => builder.categorical_strs(name, values),
    }
}

/// Reads a dataset from a CSV string.
pub fn read_csv_str(text: &str) -> Result<Dataset> {
    read_csv(std::io::BufReader::new(text.as_bytes()))
}

/// Reads a dataset from a CSV file on disk. Open and read failures are
/// reported as the typed [`Error::Io`] variant, never a panic, so batch
/// audit pipelines can skip or report a bad input file and carry on.
pub fn read_csv_path<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    read_csv(std::io::BufReader::new(file))
}

/// Writes a dataset as CSV to a file on disk, creating or truncating it.
/// Failures surface as [`Error::Io`] with the offending path.
pub fn write_csv_path<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    let mut writer = std::io::BufWriter::new(file);
    write_csv(ds, &mut writer)?;
    writer.flush().map_err(|e| io_err(path, e))
}

/// Writes a dataset as CSV.
pub fn write_csv<W: Write>(ds: &Dataset, mut writer: W) -> Result<()> {
    let header: Vec<String> = ds
        .schema()
        .fields()
        .iter()
        .map(|f| quote_field(&f.name))
        .collect();
    writeln!(writer, "{}", header.join(",")).map_err(|e| Error::Csv {
        line: 1,
        message: e.to_string(),
    })?;
    for row in 0..ds.n_rows() {
        let values = ds.row(row)?;
        let fields: Vec<String> = values.iter().map(|v| quote_field(&v.to_string())).collect();
        writeln!(writer, "{}", fields.join(",")).map_err(|e| Error::Csv {
            line: row + 2,
            message: e.to_string(),
        })?;
    }
    Ok(())
}

/// Writes a dataset to a CSV string.
pub fn write_csv_string(ds: &Dataset) -> Result<String> {
    let mut out = Vec::new();
    write_csv(ds, &mut out)?;
    String::from_utf8(out).map_err(|e| Error::Invalid(e.to_string()))
}

/// Re-export for role adjustment after reading.
pub use crate::schema::Role as CsvRole;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_inferred_types() {
        let csv = "sex,age,hired\nmale,34,true\nfemale,29,false\nfemale,41,true\n";
        let ds = read_csv_str(csv).unwrap();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.numeric("age").unwrap(), &[34.0, 29.0, 41.0]);
        assert_eq!(ds.boolean("hired").unwrap(), &[true, false, true]);
        let (levels, codes) = ds.categorical("sex").unwrap();
        assert_eq!(levels, &["male".to_owned(), "female".to_owned()]);
        assert_eq!(codes, &[0, 1, 1]);

        let out = write_csv_string(&ds).unwrap();
        let ds2 = read_csv_str(&out).unwrap();
        assert_eq!(ds2.numeric("age").unwrap(), ds.numeric("age").unwrap());
    }

    #[test]
    fn quoted_fields() {
        let csv = "name,score\n\"Doe, Jane\",1\n\"say \"\"hi\"\"\",2\n";
        let ds = read_csv_str(csv).unwrap();
        let (levels, _) = ds.categorical("name").unwrap();
        assert_eq!(levels[0], "Doe, Jane");
        assert_eq!(levels[1], "say \"hi\"");
        // roundtrip keeps quoting valid
        let out = write_csv_string(&ds).unwrap();
        let ds2 = read_csv_str(&out).unwrap();
        let (levels2, _) = ds2.categorical("name").unwrap();
        assert_eq!(levels2, levels);
    }

    #[test]
    fn field_count_mismatch_is_error() {
        let csv = "a,b\n1,2\n3\n";
        let err = read_csv_str(csv).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 3, .. }));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_csv_str("").is_err());
    }

    #[test]
    fn unterminated_quote_is_error() {
        let csv = "a\n\"oops\n";
        assert!(read_csv_str(csv).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\n1\n\n2\n";
        let ds = read_csv_str(csv).unwrap();
        assert_eq!(ds.n_rows(), 2);
    }

    #[test]
    fn all_numeric_column_with_empty_rows_is_categorical() {
        // a blank cell forces categorical fallback
        let csv = "a\n1\nx\n";
        let ds = read_csv_str(csv).unwrap();
        assert!(ds.categorical("a").is_ok());
    }

    #[test]
    fn path_roundtrip() {
        let csv = "sex,age,hired\nmale,34,true\nfemale,29,false\n";
        let ds = read_csv_str(csv).unwrap();
        let path = std::env::temp_dir().join(format!(
            "fairbridge-io-roundtrip-{}.csv",
            std::process::id()
        ));
        write_csv_path(&ds, &path).unwrap();
        let ds2 = read_csv_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(ds2.n_rows(), ds.n_rows());
        assert_eq!(ds2.numeric("age").unwrap(), ds.numeric("age").unwrap());
        assert_eq!(ds2.boolean("hired").unwrap(), ds.boolean("hired").unwrap());
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let path = std::env::temp_dir().join("fairbridge-io-definitely-missing.csv");
        let err = read_csv_path(&path).unwrap_err();
        match err {
            Error::Io { path: p, .. } => assert!(p.contains("fairbridge-io-definitely-missing")),
            other => panic!("expected Error::Io, got {other:?}"),
        }
    }

    #[test]
    fn write_to_unwritable_path_is_a_typed_io_error() {
        let ds = read_csv_str("a\n1\n").unwrap();
        let err = write_csv_path(&ds, "/nonexistent-dir/out.csv").unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err:?}");
    }
}
