//! Deterministic order-preserving parallel execution over indexed tasks.
//!
//! Both the sharded metric scan in `fairbridge-engine` and the parallel
//! subgroup-lattice enumeration in `fairbridge-audit` follow the same
//! pattern: `n` independent work units identified by index, a pool of
//! scoped worker threads pulling indices from a shared atomic counter,
//! and a merge that consumes results **in task-index order** so the
//! output is bitwise-identical for every worker count. This module is
//! that pattern, extracted once: determinism is structural (results are
//! slotted by index), not scheduled.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;

/// Fallback work-unit threshold for [`size_aware_workers`]: one extra
/// worker must bring at least this many *units* (≈ one cheap arithmetic
/// pass over one row/element each) before fan-out beats running inline.
/// The conservative default the engine scan uses when no
/// `tune_profile.json` is present (key `par.min_units_per_worker`; see
/// [`crate::tune`]).
///
/// Sized against `BENCH_kernels.json` / `BENCH_subgroup.json`: the
/// `bootstrap_par8` and `bitset_parallel` rows showed 8-worker fan-out
/// *losing* to fused serial at benchmark sizes (≤ a few thousand rows),
/// while the ≥10⁵-element gemv/sinkhorn rows showed it winning. Spawn +
/// join + per-worker buffer setup costs ~50–100 µs on this class of
/// hardware; at ~1 ns/unit that amortizes around 32k units.
pub const MIN_UNITS_PER_WORKER: usize = 32 * 1024;

/// Available parallelism, probed once and cached.
///
/// `std::thread::available_parallelism()` reads cgroup quota files on
/// every call (~10 µs on containerized kernels) — pure overhead on the
/// hot audit path, and the answer never changes for the process
/// lifetime. Falls back to 1 when the probe fails.
pub fn available_workers() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Size-aware worker-count dispatch: how many of the `requested` workers
/// a job of `units` total work units spread over `n_tasks` tasks should
/// actually use.
///
/// Returns 1 (serial, no spawn) unless every extra worker is paid for by
/// at least `min_units_per_worker` units of work; never exceeds
/// `n_tasks` or `requested`. Because [`ordered_parallel_map`] is
/// bitwise-identical for every worker count, clamping the worker count
/// is purely a scheduling decision — results cannot change.
pub fn size_aware_workers(
    requested: usize,
    n_tasks: usize,
    units: usize,
    min_units_per_worker: usize,
) -> usize {
    let by_size = units / min_units_per_worker.max(1);
    requested.min(n_tasks).min(by_size).max(1)
}

/// Runs `f(0), f(1), …, f(n_tasks - 1)` across up to `workers` scoped
/// threads and returns the results **in task order**, regardless of
/// which worker computed what or when.
///
/// With `workers <= 1` (or a single task) everything runs inline on the
/// calling thread with no spawn at all — the sequential path is the
/// parallel path with one worker, not a separate code path to keep
/// equivalent.
///
/// Panics in `f` propagate: a worker panic aborts the scope and
/// re-panics on the caller, so no partial result set is ever observed.
pub fn ordered_parallel_map<T, F>(n_tasks: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n_tasks))
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        // The cursor only claims a unique index; results
                        // flow back through join(), which synchronizes.
                        // ORDER: Relaxed — uniqueness only.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            // fb-lint: allow(P1): a worker panic is unrecoverable — re-raising it here is the correct propagation
            for (i, v) in h.join().expect("parallel task worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        // fb-lint: allow(P1): the atomic task counter hands out every index in 0..n exactly once
        .map(|s| s.expect("every task index claimed exactly once"))
        .collect()
}

/// Spawns one named thread running `f`.
///
/// This is the sanctioned escape hatch for *long-lived* threads — accept
/// loops, connection handlers, daemon workers — whose lifetime is tied
/// to a service rather than to one computation. Short-lived computational
/// fan-out must keep going through [`ordered_parallel_map`] (lint rule
/// D2): a service thread must never fold numeric results in completion
/// order.
pub fn spawn_named<F>(name: &str, f: F) -> std::io::Result<JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new().name(name.to_owned()).spawn(f)
}

/// A fixed-size pool of long-lived named worker threads.
///
/// Each worker runs `f(worker_index)` to completion; the closure is
/// expected to loop over a shared job source (e.g. a bounded queue) and
/// return when that source closes. [`WorkerPool::join`] waits for all of
/// them and reports whether any worker panicked instead of returning.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n` workers named `{name}-{i}`, each running `f(i)`.
    pub fn spawn<F>(name: &str, n: usize, f: F) -> std::io::Result<WorkerPool>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let f = std::sync::Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let f = std::sync::Arc::clone(&f);
            handles.push(spawn_named(&format!("{name}-{i}"), move || f(i))?);
        }
        Ok(WorkerPool { handles })
    }

    /// Number of workers in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to return. `Err(k)` reports that `k`
    /// workers panicked instead of returning cleanly.
    pub fn join(self) -> Result<(), usize> {
        let panicked = self
            .handles
            .into_iter()
            .map(|h| h.join())
            .filter(std::result::Result::is_err)
            .count();
        if panicked == 0 {
            Ok(())
        } else {
            Err(panicked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let out = ordered_parallel_map(37, workers, |i| i * i);
            let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(out, expected, "{workers} workers");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = ordered_parallel_map(100, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_and_single_task_edges() {
        let empty: Vec<usize> = ordered_parallel_map(0, 8, |i| i);
        assert!(empty.is_empty());
        assert_eq!(ordered_parallel_map(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn size_aware_dispatch_goes_serial_below_threshold() {
        // Tiny jobs run inline no matter how many workers were requested.
        assert_eq!(size_aware_workers(8, 100, 1000, 32 * 1024), 1);
        assert_eq!(size_aware_workers(8, 100, 0, 32 * 1024), 1);
        // Big jobs fan out, capped by requested workers and task count.
        assert_eq!(size_aware_workers(8, 100, 1 << 20, 32 * 1024), 8);
        assert_eq!(size_aware_workers(8, 2, 1 << 20, 32 * 1024), 2);
        // Mid-size jobs get only the workers the size pays for.
        assert_eq!(size_aware_workers(8, 100, 3 * 32 * 1024, 32 * 1024), 3);
        // Degenerate threshold never divides by zero.
        assert_eq!(size_aware_workers(4, 4, 10, 0), 4);
    }

    #[test]
    fn worker_pool_runs_every_worker_and_joins() {
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        let h = std::sync::Arc::clone(&hits);
        let pool = WorkerPool::spawn("test-pool", 4, move |i| {
            h.fetch_add(i + 1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        pool.join().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn worker_pool_join_reports_panics() {
        let pool = WorkerPool::spawn("panicky", 3, |i| {
            if i == 1 {
                panic!("boom");
            }
        })
        .unwrap();
        assert_eq!(pool.join(), Err(1));
    }

    #[test]
    fn spawn_named_names_the_thread() {
        let h = spawn_named("fb-test-thread", || {
            assert_eq!(
                std::thread::current().name(),
                Some("fb-test-thread"),
                "thread carries its name"
            );
        })
        .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            ordered_parallel_map(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
