//! Deterministic order-preserving parallel execution over indexed tasks.
//!
//! Both the sharded metric scan in `fairbridge-engine` and the parallel
//! subgroup-lattice enumeration in `fairbridge-audit` follow the same
//! pattern: `n` independent work units identified by index, a pool of
//! scoped worker threads pulling indices from a shared atomic counter,
//! and a merge that consumes results **in task-index order** so the
//! output is bitwise-identical for every worker count. This module is
//! that pattern, extracted once: determinism is structural (results are
//! slotted by index), not scheduled.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0), f(1), …, f(n_tasks - 1)` across up to `workers` scoped
/// threads and returns the results **in task order**, regardless of
/// which worker computed what or when.
///
/// With `workers <= 1` (or a single task) everything runs inline on the
/// calling thread with no spawn at all — the sequential path is the
/// parallel path with one worker, not a separate code path to keep
/// equivalent.
///
/// Panics in `f` propagate: a worker panic aborts the scope and
/// re-panics on the caller, so no partial result set is ever observed.
pub fn ordered_parallel_map<T, F>(n_tasks: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n_tasks))
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            // fb-lint: allow(P1): a worker panic is unrecoverable — re-raising it here is the correct propagation
            for (i, v) in h.join().expect("parallel task worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        // fb-lint: allow(P1): the atomic task counter hands out every index in 0..n exactly once
        .map(|s| s.expect("every task index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let out = ordered_parallel_map(37, workers, |i| i * i);
            let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(out, expected, "{workers} workers");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = ordered_parallel_map(100, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_and_single_task_edges() {
        let empty: Vec<usize> = ordered_parallel_map(0, 8, |i| i);
        assert!(empty.is_empty());
        assert_eq!(ordered_parallel_map(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            ordered_parallel_map(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
