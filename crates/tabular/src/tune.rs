//! Calibrated dispatch thresholds: the loader side of `fb-tune`.
//!
//! The size-aware serial/parallel dispatch in [`crate::par`] needs one
//! number per call site: how many work units an extra worker must bring
//! before fan-out beats running inline. Those numbers used to be
//! hand-guessed constants; they are now a *threshold table* that the
//! `fb-tune` binary (in `crates/bench`) calibrates by measuring this
//! machine's actual spawn overhead and per-unit costs, written to
//! `tune_profile.json`. This module is the read side: a deliberately
//! minimal parser for the flat JSON object `fb-tune` emits, a
//! process-wide cached profile, and [`tuned_min_units`] — the lookup
//! every dispatch site calls with its key and its conservative
//! compiled-in default.
//!
//! Failure posture: a missing, unreadable or malformed profile never
//! degrades correctness or panics — every call site falls back to its
//! default, which is the pre-calibration constant. Calibration can only
//! *move* thresholds, never break dispatch. The profile is resolved
//! once per process (first from the `FB_TUNE_PROFILE` environment
//! variable, then by searching for `tune_profile.json` upward from the
//! working directory, mirroring how the bench harness finds its
//! baselines) and cached, so lookups on hot paths cost a vector scan of
//! a handful of entries.
//!
//! The parser accepts exactly the shape `fb-tune` writes: one flat JSON
//! object whose values are numbers (thresholds, probe measurements) or
//! strings (metadata such as the CPU model — retained but not exposed
//! as thresholds). It is not a general JSON parser and rejects nesting.

use std::sync::OnceLock;

/// A parsed threshold table: ordered `(key, value)` pairs from one flat
/// JSON object. Kept as a vector (not a hash map) so iteration order —
/// and therefore any diagnostic output — matches the file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneProfile {
    entries: Vec<(String, f64)>,
}

impl TuneProfile {
    /// Parses the flat JSON object `fb-tune` emits. Numeric values
    /// become entries; string values (metadata like the CPU model) are
    /// accepted and skipped; anything nested is an error.
    pub fn parse(text: &str) -> Result<TuneProfile, String> {
        let s = text.trim();
        let body = s
            .strip_prefix('{')
            .and_then(|r| r.trim_end().strip_suffix('}'))
            .ok_or("tune profile: expected one flat JSON object")?;
        let mut entries = Vec::new();
        for pair in split_top_level(body) {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let rest = pair
                .strip_prefix('"')
                .ok_or_else(|| format!("tune profile: expected a quoted key in `{pair}`"))?;
            let (key, rest) = rest
                .split_once('"')
                .ok_or_else(|| format!("tune profile: unterminated key in `{pair}`"))?;
            let value = rest
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| format!("tune profile: missing `:` after key `{key}`"))?
                .trim();
            if value.starts_with('"') {
                // String metadata (e.g. "cpu"): retained in the file for
                // humans, not a threshold.
                continue;
            }
            if value.starts_with('{') || value.starts_with('[') {
                return Err(format!(
                    "tune profile: nested value for key `{key}` (the table is flat)"
                ));
            }
            let num: f64 = value
                .parse()
                .map_err(|e| format!("tune profile: bad number for key `{key}`: {e}"))?;
            entries.push((key.to_owned(), num));
        }
        Ok(TuneProfile { entries })
    }

    /// The raw numeric value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The value for `key` as a work-unit threshold: present, finite
    /// and at least 1. Anything else is treated as absent so a
    /// corrupted entry can never produce a degenerate dispatch.
    pub fn min_units(&self, key: &str) -> Option<usize> {
        match self.get(key) {
            Some(v) if v.is_finite() && v >= 1.0 && v < usize::MAX as f64 => {
                Some(v.round() as usize)
            }
            _ => None,
        }
    }

    /// Iterates over the numeric entries in file order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Splits the body of a flat JSON object on top-level commas,
/// respecting string literals (so metadata values may contain commas).
fn split_top_level(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ',' {
            out.push(&body[start..i]);
            start = i + 1;
        }
    }
    if !body[start..].trim().is_empty() {
        out.push(&body[start..]);
    }
    out
}

/// The process-wide profile: resolved once, `None` when no usable
/// profile exists (the universal fallback-to-defaults state).
fn profile() -> Option<&'static TuneProfile> {
    static PROFILE: OnceLock<Option<TuneProfile>> = OnceLock::new();
    PROFILE.get_or_init(load_profile).as_ref()
}

/// Resolves and parses the profile: `FB_TUNE_PROFILE` (explicit path)
/// first, then `tune_profile.json` searched upward from the working
/// directory. Any failure — absent file, I/O error, parse error —
/// yields `None`: calibration is an optimization, never a dependency.
fn load_profile() -> Option<TuneProfile> {
    if let Ok(path) = std::env::var("FB_TUNE_PROFILE") {
        if !path.is_empty() {
            return std::fs::read_to_string(&path)
                .ok()
                .and_then(|t| TuneProfile::parse(&t).ok());
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("tune_profile.json");
        if candidate.is_file() {
            return std::fs::read_to_string(&candidate)
                .ok()
                .and_then(|t| TuneProfile::parse(&t).ok());
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The calibrated work-unit threshold for `key`, or `default` (the
/// conservative compiled-in constant) when no profile is loaded or the
/// profile has no usable entry for this key. This is the one function
/// dispatch call sites use; see [`crate::par::size_aware_workers`] for
/// how the threshold gates fan-out.
pub fn tuned_min_units(key: &str, default: usize) -> usize {
    match profile() {
        Some(p) => p.min_units(key).unwrap_or(default),
        None => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fb_tune_shape() {
        let text = r#"{
            "version": 1,
            "cpu": "Some CPU, with a comma",
            "spawn_overhead_ns": 61234.5,
            "par.min_units_per_worker": 65536,
            "bootstrap.min_units_per_worker": 524288
        }"#;
        let p = TuneProfile::parse(text).unwrap();
        assert_eq!(p.get("version"), Some(1.0));
        assert_eq!(p.get("cpu"), None, "string metadata is not a threshold");
        assert_eq!(p.min_units("par.min_units_per_worker"), Some(65536));
        assert_eq!(p.min_units("bootstrap.min_units_per_worker"), Some(524288));
        assert_eq!(p.min_units("absent.key"), None);
        assert_eq!(p.entries().count(), 4);
    }

    #[test]
    fn rejects_non_objects_and_nesting() {
        assert!(TuneProfile::parse("42").is_err());
        assert!(TuneProfile::parse(r#"{"a": {"b": 1}}"#).is_err());
        assert!(TuneProfile::parse(r#"{"a": [1, 2]}"#).is_err());
        assert!(TuneProfile::parse(r#"{"a": nope}"#).is_err());
        assert!(TuneProfile::parse(r#"{nokey: 1}"#).is_err());
    }

    #[test]
    fn degenerate_thresholds_are_treated_as_absent() {
        let p =
            TuneProfile::parse(r#"{"zero": 0, "neg": -5, "nan": 1e999, "frac": 1.6, "ok": 1024}"#)
                .unwrap();
        assert_eq!(p.min_units("zero"), None);
        assert_eq!(p.min_units("neg"), None);
        assert_eq!(p.min_units("nan"), None, "inf overflow literal");
        assert_eq!(p.min_units("frac"), Some(2), "rounded to nearest unit");
        assert_eq!(p.min_units("ok"), Some(1024));
    }

    #[test]
    fn empty_object_parses_clean() {
        let p = TuneProfile::parse("{}").unwrap();
        assert_eq!(p.entries().count(), 0);
        assert_eq!(p.min_units("anything"), None);
    }

    #[test]
    fn unknown_key_lookup_falls_back_to_the_default() {
        // Whatever profile this process resolved (usually none in the
        // test environment), a key nothing writes must yield the
        // caller's conservative default.
        assert_eq!(
            tuned_min_units("test.key.that.no.profile.contains", 12345),
            12345
        );
    }
}
