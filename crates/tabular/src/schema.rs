//! Schema: column names, types and fairness roles.

use crate::error::{Error, Result};
use crate::value::DType;

/// The role a column plays in fairness analysis.
///
/// The paper's notation (Section III): the protected attribute `A`
/// ([`Role::Protected`]), other attributes `S` ([`Role::Feature`]), the
/// actual class `Y` ([`Role::Label`]) and the classifier output `R`
/// ([`Role::Prediction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Ordinary model input (the paper's `S`).
    Feature,
    /// Legally protected attribute (the paper's `A`), e.g. sex, race, age.
    Protected,
    /// Ground-truth outcome (the paper's `Y`).
    Label,
    /// Model output (the paper's `R`).
    Prediction,
    /// Per-instance weight (produced e.g. by reweighing mitigation).
    Weight,
    /// Present in the data but excluded from modeling and metrics.
    Ignored,
}

impl Role {
    /// Static name for error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            Role::Feature => "feature",
            Role::Protected => "protected",
            Role::Label => "label",
            Role::Prediction => "prediction",
            Role::Weight => "weight",
            Role::Ignored => "ignored",
        }
    }
}

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMeta {
    /// Column name, unique within a dataset.
    pub name: String,
    /// Data type of the column.
    pub dtype: DType,
    /// Fairness role of the column.
    pub role: Role,
}

/// An ordered collection of [`FieldMeta`], one per column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    fields: Vec<FieldMeta>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field, rejecting duplicate names.
    pub fn push(&mut self, meta: FieldMeta) -> Result<()> {
        if self.fields.iter().any(|f| f.name == meta.name) {
            return Err(Error::DuplicateColumn(meta.name));
        }
        self.fields.push(meta);
        Ok(())
    }

    /// All fields in column order.
    pub fn fields(&self) -> &[FieldMeta] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_owned()))
    }

    /// Metadata for a column by name.
    pub fn field(&self, name: &str) -> Result<&FieldMeta> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Names of all columns with the given role, in column order.
    pub fn names_with_role(&self, role: Role) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.role == role)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// The unique column with the given role, if exactly one exists.
    pub fn single_with_role(&self, role: Role) -> Result<&FieldMeta> {
        let mut matches = self.fields.iter().filter(|f| f.role == role);
        match (matches.next(), matches.next()) {
            (Some(f), None) => Ok(f),
            (None, _) => Err(Error::MissingRole(role.name())),
            (Some(_), Some(_)) => Err(Error::Invalid(format!(
                "multiple columns have role {}",
                role.name()
            ))),
        }
    }

    /// Changes the role of an existing column.
    pub fn set_role(&mut self, name: &str, role: Role) -> Result<()> {
        let idx = self.index_of(name)?;
        self.fields[idx].role = role;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, role: Role) -> FieldMeta {
        FieldMeta {
            name: name.into(),
            dtype: DType::Numeric,
            role,
        }
    }

    #[test]
    fn push_rejects_duplicates() {
        let mut s = Schema::new();
        s.push(meta("a", Role::Feature)).unwrap();
        assert_eq!(
            s.push(meta("a", Role::Label)).unwrap_err(),
            Error::DuplicateColumn("a".into())
        );
    }

    #[test]
    fn role_queries() {
        let mut s = Schema::new();
        s.push(meta("a", Role::Feature)).unwrap();
        s.push(meta("sex", Role::Protected)).unwrap();
        s.push(meta("race", Role::Protected)).unwrap();
        s.push(meta("y", Role::Label)).unwrap();
        assert_eq!(s.names_with_role(Role::Protected), vec!["sex", "race"]);
        assert_eq!(s.single_with_role(Role::Label).unwrap().name, "y");
        assert!(matches!(
            s.single_with_role(Role::Prediction).unwrap_err(),
            Error::MissingRole("prediction")
        ));
        assert!(s.single_with_role(Role::Protected).is_err());
    }

    #[test]
    fn set_role_updates() {
        let mut s = Schema::new();
        s.push(meta("a", Role::Feature)).unwrap();
        s.set_role("a", Role::Ignored).unwrap();
        assert_eq!(s.field("a").unwrap().role, Role::Ignored);
        assert!(s.set_role("zz", Role::Label).is_err());
    }

    #[test]
    fn index_lookup() {
        let mut s = Schema::new();
        s.push(meta("a", Role::Feature)).unwrap();
        s.push(meta("b", Role::Feature)).unwrap();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("c").is_err());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
