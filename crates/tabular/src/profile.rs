//! Dataset profiling: per-column summaries auditors read before any
//! metric runs (sizes, level frequencies, numeric ranges, label balance).

use crate::column::Column;
use crate::dataset::Dataset;
use crate::error::Result;
use crate::schema::Role;
use std::fmt;

/// Per-column profile.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnProfile {
    /// Categorical column: `(level, count)` pairs in level order.
    Categorical {
        /// Column name.
        name: String,
        /// Fairness role.
        role: Role,
        /// Level frequencies.
        levels: Vec<(String, usize)>,
    },
    /// Numeric column summary.
    Numeric {
        /// Column name.
        name: String,
        /// Fairness role.
        role: Role,
        /// Minimum value.
        min: f64,
        /// Maximum value.
        max: f64,
        /// Mean.
        mean: f64,
        /// Sample standard deviation.
        std: f64,
    },
    /// Boolean column: count of `true`.
    Boolean {
        /// Column name.
        name: String,
        /// Fairness role.
        role: Role,
        /// Number of `true` values.
        positives: usize,
        /// Total rows.
        total: usize,
    },
}

impl ColumnProfile {
    /// Column name.
    pub fn name(&self) -> &str {
        match self {
            ColumnProfile::Categorical { name, .. }
            | ColumnProfile::Numeric { name, .. }
            | ColumnProfile::Boolean { name, .. } => name,
        }
    }
}

/// The full dataset profile.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Number of rows.
    pub n_rows: usize,
    /// Per-column profiles in schema order.
    pub columns: Vec<ColumnProfile>,
}

impl DatasetProfile {
    /// Profile of the named column, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnProfile> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// The smallest protected-group share across all protected columns —
    /// the first number an intersectionality-aware auditor checks.
    pub fn min_protected_share(&self) -> Option<f64> {
        let mut min: Option<f64> = None;
        for c in &self.columns {
            if let ColumnProfile::Categorical { role, levels, .. } = c {
                if *role == Role::Protected {
                    for &(_, count) in levels {
                        let share = count as f64 / self.n_rows.max(1) as f64;
                        min = Some(min.map_or(share, |m: f64| m.min(share)));
                    }
                }
            }
        }
        min
    }
}

impl fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} rows, {} columns", self.n_rows, self.columns.len())?;
        for c in &self.columns {
            match c {
                ColumnProfile::Categorical { name, role, levels } => {
                    let parts: Vec<String> =
                        levels.iter().map(|(l, n)| format!("{l}: {n}")).collect();
                    writeln!(f, "  {name} [{}] {{{}}}", role.name(), parts.join(", "))?;
                }
                ColumnProfile::Numeric {
                    name,
                    role,
                    min,
                    max,
                    mean,
                    std,
                } => {
                    writeln!(
                        f,
                        "  {name} [{}] range [{min:.3}, {max:.3}], mean {mean:.3} ± {std:.3}",
                        role.name()
                    )?;
                }
                ColumnProfile::Boolean {
                    name,
                    role,
                    positives,
                    total,
                } => {
                    writeln!(
                        f,
                        "  {name} [{}] {positives}/{total} true ({:.1}%)",
                        role.name(),
                        100.0 * *positives as f64 / (*total).max(1) as f64
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Profiles a dataset.
pub fn profile(ds: &Dataset) -> Result<DatasetProfile> {
    let mut columns = Vec::new();
    for meta in ds.schema().fields() {
        let col = ds.column(&meta.name)?;
        let profile = match col {
            Column::Categorical { levels, codes } => {
                let mut counts = vec![0usize; levels.len()];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                ColumnProfile::Categorical {
                    name: meta.name.clone(),
                    role: meta.role,
                    levels: levels.iter().cloned().zip(counts).collect(),
                }
            }
            Column::Numeric(values) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0;
                for &v in values {
                    min = min.min(v);
                    max = max.max(v);
                    sum += v;
                }
                let n = values.len().max(1) as f64;
                let mean = sum / n;
                let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                    / (values.len().saturating_sub(1)).max(1) as f64;
                ColumnProfile::Numeric {
                    name: meta.name.clone(),
                    role: meta.role,
                    min,
                    max,
                    mean,
                    std: var.sqrt(),
                }
            }
            Column::Boolean(values) => ColumnProfile::Boolean {
                name: meta.name.clone(),
                role: meta.role,
                positives: values.iter().filter(|&&b| b).count(),
                total: values.len(),
            },
        };
        columns.push(profile);
    }
    Ok(DatasetProfile {
        n_rows: ds.n_rows(),
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::builder()
            .categorical_with_role(
                "sex",
                vec!["male", "female"],
                vec![0, 0, 0, 1],
                Role::Protected,
            )
            .numeric("age", vec![20.0, 30.0, 40.0, 50.0])
            .boolean_with_role("hired", vec![true, true, false, false], Role::Label)
            .build()
            .unwrap()
    }

    #[test]
    fn profile_summarizes_each_column() {
        let p = profile(&ds()).unwrap();
        assert_eq!(p.n_rows, 4);
        match p.column("sex").unwrap() {
            ColumnProfile::Categorical { levels, role, .. } => {
                assert_eq!(*role, Role::Protected);
                assert_eq!(levels, &[("male".to_owned(), 3), ("female".to_owned(), 1)]);
            }
            other => panic!("wrong profile: {other:?}"),
        }
        match p.column("age").unwrap() {
            ColumnProfile::Numeric { min, max, mean, .. } => {
                assert_eq!(*min, 20.0);
                assert_eq!(*max, 50.0);
                assert!((mean - 35.0).abs() < 1e-12);
            }
            other => panic!("wrong profile: {other:?}"),
        }
        match p.column("hired").unwrap() {
            ColumnProfile::Boolean {
                positives, total, ..
            } => {
                assert_eq!((*positives, *total), (2, 4));
            }
            other => panic!("wrong profile: {other:?}"),
        }
    }

    #[test]
    fn min_protected_share() {
        let p = profile(&ds()).unwrap();
        assert!((p.min_protected_share().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_renders_every_column() {
        let text = profile(&ds()).unwrap().to_string();
        assert!(text.contains("sex [protected]"));
        assert!(text.contains("age [feature]"));
        assert!(text.contains("hired [label]"));
        assert!(text.contains("female: 1"));
    }

    #[test]
    fn missing_column_is_none() {
        let p = profile(&ds()).unwrap();
        assert!(p.column("zzz").is_none());
    }
}
